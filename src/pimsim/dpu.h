/**
 * @file
 * Single simulated PIM core (UPMEM terminology: DPU).
 *
 * The model is an instruction-cost simulator, not a functional ISA
 * interpreter: kernels are C-like C++ functions written against the
 * primitive set a DPU offers (native 32-bit integer ops, emulated
 * multiply/divide/floating point, WRAM accesses, MRAM DMA) and every
 * primitive charges the native instructions it would retire. The DPU
 * converts the per-tasklet instruction and DMA totals into cycles with
 * the revolver-pipeline throughput model:
 *
 *   cycles = max( total instructions issued            (issue bound),
 *                 max per-tasklet work * interval      (latency bound),
 *                 DMA engine occupancy )                (DMA bound)
 *
 * which captures the two regimes the UPMEM literature documents: a
 * single tasklet dispatches once per pipelineInterval cycles, and with
 * >= pipelineInterval tasklets the core retires one instruction per
 * cycle.
 */

#ifndef TPL_PIMSIM_DPU_H
#define TPL_PIMSIM_DPU_H

#include <array>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "common/instr_sink.h"
#include "pimsim/cost_model.h"

namespace tpl {
namespace sim {

class DpuCore;

namespace check {
class Sanitizer; // pimsim/analysis/sanitizer.h
} // namespace check

namespace fault {
class DpuFaultState; // pimsim/fault/fault.h
} // namespace fault

/**
 * Per-tasklet execution context handed to kernels.
 *
 * Implements InstrSink so the soft-float and emulated-integer helpers
 * can charge instructions directly. MRAM accesses go through the DMA
 * model; WRAM is a flat byte array owned by the core.
 */
class TaskletContext : public InstrSink
{
  public:
    TaskletContext(DpuCore& core, uint32_t id, uint32_t numTasklets)
        : core_(core), id_(id), numTasklets_(numTasklets)
    {}

    /** SPMD rank of this tasklet within the DPU. */
    uint32_t taskletId() const { return id_; }

    /** Number of tasklets launched with the kernel. */
    uint32_t numTasklets() const { return numTasklets_; }

    /** Charge native instructions (loop control, addressing, ALU). */
    void charge(uint32_t instructions) override
    {
        chargeClass(InstrClass::IntAlu, instructions);
    }

    /**
     * Classed charge: every instruction lands in exactly one
     * InstrClass bucket, so the per-class totals partition the
     * instruction total (the basis of the obs layer's cycle
     * attribution). Classless charges count as IntAlu.
     */
    void chargeClass(InstrClass cls, uint32_t instructions) override
    {
        instructions_ += instructions;
        classInstr_[static_cast<int>(cls)] += instructions;
    }

    /** Tally high-level operations (FloatMul, TableRead, ...). */
    void note(OpClass op) override
    {
        ++opCounts_[static_cast<int>(op)];
    }

    /**
     * Bulk classed charge (batch execution path): one 64-bit add per
     * class instead of one virtual call per element. Produces exactly
     * the totals @p n chargeClass(cls, perElem) calls would.
     */
    void chargeClassN(InstrClass cls, uint32_t perElem,
                      uint64_t n) override
    {
        uint64_t total = static_cast<uint64_t>(perElem) * n;
        instructions_ += total;
        classInstr_[static_cast<int>(cls)] += total;
    }

    /** Bulk operation tally (batch execution path). */
    void noteN(OpClass op, uint64_t n) override
    {
        opCounts_[static_cast<int>(op)] += n;
    }

    /**
     * DMA read from MRAM into a host-visible buffer (stands in for the
     * tasklet's WRAM chunk). Charges engine occupancy and latency.
     */
    void mramRead(uint32_t mramAddr, void* dst, uint32_t size);

    /** DMA write from a buffer into MRAM. */
    void mramWrite(uint32_t mramAddr, const void* src, uint32_t size);

    /// @name DMA variants carrying an assembly source line so an
    /// attached sanitizer can place its diagnostics (ISA interpreter).
    /// @{
    void mramReadAt(uint32_t mramAddr, void* dst, uint32_t size,
                    uint32_t line);
    void mramWriteAt(uint32_t mramAddr, const void* src, uint32_t size,
                     uint32_t line);
    /// @}

    /**
     * Tasklet barrier (UPMEM barrier_wait): charges one issue slot.
     * Tasklets execute sequentially in simulation, so the rendezvous
     * itself is a no-op — but an attached sanitizer advances this
     * tasklet's happens-before epoch here.
     */
    void barrier();

    /** Charge one WRAM access (load or store). */
    void chargeWramAccess(uint32_t accesses = 1);

    /** Total native instructions this tasklet has retired. */
    uint64_t instructions() const { return instructions_; }

    /** Instructions retired per InstrClass (sums to instructions()). */
    const std::array<uint64_t, numInstrClasses>& classInstructions() const
    {
        return classInstr_;
    }

    /** High-level operations noted per OpClass. */
    const std::array<uint64_t, numOpClasses>& opCounts() const
    {
        return opCounts_;
    }

    /** Total DMA latency cycles this tasklet has stalled for. */
    uint64_t dmaStallCycles() const { return dmaStall_; }

    /** The owning core (for WRAM/MRAM region queries). */
    DpuCore& core() { return core_; }

  private:
    friend class DpuCore;

    DpuCore& core_;
    uint32_t id_;
    uint32_t numTasklets_;
    uint64_t instructions_ = 0;
    uint64_t dmaStall_ = 0;
    std::array<uint64_t, numInstrClasses> classInstr_{};
    std::array<uint64_t, numOpClasses> opCounts_{};
};

/** Kernel body executed once per tasklet (SPMD). */
using Kernel = std::function<void(TaskletContext&)>;

/** Per-tasklet slice of a launch (obs layer / pimtrace profile). */
struct TaskletStats
{
    uint64_t instructions = 0;   ///< native instructions retired
    uint64_t dmaStallCycles = 0; ///< DMA latency stalled for
    /** Instructions per InstrClass (sums to instructions). */
    std::array<uint64_t, numInstrClasses> classInstructions{};
};

/**
 * Cycle breakdown of one kernel launch.
 *
 * Cycle attribution: at peak throughput every retired instruction
 * occupies exactly one issue slot, so the per-class instruction
 * counts *are* per-class issue cycles; whatever the launch's binding
 * constraint (tasklet latency, DMA engine) adds on top is the stall
 * residual. The partition is exact:
 *
 *   sum(classInstructions) == totalInstructions
 *   sum(classInstructions) + stallCycles == cycles
 */
struct LaunchStats
{
    uint64_t cycles = 0;            ///< modeled DPU cycles
    uint64_t totalInstructions = 0; ///< across all tasklets
    uint64_t maxTaskletWork = 0;    ///< instr*interval + stalls, max
    uint64_t dmaEngineCycles = 0;   ///< DMA engine occupancy
    uint64_t dmaBytes = 0;          ///< bytes moved by the DMA engine
    uint32_t tasklets = 0;          ///< tasklets launched
    double energyJoules = 0.0;      ///< instruction + DMA energy

    /** True when an armed fault plan hard-failed this core: the
     * kernel did not execute and every other field is zero. */
    bool failed = false;

    /** Fault events an armed plan injected during this launch
     * (bit flips, DMA corruption/timeouts, hard-fail/straggler
     * firings). Always 0 with no plan armed. */
    uint64_t faultEvents = 0;

    /** Issue cycles per InstrClass (sums to totalInstructions). */
    std::array<uint64_t, numInstrClasses> classInstructions{};

    /** Non-issue cycles: cycles - totalInstructions (pipeline
     * under-occupancy or DMA-engine bound). */
    uint64_t stallCycles = 0;

    /** High-level operation tallies (OpClass) across tasklets. */
    std::array<uint64_t, numOpClasses> opCounts{};

    /** Per-tasklet attribution, indexed by tasklet id. */
    std::vector<TaskletStats> perTasklet;
};

/**
 * Fixed-size zero-initialized byte bank with *lazy* zeroing: backed by
 * calloc, so untouched pages stay untouched OS zero pages instead of
 * being memset at construction. A value-initialized vector would touch
 * all 64 MiB of a modeled MRAM bank up front, which dominates host
 * time for sweeps that build one core per configuration point; with
 * the lazy bank only the pages a run actually uses ever fault in.
 * Reads of never-written bytes still return 0, exactly like the
 * vector this replaces.
 */
class ZeroedBank
{
  public:
    explicit ZeroedBank(size_t size)
        : data_(static_cast<uint8_t*>(
              std::calloc(size ? size : 1, 1))),
          size_(size)
    {
        if (!data_)
            throw std::bad_alloc();
    }

    ~ZeroedBank() { std::free(data_); }

    ZeroedBank(const ZeroedBank&) = delete;
    ZeroedBank& operator=(const ZeroedBank&) = delete;

    uint8_t* data() { return data_; }
    const uint8_t* data() const { return data_; }
    size_t size() const { return size_; }

  private:
    uint8_t* data_;
    size_t size_;
};

/**
 * One simulated DPU: a 64-MB MRAM bank, a 64-KB WRAM scratchpad, bump
 * allocators for both (the allocation totals feed the paper's memory-
 * consumption figure), and the launch/cycle model.
 */
class DpuCore
{
  public:
    explicit DpuCore(const CostModel& model = CostModel{});

    /** Cost-model parameters in effect. */
    const CostModel& model() const { return model_; }

    /// @name Host-side MRAM access (CPU-DPU / DPU-CPU transfers).
    /// @{
    void hostWriteMram(uint32_t addr, const void* src, uint32_t size);
    void hostReadMram(uint32_t addr, void* dst, uint32_t size) const;
    /// @}

    /// @name Host-side WRAM staging.
    /// Bounds-checked, and — unlike raw `wramData()` pokes — marks the
    /// bytes initialized in an attached sanitizer's shadow, the way a
    /// real host copy to a WRAM symbol legitimately initializes it.
    /// @{
    void hostWriteWram(uint32_t addr, const void* src, uint32_t size);
    void hostReadWram(uint32_t addr, void* dst, uint32_t size) const;
    /// @}

    /**
     * Attach (or, with nullptr, detach) a runtime sanitizer. Off by
     * default; the core does not own the sanitizer. While attached,
     * every simulated WRAM/MRAM access and DMA is checked — purely
     * observationally, so modeled statistics are unchanged.
     */
    void setSanitizer(check::Sanitizer* sanitizer)
    {
        sanitizer_ = sanitizer;
    }

    /** The attached sanitizer, or nullptr. */
    check::Sanitizer* sanitizer() const { return sanitizer_; }

    /**
     * Attach (or, with nullptr, detach) this core's slice of an armed
     * fault plan. Off by default; the core does not own the state
     * (PimSystem::armFaults does). While attached, launches, tasklet
     * DMA and memory writes consult the plan — with no plan, or a
     * plan whose specs never fire, every modeled statistic is
     * bit-identical to the unfaulted run (tests/fault_test.cc).
     */
    void setFaultState(fault::DpuFaultState* faults)
    {
        faults_ = faults;
    }

    /** The attached fault state, or nullptr. */
    fault::DpuFaultState* faultState() const { return faults_; }

    /**
     * Allocate @p size bytes of MRAM (8-byte aligned bump allocator).
     * @return the MRAM address of the allocation.
     */
    uint32_t mramAlloc(uint32_t size);

    /** Allocate WRAM (8-byte aligned bump allocator). */
    uint32_t wramAlloc(uint32_t size);

    /** Reset both allocators (new kernel program). */
    void resetAllocators();

    /** Bytes of MRAM currently allocated (paper's Figure 7 metric). */
    uint32_t mramAllocated() const { return mramTop_; }

    /** Bytes of WRAM currently allocated. */
    uint32_t wramAllocated() const { return wramTop_; }

    /** Raw WRAM pointer (kernel-side scratchpad accesses). */
    uint8_t* wramData() { return wram_.data(); }
    const uint8_t* wramData() const { return wram_.data(); }

    /** Raw MRAM pointer (used by the DMA model). */
    uint8_t* mramData() { return mram_.data(); }

    /**
     * Run @p kernel once per tasklet and update the launch statistics.
     * Tasklets execute sequentially in simulation; the cycle model
     * reconstructs their interleaving analytically.
     */
    LaunchStats launch(uint32_t numTasklets, const Kernel& kernel);

    /** Statistics of the most recent launch. */
    const LaunchStats& lastLaunch() const { return last_; }

  private:
    friend class TaskletContext;

    /** Account a DMA transfer on the engine; returns stall cycles. */
    uint64_t accountDma(uint32_t size);

    CostModel model_;
    ZeroedBank mram_;
    std::vector<uint8_t> wram_;
    uint32_t mramTop_ = 0;
    uint32_t wramTop_ = 0;
    uint64_t dmaEngineCycles_ = 0; ///< accumulated during a launch
    uint64_t dmaBytes_ = 0;        ///< accumulated during a launch
    check::Sanitizer* sanitizer_ = nullptr; ///< non-owning, opt-in
    fault::DpuFaultState* faults_ = nullptr; ///< non-owning, opt-in
    LaunchStats last_;
};

} // namespace sim
} // namespace tpl

#endif // TPL_PIMSIM_DPU_H
