/**
 * @file
 * Workload input generation helpers.
 */

#include "common/rng.h"

namespace tpl {

std::vector<float>
uniformFloats(size_t n, float lo, float hi, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<float> values(n);
    for (auto& v : values)
        v = rng.nextFloat(lo, hi);
    return values;
}

} // namespace tpl
