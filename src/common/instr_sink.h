/**
 * @file
 * Instruction-count sink interface.
 *
 * Every emulated operation in the reproduction (soft-float arithmetic,
 * emulated integer multiply/divide, LUT address generation, ...) reports
 * how many native DPU instructions it executed through this interface.
 * The PIM simulator implements it to accumulate per-tasklet cycle
 * counts; passing a null sink runs the same value semantics without
 * accounting (useful on the host side and in pure-numerics tests).
 */

#ifndef TPL_COMMON_INSTR_SINK_H
#define TPL_COMMON_INSTR_SINK_H

#include <array>
#include <cstdint>

namespace tpl {

/**
 * Classes of high-level operations the library executes. Emulated
 * routines report one event per operation *in addition to* their
 * instruction charge, so architecture studies can re-cost a method's
 * operation mix under a different PIM processing element (e.g. an
 * HBM-PIM-style PE with native floating point).
 */
enum class OpClass
{
    FloatAdd,  ///< add/sub (emulated on UPMEM, native elsewhere)
    FloatMul,
    FloatDiv,
    FloatSqrt,
    FloatCmp,
    FloatConv, ///< float<->int/fixed conversions
    Ldexp,     ///< exponent-add scaling
    IntMul,    ///< emulated 32-bit integer multiply
    IntDiv,
    TableRead, ///< one LUT query
};

/** Number of OpClass enumerators (array sizing). */
inline constexpr int numOpClasses = 10;

/** Stable short name of an operation class, e.g. "float_mul"
 * (metric/JSON keys; transpim's opClassName has the display names). */
inline const char*
opClassSlug(OpClass op)
{
    switch (op) {
      case OpClass::FloatAdd: return "float_add";
      case OpClass::FloatMul: return "float_mul";
      case OpClass::FloatDiv: return "float_div";
      case OpClass::FloatSqrt: return "float_sqrt";
      case OpClass::FloatCmp: return "float_cmp";
      case OpClass::FloatConv: return "float_conv";
      case OpClass::Ldexp: return "ldexp";
      case OpClass::IntMul: return "int_mul";
      case OpClass::IntDiv: return "int_div";
      case OpClass::TableRead: return "table_read";
    }
    return "unknown";
}

/**
 * Classes of *native instructions*, for cycle attribution. Where
 * OpClass tallies high-level operations (one FloatMul event per
 * multiply), InstrClass partitions the retired-instruction count
 * itself: every instruction charged through an InstrSink belongs to
 * exactly one class, so the per-class totals sum to the instruction
 * total exactly. The simulator's LaunchStats exposes this partition
 * per launch (plus a stall residual), which is what the obs layer and
 * `pimtrace` break cycles down by.
 */
enum class InstrClass
{
    IntAlu,     ///< native integer ALU / control flow / addressing
    IntMulDiv,  ///< emulated 32-bit multiply/divide expansion steps
    SoftFloat,  ///< software floating-point emulation (tpl::sf)
    WramAccess, ///< WRAM loads/stores
    DmaIssue,   ///< instructions issuing MRAM<->WRAM DMA transfers
    Barrier,    ///< barrier_wait issue slots
};

/** Number of InstrClass enumerators (array sizing). */
inline constexpr int numInstrClasses = 6;

/** Stable short name of an instruction class, e.g. "softfloat". */
inline const char*
instrClassName(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "int_alu";
      case InstrClass::IntMulDiv: return "int_muldiv";
      case InstrClass::SoftFloat: return "softfloat";
      case InstrClass::WramAccess: return "wram_access";
      case InstrClass::DmaIssue: return "dma_issue";
      case InstrClass::Barrier: return "barrier";
    }
    return "unknown";
}

/** Receiver for native-instruction counts of emulated operations. */
class InstrSink
{
  public:
    virtual ~InstrSink() = default;

    /** Account for @p instructions retired native instructions. */
    virtual void charge(uint32_t instructions) = 0;

    /**
     * Account for @p instructions of class @p cls. The default folds
     * into the untyped charge(), so sinks that do not attribute (the
     * counting/tally sinks) see exactly the totals they always saw;
     * the simulator's TaskletContext overrides this to keep the
     * per-class partition.
     */
    virtual void chargeClass(InstrClass cls, uint32_t instructions)
    {
        (void)cls;
        charge(instructions);
    }

    /** Optional: one high-level operation of class @p op occurred. */
    virtual void note(OpClass op) { (void)op; }

    /**
     * Bulk classed charge: @p n elements each retiring @p perElem
     * instructions of class @p cls. Semantically identical to calling
     * chargeClass(cls, perElem) @p n times; the default chunks the
     * 64-bit total through chargeClass() so every derived sink sees
     * exactly the totals it always saw. TaskletContext and the batch
     * tally sinks override this with a single 64-bit add — the hook
     * that lets the batch execution path flush a whole chunk's charges
     * in O(classes) instead of O(elements).
     */
    virtual void
    chargeClassN(InstrClass cls, uint32_t perElem, uint64_t n)
    {
        uint64_t total = static_cast<uint64_t>(perElem) * n;
        while (total > 0) {
            uint32_t step = total > 0xffffffffull
                                ? 0xffffffffu
                                : static_cast<uint32_t>(total);
            chargeClass(cls, step);
            total -= step;
        }
    }

    /**
     * Bulk note: @p n operations of class @p op occurred. Identical to
     * n note() calls; overridden by counting sinks with one add.
     */
    virtual void
    noteN(OpClass op, uint64_t n)
    {
        for (uint64_t i = 0; i < n; ++i)
            note(op);
    }
};

/** Charge helper tolerating a null sink. */
inline void
chargeInstr(InstrSink* sink, uint32_t instructions)
{
    if (sink)
        sink->charge(instructions);
}

/** Classed charge helper tolerating a null sink. */
inline void
chargeClassed(InstrSink* sink, InstrClass cls, uint32_t instructions)
{
    if (sink)
        sink->chargeClass(cls, instructions);
}

/** Note helper tolerating a null sink. */
inline void
noteOp(InstrSink* sink, OpClass op)
{
    if (sink)
        sink->note(op);
}

/** Trivial sink that simply counts; used by tests and calibration. */
class CountingSink : public InstrSink
{
  public:
    void charge(uint32_t instructions) override { total_ += instructions; }

    void chargeClassN(InstrClass cls, uint32_t perElem,
                      uint64_t n) override
    {
        (void)cls;
        total_ += static_cast<uint64_t>(perElem) * n;
    }

    /** Total instructions charged so far. */
    uint64_t total() const { return total_; }

    /** Reset the counter to zero. */
    void reset() { total_ = 0; }

  private:
    uint64_t total_ = 0;
};

/**
 * Non-virtual instruction/operation accumulator for batch loops.
 *
 * The templated numeric cores (tpl::sf's softfloat_core.h, the
 * transpim evaluator bodies) are generic over a Sink type with the
 * same charge/chargeClass/note member shapes as InstrSink but without
 * virtual dispatch. BatchTally is the batch-path sink: per-element
 * charges become inlined array adds, and the accumulated totals are
 * flushed to a real InstrSink once per batch through the bulk
 * chargeClassN/noteN hooks. Because every per-element code path runs
 * the *same* template with this sink as with SinkRef, the flushed
 * totals are bit-identical to the scalar path's by construction.
 */
class BatchTally
{
  public:
    void
    charge(uint32_t instructions)
    {
        classInstr_[static_cast<int>(InstrClass::IntAlu)] +=
            instructions;
    }

    void
    chargeClass(InstrClass cls, uint32_t instructions)
    {
        classInstr_[static_cast<int>(cls)] += instructions;
    }

    void note(OpClass op) { ++ops_[static_cast<int>(op)]; }

    /** 64-bit classed add (bulk flushes from nested tallies). */
    void
    chargeClassWide(InstrClass cls, uint64_t instructions)
    {
        classInstr_[static_cast<int>(cls)] += instructions;
    }

    /** 64-bit operation add. */
    void
    noteWide(OpClass op, uint64_t n)
    {
        ops_[static_cast<int>(op)] += n;
    }

    /** Accumulated instructions per InstrClass. */
    const std::array<uint64_t, numInstrClasses>& classInstructions() const
    {
        return classInstr_;
    }

    /** Accumulated operations per OpClass. */
    const std::array<uint64_t, numOpClasses>& opCounts() const
    {
        return ops_;
    }

    /** Total instructions accumulated across all classes. */
    uint64_t
    totalInstructions() const
    {
        uint64_t t = 0;
        for (uint64_t v : classInstr_)
            t += v;
        return t;
    }

    /** Forward the accumulated totals to @p sink (null tolerated). */
    void
    flushTo(InstrSink* sink) const
    {
        if (!sink)
            return;
        for (int c = 0; c < numInstrClasses; ++c)
            if (classInstr_[c])
                sink->chargeClassN(static_cast<InstrClass>(c), 1,
                                   classInstr_[c]);
        for (int o = 0; o < numOpClasses; ++o)
            if (ops_[o])
                sink->noteN(static_cast<OpClass>(o), ops_[o]);
    }

    /** Zero all accumulators. */
    void
    reset()
    {
        classInstr_ = {};
        ops_ = {};
    }

    /** No underlying InstrSink (Sink-shape compatibility). */
    InstrSink* raw() const { return nullptr; }

  private:
    std::array<uint64_t, numInstrClasses> classInstr_{};
    std::array<uint64_t, numOpClasses> ops_{};
};

/**
 * Pointer-to-InstrSink adapter satisfying the non-virtual Sink shape
 * the templated cores expect. Wraps a possibly-null InstrSink*; the
 * scalar public entry points (sf::add(a, b, sink), Evaluator::eval)
 * are exactly the templated cores instantiated with SinkRef, so the
 * scalar and batch paths can never diverge in what they charge.
 */
class SinkRef
{
  public:
    explicit SinkRef(InstrSink* sink) : sink_(sink) {}

    void
    charge(uint32_t instructions)
    {
        if (sink_)
            sink_->charge(instructions);
    }

    void
    chargeClass(InstrClass cls, uint32_t instructions)
    {
        if (sink_)
            sink_->chargeClass(cls, instructions);
    }

    void
    note(OpClass op)
    {
        if (sink_)
            sink_->note(op);
    }

    /** The wrapped sink (may be null). */
    InstrSink* raw() const { return sink_; }

  private:
    InstrSink* sink_;
};

/** Sink that discards everything; host-side value-only evaluation. */
class NullSink
{
  public:
    void charge(uint32_t) {}
    void chargeClass(InstrClass, uint32_t) {}
    void note(OpClass) {}
    InstrSink* raw() const { return nullptr; }
};

/**
 * InstrSink adapter over a BatchTally, for batching code paths that
 * still call InstrSink*-based routines (the binary16/64 softfloat
 * tiers, the generic evalBatch fallback): charges land in the tally's
 * plain arrays and are flushed to the real sink once per batch.
 */
class TallySink final : public InstrSink
{
  public:
    explicit TallySink(BatchTally& tally) : tally_(tally) {}

    void charge(uint32_t instructions) override
    {
        tally_.charge(instructions);
    }

    void chargeClass(InstrClass cls, uint32_t instructions) override
    {
        tally_.chargeClass(cls, instructions);
    }

    void note(OpClass op) override { tally_.note(op); }

    void chargeClassN(InstrClass cls, uint32_t perElem,
                      uint64_t n) override
    {
        tally_.chargeClassWide(cls, static_cast<uint64_t>(perElem) * n);
    }

    void noteN(OpClass op, uint64_t n) override
    {
        tally_.noteWide(op, n);
    }

  private:
    BatchTally& tally_;
};

/**
 * Resolve the InstrSink* a sink-templated body should hand to scalar
 * InstrSink*-based arithmetic routines (the binary16/64 softfloat
 * tiers). Batch sinks expose a bridge() adapter that tallies into their
 * batch accumulator; everything else passes its raw sink through. Only
 * valid for pure-arithmetic callees — table reads must stay on the
 * templated readT path so the DMA model resolves the real tasklet.
 */
template <class S>
inline InstrSink*
sinkArith(S& sink)
{
    if constexpr (requires { sink.bridge(); })
        return sink.bridge();
    else
        return sink.raw();
}

} // namespace tpl

#endif // TPL_COMMON_INSTR_SINK_H
