/**
 * @file
 * Instruction-count sink interface.
 *
 * Every emulated operation in the reproduction (soft-float arithmetic,
 * emulated integer multiply/divide, LUT address generation, ...) reports
 * how many native DPU instructions it executed through this interface.
 * The PIM simulator implements it to accumulate per-tasklet cycle
 * counts; passing a null sink runs the same value semantics without
 * accounting (useful on the host side and in pure-numerics tests).
 */

#ifndef TPL_COMMON_INSTR_SINK_H
#define TPL_COMMON_INSTR_SINK_H

#include <cstdint>

namespace tpl {

/**
 * Classes of high-level operations the library executes. Emulated
 * routines report one event per operation *in addition to* their
 * instruction charge, so architecture studies can re-cost a method's
 * operation mix under a different PIM processing element (e.g. an
 * HBM-PIM-style PE with native floating point).
 */
enum class OpClass
{
    FloatAdd,  ///< add/sub (emulated on UPMEM, native elsewhere)
    FloatMul,
    FloatDiv,
    FloatSqrt,
    FloatCmp,
    FloatConv, ///< float<->int/fixed conversions
    Ldexp,     ///< exponent-add scaling
    IntMul,    ///< emulated 32-bit integer multiply
    IntDiv,
    TableRead, ///< one LUT query
};

/** Number of OpClass enumerators (array sizing). */
inline constexpr int numOpClasses = 10;

/** Stable short name of an operation class, e.g. "float_mul"
 * (metric/JSON keys; transpim's opClassName has the display names). */
inline const char*
opClassSlug(OpClass op)
{
    switch (op) {
      case OpClass::FloatAdd: return "float_add";
      case OpClass::FloatMul: return "float_mul";
      case OpClass::FloatDiv: return "float_div";
      case OpClass::FloatSqrt: return "float_sqrt";
      case OpClass::FloatCmp: return "float_cmp";
      case OpClass::FloatConv: return "float_conv";
      case OpClass::Ldexp: return "ldexp";
      case OpClass::IntMul: return "int_mul";
      case OpClass::IntDiv: return "int_div";
      case OpClass::TableRead: return "table_read";
    }
    return "unknown";
}

/**
 * Classes of *native instructions*, for cycle attribution. Where
 * OpClass tallies high-level operations (one FloatMul event per
 * multiply), InstrClass partitions the retired-instruction count
 * itself: every instruction charged through an InstrSink belongs to
 * exactly one class, so the per-class totals sum to the instruction
 * total exactly. The simulator's LaunchStats exposes this partition
 * per launch (plus a stall residual), which is what the obs layer and
 * `pimtrace` break cycles down by.
 */
enum class InstrClass
{
    IntAlu,     ///< native integer ALU / control flow / addressing
    IntMulDiv,  ///< emulated 32-bit multiply/divide expansion steps
    SoftFloat,  ///< software floating-point emulation (tpl::sf)
    WramAccess, ///< WRAM loads/stores
    DmaIssue,   ///< instructions issuing MRAM<->WRAM DMA transfers
    Barrier,    ///< barrier_wait issue slots
};

/** Number of InstrClass enumerators (array sizing). */
inline constexpr int numInstrClasses = 6;

/** Stable short name of an instruction class, e.g. "softfloat". */
inline const char*
instrClassName(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "int_alu";
      case InstrClass::IntMulDiv: return "int_muldiv";
      case InstrClass::SoftFloat: return "softfloat";
      case InstrClass::WramAccess: return "wram_access";
      case InstrClass::DmaIssue: return "dma_issue";
      case InstrClass::Barrier: return "barrier";
    }
    return "unknown";
}

/** Receiver for native-instruction counts of emulated operations. */
class InstrSink
{
  public:
    virtual ~InstrSink() = default;

    /** Account for @p instructions retired native instructions. */
    virtual void charge(uint32_t instructions) = 0;

    /**
     * Account for @p instructions of class @p cls. The default folds
     * into the untyped charge(), so sinks that do not attribute (the
     * counting/tally sinks) see exactly the totals they always saw;
     * the simulator's TaskletContext overrides this to keep the
     * per-class partition.
     */
    virtual void chargeClass(InstrClass cls, uint32_t instructions)
    {
        (void)cls;
        charge(instructions);
    }

    /** Optional: one high-level operation of class @p op occurred. */
    virtual void note(OpClass op) { (void)op; }
};

/** Charge helper tolerating a null sink. */
inline void
chargeInstr(InstrSink* sink, uint32_t instructions)
{
    if (sink)
        sink->charge(instructions);
}

/** Classed charge helper tolerating a null sink. */
inline void
chargeClassed(InstrSink* sink, InstrClass cls, uint32_t instructions)
{
    if (sink)
        sink->chargeClass(cls, instructions);
}

/** Note helper tolerating a null sink. */
inline void
noteOp(InstrSink* sink, OpClass op)
{
    if (sink)
        sink->note(op);
}

/** Trivial sink that simply counts; used by tests and calibration. */
class CountingSink : public InstrSink
{
  public:
    void charge(uint32_t instructions) override { total_ += instructions; }

    /** Total instructions charged so far. */
    uint64_t total() const { return total_; }

    /** Reset the counter to zero. */
    void reset() { total_ = 0; }

  private:
    uint64_t total_ = 0;
};

} // namespace tpl

#endif // TPL_COMMON_INSTR_SINK_H
