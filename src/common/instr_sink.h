/**
 * @file
 * Instruction-count sink interface.
 *
 * Every emulated operation in the reproduction (soft-float arithmetic,
 * emulated integer multiply/divide, LUT address generation, ...) reports
 * how many native DPU instructions it executed through this interface.
 * The PIM simulator implements it to accumulate per-tasklet cycle
 * counts; passing a null sink runs the same value semantics without
 * accounting (useful on the host side and in pure-numerics tests).
 */

#ifndef TPL_COMMON_INSTR_SINK_H
#define TPL_COMMON_INSTR_SINK_H

#include <cstdint>

namespace tpl {

/**
 * Classes of high-level operations the library executes. Emulated
 * routines report one event per operation *in addition to* their
 * instruction charge, so architecture studies can re-cost a method's
 * operation mix under a different PIM processing element (e.g. an
 * HBM-PIM-style PE with native floating point).
 */
enum class OpClass
{
    FloatAdd,  ///< add/sub (emulated on UPMEM, native elsewhere)
    FloatMul,
    FloatDiv,
    FloatSqrt,
    FloatCmp,
    FloatConv, ///< float<->int/fixed conversions
    Ldexp,     ///< exponent-add scaling
    IntMul,    ///< emulated 32-bit integer multiply
    IntDiv,
    TableRead, ///< one LUT query
};

/** Number of OpClass enumerators (array sizing). */
inline constexpr int numOpClasses = 10;

/** Receiver for native-instruction counts of emulated operations. */
class InstrSink
{
  public:
    virtual ~InstrSink() = default;

    /** Account for @p instructions retired native instructions. */
    virtual void charge(uint32_t instructions) = 0;

    /** Optional: one high-level operation of class @p op occurred. */
    virtual void note(OpClass op) { (void)op; }
};

/** Charge helper tolerating a null sink. */
inline void
chargeInstr(InstrSink* sink, uint32_t instructions)
{
    if (sink)
        sink->charge(instructions);
}

/** Note helper tolerating a null sink. */
inline void
noteOp(InstrSink* sink, OpClass op)
{
    if (sink)
        sink->note(op);
}

/** Trivial sink that simply counts; used by tests and calibration. */
class CountingSink : public InstrSink
{
  public:
    void charge(uint32_t instructions) override { total_ += instructions; }

    /** Total instructions charged so far. */
    uint64_t total() const { return total_; }

    /** Reset the counter to zero. */
    void reset() { total_ = 0; }

  private:
    uint64_t total_ = 0;
};

} // namespace tpl

#endif // TPL_COMMON_INSTR_SINK_H
