/**
 * @file
 * Bit-manipulation utilities shared across the TransPimLib reproduction.
 *
 * These helpers centralize the float<->integer bit reinterpretations and
 * the small bit tricks (count-leading-zeros, masks) used by the soft-float
 * implementation, the fixed-point type, and the LUT address generators.
 */

#ifndef TPL_COMMON_BITOPS_H
#define TPL_COMMON_BITOPS_H

#include <bit>
#include <cstdint>

namespace tpl {

/** Reinterpret an IEEE-754 binary32 value as its raw bit pattern. */
inline uint32_t
floatBits(float value)
{
    return std::bit_cast<uint32_t>(value);
}

/** Reinterpret a raw 32-bit pattern as an IEEE-754 binary32 value. */
inline float
bitsToFloat(uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

/** Number of leading zero bits; returns 32 for x == 0. */
inline int
countLeadingZeros32(uint32_t x)
{
    if (x == 0)
        return 32;
    return std::countl_zero(x);
}

/** Number of leading zero bits; returns 64 for x == 0. */
inline int
countLeadingZeros64(uint64_t x)
{
    if (x == 0)
        return 64;
    return std::countl_zero(x);
}

/** True when x is a power of two (x != 0 and has a single set bit). */
inline bool
isPowerOfTwo(uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer base-2 logarithm of a power of two. */
inline int
log2Exact(uint32_t x)
{
    return 31 - countLeadingZeros32(x);
}

/** Sign bit (bit 31) of an IEEE-754 binary32 pattern. */
inline uint32_t
ieeeSign(uint32_t bits)
{
    return bits >> 31;
}

/** Biased 8-bit exponent field of an IEEE-754 binary32 pattern. */
inline uint32_t
ieeeExponent(uint32_t bits)
{
    return (bits >> 23) & 0xffu;
}

/** 23-bit mantissa (fraction) field of an IEEE-754 binary32 pattern. */
inline uint32_t
ieeeMantissa(uint32_t bits)
{
    return bits & 0x7fffffu;
}

/** Assemble an IEEE-754 binary32 pattern from its three fields. */
inline uint32_t
ieeePack(uint32_t sign, uint32_t exponent, uint32_t mantissa)
{
    return (sign << 31) | (exponent << 23) | mantissa;
}

/** IEEE-754 binary32 exponent bias. */
inline constexpr int ieeeBias = 127;

/** Quiet NaN bit pattern used as the canonical NaN result. */
inline constexpr uint32_t ieeeQuietNan = 0x7fc00000u;

/** Positive infinity bit pattern. */
inline constexpr uint32_t ieeePosInf = 0x7f800000u;

/** Negative infinity bit pattern. */
inline constexpr uint32_t ieeeNegInf = 0xff800000u;

} // namespace tpl

#endif // TPL_COMMON_BITOPS_H
