/**
 * @file
 * Q3.28 fixed-point conversions.
 */

#include "common/fixed_point.h"

#include <cmath>

namespace tpl {

Fixed
Fixed::fromDouble(double value)
{
    double scaled = value * static_cast<double>(1u << fracBits);
    return fromRaw(static_cast<int32_t>(std::llround(scaled)));
}

Fixed
Fixed::fromFloat(float value)
{
    return fromDouble(static_cast<double>(value));
}

double
Fixed::toDouble() const
{
    return static_cast<double>(raw_) * resolution;
}

float
Fixed::toFloat() const
{
    return static_cast<float>(toDouble());
}

Fixed
Fixed::operator*(Fixed other) const
{
    int64_t product = static_cast<int64_t>(raw_) *
                      static_cast<int64_t>(other.raw_);
    return fromRaw(static_cast<int32_t>(product >> fracBits));
}

Fixed
saturatingFromDouble(double value)
{
    double scaled = value * static_cast<double>(1u << Fixed::fracBits);
    if (scaled >= 2147483647.0)
        return Fixed::fromRaw(INT32_MAX);
    if (scaled <= -2147483648.0)
        return Fixed::fromRaw(INT32_MIN);
    return Fixed::fromRaw(static_cast<int32_t>(std::llround(scaled)));
}

Fixed
fixedPi()
{
    return Fixed::fromDouble(3.14159265358979323846);
}

Fixed
fixedHalfPi()
{
    return Fixed::fromDouble(1.57079632679489661923);
}

Fixed
fixedTwoPi()
{
    return Fixed::fromDouble(6.28318530717958647692);
}

} // namespace tpl
