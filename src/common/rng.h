/**
 * @file
 * Deterministic pseudo-random input generation for tests and benchmarks.
 *
 * The paper's microbenchmarks use 2^16 uniformly distributed floating-
 * point inputs (Section 4.1.1). Everything here is seeded and
 * reproducible so benchmark rows are stable across runs.
 */

#ifndef TPL_COMMON_RNG_H
#define TPL_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpl {

/**
 * SplitMix64 generator: tiny, fast, and good enough for uniform workload
 * generation; avoids dragging <random> engine state into headers.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    nextUnitDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    nextFloat(float lo, float hi)
    {
        return lo + static_cast<float>(nextUnitDouble()) * (hi - lo);
    }

  private:
    uint64_t state_;
};

/** Generate n uniform floats in [lo, hi) with the given seed. */
std::vector<float> uniformFloats(size_t n, float lo, float hi,
                                 uint64_t seed = 0x7ea9c0de);

} // namespace tpl

#endif // TPL_COMMON_RNG_H
