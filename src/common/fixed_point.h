/**
 * @file
 * Q3.28 signed fixed-point type used by TransPimLib's fixed-point method
 * variants.
 *
 * The paper's fixed-point format uses 28 bits for the fractional part,
 * 3 bits for the integer part (enough to represent up to 2*pi) and one
 * sign bit, stored in a single 32-bit word. The resolution is
 * 2^-28 ~= 3.7e-9, which matches the accuracy limit of binary32 inputs
 * in [4, 8] and therefore does not constrain the library's accuracy.
 *
 * Arithmetic here is the *reference* (host-side) semantics. When fixed-
 * point arithmetic runs inside a simulated PIM kernel, the kernel charges
 * cycles through the pimsim cost model and uses these same value
 * semantics, which is exactly what happens on real UPMEM hardware (the
 * DPU executes native 32-bit integer instructions).
 */

#ifndef TPL_COMMON_FIXED_POINT_H
#define TPL_COMMON_FIXED_POINT_H

#include <cstdint>

namespace tpl {

/**
 * Signed Q3.28 fixed-point value.
 *
 * The type is a thin, trivially-copyable wrapper over int32_t so that it
 * can live in simulated WRAM/MRAM buffers and be transferred bytewise.
 * All operations use two's-complement wrap-around, matching the DPU's
 * 32-bit integer ALU; helpers for saturation are provided separately.
 */
class Fixed
{
  public:
    /** Number of fractional bits in the representation. */
    static constexpr int fracBits = 28;

    /** Smallest positive increment, 2^-28. */
    static constexpr double resolution = 1.0 / (1 << fracBits);

    constexpr Fixed() : raw_(0) {}

    /** Wrap an existing raw Q3.28 word. */
    static constexpr Fixed
    fromRaw(int32_t raw)
    {
        Fixed f;
        f.raw_ = raw;
        return f;
    }

    /** Convert a double to Q3.28 with round-to-nearest. */
    static Fixed fromDouble(double value);

    /** Convert a float to Q3.28 with round-to-nearest. */
    static Fixed fromFloat(float value);

    /** Raw two's-complement word. */
    constexpr int32_t raw() const { return raw_; }

    /** Exact value as a double (Q3.28 is a subset of binary64). */
    double toDouble() const;

    /** Value rounded to the nearest binary32. */
    float toFloat() const;

    constexpr Fixed
    operator+(Fixed other) const
    {
        return fromRaw(static_cast<int32_t>(
            static_cast<uint32_t>(raw_) + static_cast<uint32_t>(other.raw_)));
    }

    constexpr Fixed
    operator-(Fixed other) const
    {
        return fromRaw(static_cast<int32_t>(
            static_cast<uint32_t>(raw_) - static_cast<uint32_t>(other.raw_)));
    }

    constexpr Fixed operator-() const { return fromRaw(-raw_); }

    /**
     * Full-precision Q3.28 multiply: 32x32 -> 64-bit product, then an
     * arithmetic shift right by fracBits. This mirrors the DPU sequence
     * (emulated 64-bit multiply followed by a shift).
     */
    Fixed operator*(Fixed other) const;

    /** Arithmetic shift right (divide by 2^n, rounding toward -inf). */
    constexpr Fixed
    shiftRight(int n) const
    {
        return fromRaw(raw_ >> n);
    }

    /** Shift left (multiply by 2^n, wrap-around on overflow). */
    constexpr Fixed
    shiftLeft(int n) const
    {
        return fromRaw(static_cast<int32_t>(
            static_cast<uint32_t>(raw_) << n));
    }

    constexpr bool operator==(const Fixed&) const = default;

    constexpr bool operator<(Fixed other) const { return raw_ < other.raw_; }
    constexpr bool operator>(Fixed other) const { return raw_ > other.raw_; }
    constexpr bool operator<=(Fixed other) const { return raw_ <= other.raw_; }
    constexpr bool operator>=(Fixed other) const { return raw_ >= other.raw_; }

  private:
    int32_t raw_;
};

/** Convert with saturation instead of wrap-around. */
Fixed saturatingFromDouble(double value);

/** pi in Q3.28. */
Fixed fixedPi();

/** pi/2 in Q3.28. */
Fixed fixedHalfPi();

/** 2*pi in Q3.28. */
Fixed fixedTwoPi();

} // namespace tpl

#endif // TPL_COMMON_FIXED_POINT_H
