/**
 * @file
 * Emulated 32-bit integer multiplication and division with DPU-style
 * instruction accounting.
 *
 * The UPMEM DPU has no 32x32 multiplier: it provides an 8x8 multiply
 * step, and the compiler/runtime expand wider multiplies into shift-add
 * sequences over the operand bytes. Division is a div_step loop. These
 * helpers compute exact results on the host while charging instruction
 * counts that follow the DPU expansion (data-dependent for multiply:
 * all-zero operand bytes are skipped, matching the runtime's behaviour
 * and the ~8-35 cycle range reported for 32-bit multiplies in the UPMEM
 * characterization literature; division is a fixed-length loop).
 */

#ifndef TPL_COMMON_EMU_INT_H
#define TPL_COMMON_EMU_INT_H

#include <cstdint>

#include "common/instr_sink.h"

namespace tpl {

/** Unsigned 32x32 -> 64 multiply, charging the shift-add expansion. */
uint64_t emuMul32(uint32_t a, uint32_t b, InstrSink* sink);

/** Signed 32x32 -> 64 multiply (sign handling adds a few instructions). */
int64_t emuMulS32(int32_t a, int32_t b, InstrSink* sink);

/**
 * Unsigned 32/32 divide via a div_step loop.
 * @param remainder optional out-parameter receiving a % b.
 * @pre b != 0.
 */
uint32_t emuDiv32(uint32_t a, uint32_t b, InstrSink* sink,
                  uint32_t* remainder = nullptr);

/** Signed 32/32 divide (C truncation semantics). @pre b != 0. */
int32_t emuDivS32(int32_t a, int32_t b, InstrSink* sink);

} // namespace tpl

#endif // TPL_COMMON_EMU_INT_H
