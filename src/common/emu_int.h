/**
 * @file
 * Emulated 32-bit integer multiplication and division with DPU-style
 * instruction accounting.
 *
 * The UPMEM DPU has no 32x32 multiplier: it provides an 8x8 multiply
 * step, and the compiler/runtime expand wider multiplies into shift-add
 * sequences over the operand bytes. Division is a div_step loop. These
 * helpers compute exact results on the host while charging instruction
 * counts that follow the DPU expansion (data-dependent for multiply:
 * all-zero operand bytes are skipped, matching the runtime's behaviour
 * and the ~8-35 cycle range reported for 32-bit multiplies in the UPMEM
 * characterization literature; division is a fixed-length loop).
 *
 * The cores are templates over the non-virtual Sink shape (SinkRef,
 * BatchTally, NullSink — see common/instr_sink.h) so batch loops can
 * inline them with zero virtual dispatch; the InstrSink* entry points
 * below are the same templates instantiated with SinkRef.
 */

#ifndef TPL_COMMON_EMU_INT_H
#define TPL_COMMON_EMU_INT_H

#include <cstdint>

#include "common/instr_sink.h"

namespace tpl {

namespace emu {

/**
 * Instruction cost of one byte-row of the shift-add multiply expansion:
 * an 8x8 mul_step-based partial product plus shift and accumulate.
 */
inline constexpr uint32_t mulRowCost = 6;

/** Fixed setup/teardown cost of the multiply expansion. */
inline constexpr uint32_t mulBaseCost = 8;

/** Per-bit cost of the div_step loop (step + loop control, amortized). */
inline constexpr uint32_t divStepCost = 3;

/** Number of div_step iterations for a 32-bit divide. */
inline constexpr uint32_t divSteps = 32;

/** Fixed setup/teardown cost of the divide expansion. */
inline constexpr uint32_t divBaseCost = 10;

/** Count the non-zero bytes of a 32-bit operand. */
inline uint32_t
nonZeroBytes(uint32_t v)
{
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i) {
        if ((v >> (8 * i)) & 0xffu)
            ++n;
    }
    return n;
}

} // namespace emu

/** Unsigned 32x32 -> 64 multiply, charging the shift-add expansion. */
template <class S>
inline uint64_t
emuMul32T(uint32_t a, uint32_t b, S& s)
{
    // The runtime expansion iterates over the bytes of one operand,
    // skipping zero bytes; pick the operand with fewer non-zero bytes,
    // as a strength-reducing compiler would for known-shape operands.
    uint32_t rows = emu::nonZeroBytes(a) < emu::nonZeroBytes(b)
                        ? emu::nonZeroBytes(a)
                        : emu::nonZeroBytes(b);
    s.chargeClass(InstrClass::IntMulDiv,
                  emu::mulBaseCost + rows * emu::mulRowCost);
    return static_cast<uint64_t>(a) * static_cast<uint64_t>(b);
}

/** Signed 32x32 -> 64 multiply (sign handling adds a few instructions). */
template <class S>
inline int64_t
emuMulS32T(int32_t a, int32_t b, S& s)
{
    // Sign handling: two conditional negations around the unsigned core.
    s.chargeClass(InstrClass::IntMulDiv, 4);
    uint32_t ua = a < 0 ? static_cast<uint32_t>(-(int64_t)a)
                        : static_cast<uint32_t>(a);
    uint32_t ub = b < 0 ? static_cast<uint32_t>(-(int64_t)b)
                        : static_cast<uint32_t>(b);
    uint64_t mag = emuMul32T(ua, ub, s);
    int64_t result = static_cast<int64_t>(mag);
    if ((a < 0) != (b < 0))
        result = -result;
    return result;
}

/**
 * Unsigned 32/32 divide via a div_step loop.
 * @param remainder optional out-parameter receiving a % b.
 * @pre b != 0.
 */
template <class S>
inline uint32_t
emuDiv32T(uint32_t a, uint32_t b, S& s, uint32_t* remainder = nullptr)
{
    s.chargeClass(InstrClass::IntMulDiv,
                  emu::divBaseCost + emu::divSteps * emu::divStepCost / 2);
    if (remainder)
        *remainder = a % b;
    return a / b;
}

/** Signed 32/32 divide (C truncation semantics). @pre b != 0. */
template <class S>
inline int32_t
emuDivS32T(int32_t a, int32_t b, S& s)
{
    s.chargeClass(InstrClass::IntMulDiv, 4);
    uint32_t ua = a < 0 ? static_cast<uint32_t>(-(int64_t)a)
                        : static_cast<uint32_t>(a);
    uint32_t ub = b < 0 ? static_cast<uint32_t>(-(int64_t)b)
                        : static_cast<uint32_t>(b);
    uint32_t mag = emuDiv32T(ua, ub, s);
    int32_t q = static_cast<int32_t>(mag);
    if ((a < 0) != (b < 0))
        q = -q;
    return q;
}

/** Unsigned 32x32 -> 64 multiply, charging the shift-add expansion. */
uint64_t emuMul32(uint32_t a, uint32_t b, InstrSink* sink);

/** Signed 32x32 -> 64 multiply (sign handling adds a few instructions). */
int64_t emuMulS32(int32_t a, int32_t b, InstrSink* sink);

/**
 * Unsigned 32/32 divide via a div_step loop.
 * @param remainder optional out-parameter receiving a % b.
 * @pre b != 0.
 */
uint32_t emuDiv32(uint32_t a, uint32_t b, InstrSink* sink,
                  uint32_t* remainder = nullptr);

/** Signed 32/32 divide (C truncation semantics). @pre b != 0. */
int32_t emuDivS32(int32_t a, int32_t b, InstrSink* sink);

} // namespace tpl

#endif // TPL_COMMON_EMU_INT_H
