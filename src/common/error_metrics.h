/**
 * @file
 * Accuracy metrics used throughout the evaluation: root-mean-square
 * absolute error (RMSE), maximum absolute error, and units-in-the-last-
 * place (ULP) distance, exactly the three metrics the paper reports
 * (Section 4.1.1).
 */

#ifndef TPL_COMMON_ERROR_METRICS_H
#define TPL_COMMON_ERROR_METRICS_H

#include <cstddef>
#include <cstdint>
#include <span>

namespace tpl {

/** Aggregate error statistics between an approximation and a reference. */
struct ErrorStats
{
    /** Root-mean-square absolute error. */
    double rmse = 0.0;
    /** Maximum absolute error. */
    double maxAbs = 0.0;
    /** Mean absolute error. */
    double meanAbs = 0.0;
    /** Maximum ULP distance (binary32 grid of the reference). */
    double maxUlp = 0.0;
    /** Number of samples the statistics cover. */
    size_t count = 0;
};

/**
 * Incremental accumulator for ErrorStats so evaluation loops do not need
 * to materialize both arrays.
 */
class ErrorAccumulator
{
  public:
    /** Record one (approximation, reference) pair. */
    void add(double approx, double reference);

    /** Finalize and return the aggregate statistics. */
    ErrorStats stats() const;

  private:
    double sumSq_ = 0.0;
    double sumAbs_ = 0.0;
    double maxAbs_ = 0.0;
    double maxUlp_ = 0.0;
    size_t count_ = 0;
};

/** Compute error statistics over two equally-sized spans. */
ErrorStats computeErrorStats(std::span<const float> approx,
                             std::span<const float> reference);

/**
 * ULP distance between two binary32 values: the number of representable
 * floats between them (0 when bit-identical, and by convention +inf is
 * returned as a large sentinel when signs differ around non-zero values
 * or when either input is NaN).
 */
double ulpDistance(float a, float b);

} // namespace tpl

#endif // TPL_COMMON_ERROR_METRICS_H
