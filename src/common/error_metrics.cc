/**
 * @file
 * Accuracy metric implementations.
 */

#include "common/error_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bitops.h"

namespace tpl {

namespace {

/** Map a float's bit pattern onto a monotonically ordered integer line. */
int64_t
orderedBits(float value)
{
    uint32_t bits = floatBits(value);
    if (bits & 0x80000000u)
        return -static_cast<int64_t>(bits & 0x7fffffffu);
    return static_cast<int64_t>(bits);
}

} // namespace

double
ulpDistance(float a, float b)
{
    if (std::isnan(a) || std::isnan(b))
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(std::llabs(orderedBits(a) - orderedBits(b)));
}

void
ErrorAccumulator::add(double approx, double reference)
{
    double err = std::abs(approx - reference);
    sumSq_ += err * err;
    sumAbs_ += err;
    maxAbs_ = std::max(maxAbs_, err);
    maxUlp_ = std::max(maxUlp_, ulpDistance(static_cast<float>(approx),
                                            static_cast<float>(reference)));
    ++count_;
}

ErrorStats
ErrorAccumulator::stats() const
{
    ErrorStats s;
    s.count = count_;
    if (count_ == 0)
        return s;
    s.rmse = std::sqrt(sumSq_ / static_cast<double>(count_));
    s.meanAbs = sumAbs_ / static_cast<double>(count_);
    s.maxAbs = maxAbs_;
    s.maxUlp = maxUlp_;
    return s;
}

ErrorStats
computeErrorStats(std::span<const float> approx,
                  std::span<const float> reference)
{
    ErrorAccumulator acc;
    size_t n = std::min(approx.size(), reference.size());
    for (size_t i = 0; i < n; ++i)
        acc.add(approx[i], reference[i]);
    return acc.stats();
}

} // namespace tpl
