/**
 * @file
 * Emulated integer multiply/divide: InstrSink* entry points over the
 * templated cores (the constants and cores live in emu_int.h so the
 * batch execution path can inline them).
 */

#include "common/emu_int.h"

namespace tpl {

uint64_t
emuMul32(uint32_t a, uint32_t b, InstrSink* sink)
{
    SinkRef s(sink);
    return emuMul32T(a, b, s);
}

int64_t
emuMulS32(int32_t a, int32_t b, InstrSink* sink)
{
    SinkRef s(sink);
    return emuMulS32T(a, b, s);
}

uint32_t
emuDiv32(uint32_t a, uint32_t b, InstrSink* sink, uint32_t* remainder)
{
    SinkRef s(sink);
    return emuDiv32T(a, b, s, remainder);
}

int32_t
emuDivS32(int32_t a, int32_t b, InstrSink* sink)
{
    SinkRef s(sink);
    return emuDivS32T(a, b, s);
}

} // namespace tpl
