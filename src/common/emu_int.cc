/**
 * @file
 * Emulated integer multiply/divide cost accounting.
 */

#include "common/emu_int.h"

namespace tpl {

namespace {

/**
 * Instruction cost of one byte-row of the shift-add multiply expansion:
 * an 8x8 mul_step-based partial product plus shift and accumulate.
 */
constexpr uint32_t mulRowCost = 6;

/** Fixed setup/teardown cost of the multiply expansion. */
constexpr uint32_t mulBaseCost = 8;

/** Per-bit cost of the div_step loop (step + loop control, amortized). */
constexpr uint32_t divStepCost = 3;

/** Number of div_step iterations for a 32-bit divide. */
constexpr uint32_t divSteps = 32;

/** Fixed setup/teardown cost of the divide expansion. */
constexpr uint32_t divBaseCost = 10;

/** Count the non-zero bytes of a 32-bit operand. */
uint32_t
nonZeroBytes(uint32_t v)
{
    uint32_t n = 0;
    for (int i = 0; i < 4; ++i) {
        if ((v >> (8 * i)) & 0xffu)
            ++n;
    }
    return n;
}

} // namespace

uint64_t
emuMul32(uint32_t a, uint32_t b, InstrSink* sink)
{
    // The runtime expansion iterates over the bytes of one operand,
    // skipping zero bytes; pick the operand with fewer non-zero bytes,
    // as a strength-reducing compiler would for known-shape operands.
    uint32_t rows = nonZeroBytes(a) < nonZeroBytes(b) ? nonZeroBytes(a)
                                                      : nonZeroBytes(b);
    chargeClassed(sink, InstrClass::IntMulDiv, mulBaseCost + rows * mulRowCost);
    return static_cast<uint64_t>(a) * static_cast<uint64_t>(b);
}

int64_t
emuMulS32(int32_t a, int32_t b, InstrSink* sink)
{
    // Sign handling: two conditional negations around the unsigned core.
    chargeClassed(sink, InstrClass::IntMulDiv, 4);
    uint32_t ua = a < 0 ? static_cast<uint32_t>(-(int64_t)a)
                        : static_cast<uint32_t>(a);
    uint32_t ub = b < 0 ? static_cast<uint32_t>(-(int64_t)b)
                        : static_cast<uint32_t>(b);
    uint64_t mag = emuMul32(ua, ub, sink);
    int64_t result = static_cast<int64_t>(mag);
    if ((a < 0) != (b < 0))
        result = -result;
    return result;
}

uint32_t
emuDiv32(uint32_t a, uint32_t b, InstrSink* sink, uint32_t* remainder)
{
    chargeClassed(sink, InstrClass::IntMulDiv, divBaseCost + divSteps * divStepCost / 2);
    if (remainder)
        *remainder = a % b;
    return a / b;
}

int32_t
emuDivS32(int32_t a, int32_t b, InstrSink* sink)
{
    chargeClassed(sink, InstrClass::IntMulDiv, 4);
    uint32_t ua = a < 0 ? static_cast<uint32_t>(-(int64_t)a)
                        : static_cast<uint32_t>(a);
    uint32_t ub = b < 0 ? static_cast<uint32_t>(-(int64_t)b)
                        : static_cast<uint32_t>(b);
    uint32_t mag = emuDiv32(ua, ub, sink);
    int32_t q = static_cast<int32_t>(mag);
    if ((a < 0) != (b < 0))
        q = -q;
    return q;
}

} // namespace tpl
