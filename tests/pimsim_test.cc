/**
 * @file
 * Unit tests for the PIM simulator: memory models, allocators, the DMA
 * model, the pipeline cycle model and its scaling law, and the
 * multi-DPU system's transfer timing.
 */

#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "pimsim/system.h"
#include "softfloat/softfloat.h"

namespace tpl {
namespace sim {
namespace {

TEST(DpuMemory, HostMramRoundTrip)
{
    DpuCore dpu;
    std::vector<uint32_t> data(256);
    std::iota(data.begin(), data.end(), 0u);
    dpu.hostWriteMram(4096, data.data(), data.size() * 4);
    std::vector<uint32_t> back(256);
    dpu.hostReadMram(4096, back.data(), back.size() * 4);
    EXPECT_EQ(data, back);
}

TEST(DpuMemory, MramBoundsChecked)
{
    CostModel small;
    small.mramBytes = 4096;
    DpuCore dpu(small);
    uint8_t b = 0;
    EXPECT_THROW(dpu.hostWriteMram(4096, &b, 1), std::out_of_range);
    EXPECT_THROW(dpu.hostReadMram(5000, &b, 1), std::out_of_range);
}

TEST(DpuMemory, AllocatorsAlignAndTrack)
{
    DpuCore dpu;
    uint32_t a = dpu.mramAlloc(10);
    uint32_t b = dpu.mramAlloc(10);
    EXPECT_EQ(0u, a);
    EXPECT_EQ(16u, b); // 10 rounded up to 16
    EXPECT_EQ(32u, dpu.mramAllocated());

    uint32_t w = dpu.wramAlloc(100);
    EXPECT_EQ(0u, w);
    EXPECT_EQ(104u, dpu.wramAllocated());

    dpu.resetAllocators();
    EXPECT_EQ(0u, dpu.mramAllocated());
    EXPECT_EQ(0u, dpu.wramAllocated());
}

TEST(DpuMemory, AllocatorExhaustionThrows)
{
    CostModel small;
    small.mramBytes = 1024;
    small.wramBytes = 256;
    DpuCore dpu(small);
    EXPECT_NO_THROW(dpu.mramAlloc(1024));
    EXPECT_THROW(dpu.mramAlloc(8), std::bad_alloc);
    EXPECT_NO_THROW(dpu.wramAlloc(256));
    EXPECT_THROW(dpu.wramAlloc(8), std::bad_alloc);
}

TEST(DpuLaunch, ChargesInstructions)
{
    DpuCore dpu;
    LaunchStats stats = dpu.launch(1, [](TaskletContext& ctx) {
        ctx.charge(100);
    });
    EXPECT_EQ(100u, stats.totalInstructions);
    // Single tasklet: latency-bound at pipelineInterval per instr.
    EXPECT_EQ(100u * dpu.model().pipelineInterval, stats.cycles);
}

TEST(DpuLaunch, PipelineScalingLaw)
{
    // Equal work per tasklet: cycles should scale as
    // max(total, perTasklet * interval); with >= interval tasklets the
    // core is issue-bound at 1 instruction/cycle.
    DpuCore dpu;
    const uint32_t work = 10000;
    auto kernel = [&](TaskletContext& ctx) { ctx.charge(work); };

    std::vector<uint64_t> cycles;
    for (uint32_t t : {1u, 2u, 4u, 8u, 11u, 16u}) {
        LaunchStats stats = dpu.launch(t, kernel);
        cycles.push_back(stats.cycles);
        uint64_t expected = std::max<uint64_t>(
            static_cast<uint64_t>(t) * work,
            static_cast<uint64_t>(work) * dpu.model().pipelineInterval);
        EXPECT_EQ(expected, stats.cycles) << t << " tasklets";
    }
    // 1..8 tasklets: latency-bound, constant cycles.
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(cycles[0], cycles[3]);
    // 16 tasklets: issue-bound, more total cycles but higher throughput
    // (cycles per tasklet-instruction decreases).
    EXPECT_GT(cycles[5], cycles[4]);
    double perInstr1 = static_cast<double>(cycles[0]) / work;
    double perInstr16 = static_cast<double>(cycles[5]) / (16.0 * work);
    EXPECT_GT(perInstr1, 10.0 * perInstr16 / 1.5);
}

TEST(DpuLaunch, TaskletIdsAndCounts)
{
    DpuCore dpu;
    std::vector<uint32_t> seen;
    dpu.launch(8, [&](TaskletContext& ctx) {
        EXPECT_EQ(8u, ctx.numTasklets());
        seen.push_back(ctx.taskletId());
    });
    std::vector<uint32_t> expect{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(expect, seen);
}

TEST(DpuDma, MramReadMovesDataAndCharges)
{
    DpuCore dpu;
    std::vector<float> input(64, 1.5f);
    dpu.hostWriteMram(0, input.data(), input.size() * 4);

    std::vector<float> chunk(64);
    LaunchStats stats = dpu.launch(1, [&](TaskletContext& ctx) {
        ctx.mramRead(0, chunk.data(), 256);
    });
    EXPECT_EQ(1.5f, chunk[0]);
    EXPECT_EQ(1.5f, chunk[63]);
    EXPECT_GT(stats.dmaEngineCycles, 0u);
    // Engine: setup + 0.5 cycles/byte.
    EXPECT_EQ(dpu.model().dmaSetupCycles + 128u, stats.dmaEngineCycles);
}

TEST(DpuDma, BoundarySizedDmaCycleMathStays64Bit)
{
    // One bank-boundary-sized DMA with a swept per-byte cost whose
    // streaming term (2^25 bytes * 256 cycles/byte = 2^33 cycles)
    // exceeds uint32_t. If accountDma ever multiplied in 32-bit
    // arithmetic the term would wrap to zero; the engine total must be
    // exact.
    CostModel model;
    model.mramBytes = 32u * 1024 * 1024;
    model.dmaCyclesPerByte = 256.0;
    DpuCore dpu(model);
    const uint32_t size = model.mramBytes;
    std::vector<uint8_t> buf(size);
    LaunchStats stats = dpu.launch(1, [&](TaskletContext& ctx) {
        ctx.mramRead(0, buf.data(), size);
    });
    const uint64_t streaming = static_cast<uint64_t>(size) * 256u;
    EXPECT_EQ(model.dmaSetupCycles + streaming,
              stats.dmaEngineCycles);
    EXPECT_EQ(static_cast<uint64_t>(size), stats.dmaBytes);
    // The issuing tasklet stalls for latency + engine occupancy, and
    // the launch is DMA-bound, so cycles carry the full 64-bit term.
    EXPECT_GE(stats.cycles, streaming);
}

TEST(DpuDma, WriteBackVisibleToHost)
{
    DpuCore dpu;
    std::vector<float> out(16, 2.25f);
    dpu.launch(1, [&](TaskletContext& ctx) {
        ctx.mramWrite(1024, out.data(), 64);
    });
    std::vector<float> host(16);
    dpu.hostReadMram(1024, host.data(), 64);
    EXPECT_EQ(out, host);
}

TEST(DpuDma, LargeStreamIsBandwidthBound)
{
    // Streaming 1 MB through 2-KB DMA chunks with one tasklet: cycles
    // should approach dmaCyclesPerByte per byte once latency overlaps.
    DpuCore dpu;
    std::vector<uint8_t> buf(2048);
    LaunchStats stats = dpu.launch(16, [&](TaskletContext& ctx) {
        // Each of the 16 tasklets streams 32 chunks of 2 KB.
        for (int i = 0; i < 32; ++i)
            ctx.mramRead((ctx.taskletId() * 32u + i) * 2048u,
                         buf.data(), 2048);
    });
    double bytes = 16.0 * 32 * 2048;
    double cyclesPerByte = static_cast<double>(stats.cycles) / bytes;
    EXPECT_LT(cyclesPerByte, 0.8);
    EXPECT_GT(cyclesPerByte, 0.4);
}

TEST(DpuLaunch, SoftFloatIntegration)
{
    // A kernel that sums floats through the soft-float path must charge
    // instructions automatically via the InstrSink interface.
    DpuCore dpu;
    float result = 0.0f;
    LaunchStats stats = dpu.launch(1, [&](TaskletContext& ctx) {
        float acc = 0.0f;
        for (int i = 0; i < 10; ++i)
            acc = sf::add(acc, 1.25f, &ctx);
        result = acc;
    });
    EXPECT_EQ(12.5f, result);
    EXPECT_GT(stats.totalInstructions, 10u * 40u);
}

TEST(PimSystem, BroadcastReachesEveryDpu)
{
    PimSystem sys(4);
    std::vector<uint32_t> table{1, 2, 3, 4};
    double t = sys.broadcastToMram(512, table.data(), 16);
    EXPECT_GT(t, 0.0);
    for (uint32_t i = 0; i < sys.numDpus(); ++i) {
        std::vector<uint32_t> back(4);
        sys.dpu(i).hostReadMram(512, back.data(), 16);
        EXPECT_EQ(table, back) << "dpu " << i;
    }
}

TEST(PimSystem, ScatterGatherRoundTrip)
{
    PimSystem sys(4);
    std::vector<float> data(400);
    std::iota(data.begin(), data.end(), 0.0f);
    sys.scatterToMram(0, data.data(), 400);
    std::vector<float> back(400);
    sys.gatherFromMram(0, back.data(), 400);
    EXPECT_EQ(data, back);
}

TEST(PimSystem, ScatterPlacesCorrectSlices)
{
    PimSystem sys(2);
    std::vector<uint32_t> data{10, 11, 20, 21};
    sys.scatterToMram(0, data.data(), 8);
    uint32_t v[2];
    sys.dpu(0).hostReadMram(0, v, 8);
    EXPECT_EQ(10u, v[0]);
    EXPECT_EQ(11u, v[1]);
    sys.dpu(1).hostReadMram(0, v, 8);
    EXPECT_EQ(20u, v[0]);
    EXPECT_EQ(21u, v[1]);
}

TEST(PimSystem, TransferTimingModel)
{
    PimSystem sys(64);
    // Parallel beats serial for the same volume.
    EXPECT_LT(sys.parallelTransferSeconds(1 << 20),
              sys.serialTransferSeconds(1 << 20));
    // Timing is linear in bytes.
    EXPECT_NEAR(2 * sys.parallelTransferSeconds(1 << 20),
                sys.parallelTransferSeconds(2 << 20), 1e-12);
}

TEST(PimSystem, LaunchAllRunsEveryDpuAndTakesMax)
{
    PimSystem sys(3);
    // Give DPU-specific work by keying off MRAM contents.
    for (uint32_t i = 0; i < 3; ++i) {
        uint32_t work = (i + 1) * 1000;
        sys.dpu(i).hostWriteMram(0, &work, 4);
    }
    double secs = sys.launchAll(1, [](TaskletContext& ctx) {
        uint32_t work = 0;
        ctx.core().hostReadMram(0, &work, 4);
        ctx.charge(work);
    });
    // Max work = 3000 instr, 1 tasklet -> 33000 cycles at 350 MHz.
    uint64_t expectCycles =
        3000ull * sys.model().pipelineInterval;
    EXPECT_EQ(expectCycles, sys.lastMaxCycles());
    EXPECT_NEAR(static_cast<double>(expectCycles) / sys.model().frequencyHz,
                secs, 1e-12);
}

TEST(DpuEnergy, InstructionAndDmaComponents)
{
    DpuCore dpu;
    std::vector<uint8_t> buf(1024);
    LaunchStats stats = dpu.launch(1, [&](TaskletContext& ctx) {
        ctx.charge(1000);
        ctx.mramRead(0, buf.data(), 1024);
    });
    EXPECT_EQ(1024u, stats.dmaBytes);
    double expected =
        ((1000.0 + 2.0) * dpu.model().instrEnergyPj +
         1024.0 * dpu.model().dmaEnergyPerBytePj) *
        1e-12;
    EXPECT_NEAR(expected, stats.energyJoules, expected * 1e-9);
}

TEST(DpuEnergy, ScalesWithWork)
{
    DpuCore dpu;
    LaunchStats a = dpu.launch(1, [](TaskletContext& ctx) {
        ctx.charge(100);
    });
    LaunchStats b = dpu.launch(1, [](TaskletContext& ctx) {
        ctx.charge(200);
    });
    EXPECT_NEAR(2.0, b.energyJoules / a.energyJoules, 1e-9);
}

TEST(PimSystem, ProjectionScalesLinearly)
{
    PimSystem sys(1);
    // 1000 cycles for 10 elements -> 100 cycles/element.
    // 2545 DPUs, 2545000 elements -> 1000 elements/DPU -> 100k cycles.
    double secs = sys.projectedSystemSeconds(1000, 10, 2545000, 2545);
    EXPECT_NEAR(100000.0 / sys.model().frequencyHz, secs, 1e-12);
}

} // namespace
} // namespace sim
} // namespace tpl
