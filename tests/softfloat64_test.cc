/**
 * @file
 * Bit-exactness tests for the binary64 soft-float tier against the
 * host FPU: directed specials, random bit-pattern sweeps, cancellation
 * and subnormal grids, float<->double conversions, and the cost ratios
 * vs the binary32 tier.
 */

#include <bit>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "softfloat/softfloat64.h"

namespace tpl {
namespace {

::testing::AssertionResult
bitEqual64(double expected, double actual)
{
    if (std::isnan(expected) && std::isnan(actual))
        return ::testing::AssertionSuccess();
    if (std::bit_cast<uint64_t>(expected) ==
        std::bit_cast<uint64_t>(actual))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << std::hexfloat << "expected " << expected << " got "
           << actual;
}

double
randomDoubleBits(SplitMix64& rng)
{
    return std::bit_cast<double>(rng.next());
}

constexpr int sweepIters = 200000;

TEST(SoftFloat64Add, DirectedEdgeCases)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double den = std::numeric_limits<double>::denorm_min();
    const double maxN = std::numeric_limits<double>::max();
    EXPECT_TRUE(bitEqual64(0.0 + -0.0, sf::add64(0.0, -0.0)));
    EXPECT_TRUE(bitEqual64(-0.0 + -0.0, sf::add64(-0.0, -0.0)));
    EXPECT_TRUE(bitEqual64(1.0 + 2.0, sf::add64(1.0, 2.0)));
    EXPECT_TRUE(std::isnan(sf::add64(inf, -inf)));
    EXPECT_TRUE(bitEqual64(inf + 1.0, sf::add64(inf, 1.0)));
    EXPECT_TRUE(bitEqual64(maxN + maxN, sf::add64(maxN, maxN)));
    EXPECT_TRUE(bitEqual64(den + den, sf::add64(den, den)));
    double b = -std::nextafter(1.0, 2.0);
    EXPECT_TRUE(bitEqual64(1.0 + b, sf::add64(1.0, b)));
}

TEST(SoftFloat64Add, RandomBitPatternSweep)
{
    SplitMix64 rng(101);
    for (int i = 0; i < sweepIters; ++i) {
        double a = randomDoubleBits(rng);
        double b = randomDoubleBits(rng);
        ASSERT_TRUE(bitEqual64(a + b, sf::add64(a, b)))
            << std::hexfloat << a << " + " << b;
        ASSERT_TRUE(bitEqual64(a - b, sf::sub64(a, b)))
            << std::hexfloat << a << " - " << b;
    }
}

TEST(SoftFloat64Add, CancellationSweep)
{
    SplitMix64 rng(102);
    for (int i = 0; i < sweepIters; ++i) {
        uint64_t bits = rng.next() & 0x7fffffffffffffffull;
        double a = std::bit_cast<double>(bits);
        if (!std::isfinite(a))
            continue;
        int nudge = static_cast<int>(rng.next() % 5) - 2;
        int64_t exp =
            static_cast<int64_t>((bits >> 52) & 0x7ff) + nudge;
        if (exp < 0 || exp > 0x7fe)
            continue;
        uint64_t mant = rng.next() & 0xfffffffffffffull;
        double b = std::bit_cast<double>(
            (1ull << 63) | (static_cast<uint64_t>(exp) << 52) | mant);
        ASSERT_TRUE(bitEqual64(a + b, sf::add64(a, b)))
            << std::hexfloat << a << " + " << b;
    }
}

TEST(SoftFloat64Mul, DirectedAndSweep)
{
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_TRUE(std::isnan(sf::mul64(inf, 0.0)));
    EXPECT_TRUE(bitEqual64(2.0 * 3.0, sf::mul64(2.0, 3.0)));
    EXPECT_TRUE(bitEqual64(
        std::numeric_limits<double>::max() * 2.0,
        sf::mul64(std::numeric_limits<double>::max(), 2.0)));
    EXPECT_TRUE(bitEqual64(
        std::numeric_limits<double>::min() * 0.5,
        sf::mul64(std::numeric_limits<double>::min(), 0.5)));
    SplitMix64 rng(103);
    for (int i = 0; i < sweepIters; ++i) {
        double a = randomDoubleBits(rng);
        double b = randomDoubleBits(rng);
        ASSERT_TRUE(bitEqual64(a * b, sf::mul64(a, b)))
            << std::hexfloat << a << " * " << b;
    }
}

TEST(SoftFloat64Mul, SubnormalBoundary)
{
    SplitMix64 rng(104);
    for (int i = 0; i < 50000; ++i) {
        int ea = -600 + static_cast<int>(rng.next() % 200);
        int eb = -1022 - ea - 3 + static_cast<int>(rng.next() % 6);
        double a = std::ldexp(1.0 + 1e-3 * (rng.next() % 1000), ea);
        double b = std::ldexp(1.0 + 1e-3 * (rng.next() % 1000), eb);
        ASSERT_TRUE(bitEqual64(a * b, sf::mul64(a, b)))
            << std::hexfloat << a << " * " << b;
    }
}

TEST(SoftFloat64Div, DirectedAndSweep)
{
    EXPECT_TRUE(bitEqual64(1.0 / 3.0, sf::div64(1.0, 3.0)));
    EXPECT_TRUE(std::isnan(sf::div64(0.0, 0.0)));
    EXPECT_TRUE(bitEqual64(1.0 / 0.0, sf::div64(1.0, 0.0)));
    EXPECT_TRUE(bitEqual64(-1.0 / 0.0, sf::div64(-1.0, 0.0)));
    SplitMix64 rng(105);
    for (int i = 0; i < sweepIters; ++i) {
        double a = randomDoubleBits(rng);
        double b = randomDoubleBits(rng);
        ASSERT_TRUE(bitEqual64(a / b, sf::div64(a, b)))
            << std::hexfloat << a << " / " << b;
    }
}

TEST(SoftFloat64Convert, WideningIsExact)
{
    SplitMix64 rng(106);
    for (int i = 0; i < sweepIters; ++i) {
        float a = bitsToFloat(static_cast<uint32_t>(rng.next()));
        if (std::isnan(a)) {
            EXPECT_TRUE(std::isnan(sf::fromF32(a)));
            continue;
        }
        ASSERT_TRUE(bitEqual64(static_cast<double>(a), sf::fromF32(a)))
            << std::hexfloat << a;
    }
    // Subnormal floats widen to normal doubles.
    float den = std::numeric_limits<float>::denorm_min();
    EXPECT_TRUE(bitEqual64(static_cast<double>(den), sf::fromF32(den)));
    EXPECT_TRUE(
        bitEqual64(static_cast<double>(-den), sf::fromF32(-den)));
}

TEST(SoftFloat64Convert, NarrowingRoundsCorrectly)
{
    SplitMix64 rng(107);
    for (int i = 0; i < sweepIters; ++i) {
        double a = randomDoubleBits(rng);
        float expect = static_cast<float>(a);
        float got = sf::toF32(a);
        if (std::isnan(expect)) {
            ASSERT_TRUE(std::isnan(got)) << std::hexfloat << a;
            continue;
        }
        ASSERT_EQ(floatBits(expect), floatBits(got))
            << std::hexfloat << a;
    }
}

TEST(SoftFloat64Convert, Int32RoundTrips)
{
    SplitMix64 rng(108);
    for (int i = 0; i < 50000; ++i) {
        int32_t v = static_cast<int32_t>(rng.next());
        ASSERT_TRUE(bitEqual64(static_cast<double>(v),
                               sf::fromI32asF64(v)))
            << v;
    }
    for (int i = 0; i < 50000; ++i) {
        double a = rng.nextFloat(-1e6f, 1e6f);
        ASSERT_EQ(static_cast<int32_t>(std::floor(a)),
                  sf::f64ToI32Floor(a))
            << std::hexfloat << a;
    }
    EXPECT_EQ(0, sf::f64ToI32Floor(0.5));
    EXPECT_EQ(-1, sf::f64ToI32Floor(-0.5));
    EXPECT_EQ(3, sf::f64ToI32Floor(3.0));
}

TEST(SoftFloat64Cost, DoubleTierCostsMore)
{
    CountingSink s32, s64;
    for (int i = 0; i < 100; ++i) {
        sf::add(1.5f, 2.5f, &s32);
        sf::mul(1.5f, 2.5f, &s32);
        sf::add64(1.5, 2.5, &s64);
        sf::mul64(1.5, 2.5, &s64);
    }
    // Double emulation costs roughly 2-4x the float tier.
    EXPECT_GT(s64.total(), 1.8 * s32.total());
    EXPECT_LT(s64.total(), 6.0 * s32.total());
}

} // namespace
} // namespace tpl
