/**
 * @file
 * Analytic error-predictor validation: the closed-form scaling laws
 * must track measured RMSE within a small constant factor across
 * methods, table sizes, iteration counts and functions - exactly the
 * relationships the paper's Section 2.2.2 derives.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/error_model.h"
#include "transpim/harness.h"

namespace tpl {
namespace transpim {
namespace {

double
measuredRmse(Function f, const MethodSpec& spec)
{
    auto eval = FunctionEvaluator::create(f, spec);
    Domain dom = functionDomain(f);
    auto inputs =
        uniformFloats(4000, (float)dom.lo, (float)dom.hi, 0xacc);
    return evaluateAccuracy(eval, inputs).rmse;
}

/** Assert prediction within a factor band of the measurement. */
void
expectWithinFactor(double predicted, double measured, double factor,
                   const std::string& what)
{
    EXPECT_LT(measured, predicted * factor) << what;
    EXPECT_GT(measured, predicted / factor) << what;
}

TEST(ErrorModel, RmsDerivativeSine)
{
    TableFn sine = [](double x) { return std::sin(x); };
    // rms(sin') = rms(cos) = 1/sqrt(2) over a full period.
    EXPECT_NEAR(0.7071, rmsDerivative(sine, 0, 6.2832, 1), 0.02);
    EXPECT_NEAR(0.7071, rmsDerivative(sine, 0, 6.2832, 2), 0.02);
}

class LutPredictionTest
    : public ::testing::TestWithParam<std::tuple<bool, uint32_t>>
{
};

TEST_P(LutPredictionTest, SineLLutTracksMeasurement)
{
    auto [interp, log2n] = GetParam();
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.interpolated = interp;
    spec.placement = Placement::Host;
    spec.log2Entries = log2n;
    double predicted = predictRmse(Function::Sin, spec);
    double measured = measuredRmse(Function::Sin, spec);
    if (measured < 5e-8)
        return; // at the float floor, scaling laws no longer apply
    expectWithinFactor(predicted, measured, 4.0,
                       "interp=" + std::to_string(interp) + " 2^" +
                           std::to_string(log2n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LutPredictionTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(8u, 10u, 12u, 14u)));

TEST(ErrorModel, CordicPrediction)
{
    for (uint32_t iters : {10u, 14u, 18u}) {
        MethodSpec spec;
        spec.method = Method::Cordic;
        spec.iterations = iters;
        spec.placement = Placement::Host;
        double predicted = predictRmse(Function::Sin, spec);
        double measured = measuredRmse(Function::Sin, spec);
        expectWithinFactor(predicted, measured, 6.0,
                           std::to_string(iters) + " iters");
    }
}

TEST(ErrorModel, OtherFunctions)
{
    // The laws are function-generic via the derivative terms.
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.interpolated = true;
    spec.placement = Placement::Host;
    spec.log2Entries = 10;
    for (Function f : {Function::Tanh, Function::Gelu,
                       Function::Cndf}) {
        double predicted = predictRmse(f, spec);
        double measured = measuredRmse(f, spec);
        expectWithinFactor(predicted, measured, 6.0,
                           std::string(functionName(f)));
    }
}

TEST(ErrorModel, PredictLog2Entries)
{
    for (double target : {1e-4, 1e-6}) {
        int log2n = predictLog2Entries(Function::Sin, target);
        ASSERT_GT(log2n, 0) << target;
        MethodSpec spec;
        spec.method = Method::LLut;
        spec.interpolated = true;
        spec.placement = Placement::Host;
        spec.log2Entries = static_cast<uint32_t>(log2n);
        // The predicted size must actually achieve the target (with
        // the predictor's conservatism absorbing the slack).
        EXPECT_LT(measuredRmse(Function::Sin, spec), target * 1.5)
            << target;
    }
    // Below the binary32 floor: impossible.
    EXPECT_EQ(-1, predictLog2Entries(Function::Sin, 1e-12));
}

TEST(ErrorModel, MonotoneInKnob)
{
    double prev = 1.0;
    for (uint32_t log2n : {8u, 10u, 12u, 14u, 16u}) {
        MethodSpec spec;
        spec.method = Method::LLut;
        spec.interpolated = true;
        spec.log2Entries = log2n;
        double p = predictRmse(Function::Sin, spec);
        EXPECT_LE(p, prev) << log2n;
        prev = p;
    }
}

} // namespace
} // namespace transpim
} // namespace tpl
