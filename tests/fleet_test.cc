/**
 * @file
 * Fleet conformance tier: the multi-rank/multi-DIMM topology model
 * and the cluster scheduler. Locks the rank-transfer scaling law
 * (lanes overlap across memory channels, serialize within one), the
 * flat-path kill switch (Topology{1,1,N} reproduces the flat
 * pipeline bit-for-bit), determinism across simulation thread
 * counts, once-per-rank table broadcasts, hot-table balancing, and
 * per-rank fault degradation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "pimsim/obs/journal.h"
#include "pimsim/serve/pipeline.h"
#include "pimsim/serve/table_cache.h"
#include "pimsim/topology.h"
#include "transpim/harness.h"
#include "transpim/serve_glue.h"

using namespace tpl;
using namespace tpl::sim;
using namespace tpl::transpim;

namespace {

serve::TableKey
keyOf(uint64_t hash)
{
    serve::TableKey k;
    k.hash = hash;
    k.label = "k" + std::to_string(hash);
    return k;
}

/** One synthetic request: a function index (0..3 cycle over
 * sin/cos/exp/sigmoid, all interpolated L-LUT) and a span length. */
struct Req
{
    int fn = 0;
    uint32_t elements = 0;
};

struct RunResult
{
    serve::ServeReport rep;
    std::vector<float> out;
};

/** Replay @p reqs through one ServePipeline on a fresh system.
 * @p topo == nullptr runs the flat path; inputs are a fixed
 * deterministic pattern so outputs are comparable across runs. */
RunResult
runTrace(const std::vector<Req>& reqs, uint32_t dpus,
         const Topology* topo, uint32_t perDpuElements = 64,
         uint32_t simThreads = 0, const char* planText = nullptr,
         bool pipelined = true, obs::Journal* journal = nullptr)
{
    PimSystem sys(dpus);
    if (simThreads)
        sys.setSimThreads(simThreads);
    if (planText) {
        auto plan = fault::FaultPlan::parse(planText);
        EXPECT_TRUE(plan.has_value());
        if (plan)
            sys.armFaults(*plan);
    }
    EvaluatorCatalog catalog;
    static const Function fns[4] = {Function::Sin, Function::Cos,
                                    Function::Exp,
                                    Function::Sigmoid};
    uint64_t total = 0;
    for (const Req& r : reqs)
        total += r.elements;
    std::vector<float> in(total);
    for (uint64_t i = 0; i < total; ++i)
        in[i] = 0.001f +
                0.9f * static_cast<float>((i * 37) % 1000) / 1000.0f;
    RunResult res;
    res.out.assign(total, 0.0f);

    serve::BatchQueue queue;
    if (journal)
        queue.setJournal(journal);
    MethodSpec spec;
    uint64_t off = 0;
    for (const Req& r : reqs) {
        serve::Request q;
        q.table = catalog.add(fns[r.fn % 4], spec);
        q.input = in.data() + off;
        q.output = res.out.data() + off;
        q.elements = r.elements;
        queue.push(q);
        off += r.elements;
    }
    queue.close();

    serve::PipelineOptions popts;
    popts.numTasklets = 8;
    popts.perDpuElements = perDpuElements;
    popts.pipelined = pipelined;
    popts.journal = journal;
    popts.topology = topo;
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);
    res.rep = pipeline.run(queue);
    return res;
}

/** A mixed four-table load with enough waves to spread over ranks. */
std::vector<Req>
mixedLoad(uint32_t requests, uint32_t elements)
{
    std::vector<Req> reqs;
    for (uint32_t i = 0; i < requests; ++i)
        reqs.push_back({static_cast<int>(i % 4), elements});
    return reqs;
}

} // namespace

// ---------------------------------------------------------------------
// Topology: parsing and the rank/channel geometry.

TEST(Topology, ParseRoundTripAndValidation)
{
    auto t = Topology::parse("20x2x64");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->dimms, 20u);
    EXPECT_EQ(t->ranksPerDimm, 2u);
    EXPECT_EQ(t->dpusPerRank, 64u);
    EXPECT_EQ(t->numRanks(), 40u);
    EXPECT_EQ(t->numDpus(), 2560u);
    EXPECT_TRUE(t->valid());
    EXPECT_EQ(t->toText(), "20x2x64");
    EXPECT_EQ(Topology::parse(t->toText()), *t);

    EXPECT_FALSE(Topology::parse("").has_value());
    EXPECT_FALSE(Topology::parse("20x2").has_value());
    EXPECT_FALSE(Topology::parse("20x2x64x1").has_value());
    EXPECT_FALSE(Topology::parse("0x2x64").has_value());
    EXPECT_FALSE(Topology::parse("20x0x64").has_value());
    EXPECT_FALSE(Topology::parse("20x2x0").has_value());
    EXPECT_FALSE(Topology::parse("ax2x64").has_value());
    EXPECT_FALSE(Topology::parse("20x2x64 ").has_value());
    // DPU total must fit in 32 bits.
    EXPECT_FALSE(
        Topology::parse("100000x100000x100000").has_value());
}

TEST(Topology, RankAndChannelMapping)
{
    Topology t{3, 2, 4}; // 6 ranks on 3 channels, 24 DPUs
    EXPECT_EQ(t.numRanks(), 6u);
    EXPECT_EQ(t.numDpus(), 24u);
    EXPECT_EQ(t.rankOfDpu(0), 0u);
    EXPECT_EQ(t.rankOfDpu(3), 0u);
    EXPECT_EQ(t.rankOfDpu(4), 1u);
    EXPECT_EQ(t.rankOfDpu(23), 5u);
    EXPECT_EQ(t.firstDpuOfRank(0), 0u);
    EXPECT_EQ(t.firstDpuOfRank(5), 20u);
    // Ranks are DIMM-major: ranks {0,1} share channel 0, {2,3}
    // channel 1, {4,5} channel 2.
    std::vector<uint32_t> channels = t.channelMap();
    ASSERT_EQ(channels.size(), 6u);
    for (uint32_t r = 0; r < 6; ++r) {
        EXPECT_EQ(channels[r], r / 2);
        EXPECT_EQ(t.channelOfRank(r), r / 2);
    }
}

// ---------------------------------------------------------------------
// The rank-transfer scaling law: lanes of ranks on distinct memory
// channels overlap; the ranks of one DIMM serialize on their shared
// channel.

TEST(RankTransfer, BroadcastsOverlapAcrossChannelsSerializeWithin)
{
    PimSystem sys(8);
    const uint64_t bytes = 1u << 20;
    const double one = sys.rankParallelTransferSeconds(bytes);
    ASSERT_GT(one, 0.0);

    // Two DIMMs: the two rank lanes ride distinct channels, so two
    // equal broadcasts fully overlap (2x aggregate bandwidth).
    Topology twoChannels{2, 1, 4};
    PipelineTimeline apart(8);
    apart.configureRanks(2, 4, twoChannels.channelMap());
    PipelineEvent a0 = sys.broadcastAsync(apart, 0.0, bytes, 0);
    PipelineEvent a1 = sys.broadcastAsync(apart, 0.0, bytes, 1);
    EXPECT_DOUBLE_EQ(a0.seconds(), one);
    EXPECT_DOUBLE_EQ(a1.seconds(), one);
    EXPECT_NEAR(apart.makespan(), one, one * 1e-12);

    // One DIMM, two ranks: same two broadcasts share the channel and
    // serialize back to back.
    Topology shared{1, 2, 4};
    PipelineTimeline together(8);
    together.configureRanks(2, 4, shared.channelMap());
    sys.broadcastAsync(together, 0.0, bytes, 0);
    PipelineEvent s1 = sys.broadcastAsync(together, 0.0, bytes, 1);
    EXPECT_NEAR(s1.start, one, one * 1e-12);
    EXPECT_NEAR(together.makespan(), 2.0 * one, one * 1e-12);
}

TEST(RankTransfer, ScatterBandwidthScalesWithEngagedRanks)
{
    PimSystem sys(8);
    std::vector<float> buf(4096, 1.0f);
    auto slicesFor = [&](uint32_t firstDpu) {
        std::vector<ScatterSlice> slices;
        for (uint32_t d = 0; d < 4; ++d)
            slices.push_back({firstDpu + d, 0, buf.data(),
                              1024 * sizeof(float)});
        return slices;
    };
    std::vector<ScatterSlice> rank0 = slicesFor(0);
    std::vector<ScatterSlice> rank1 = slicesFor(4);

    Topology twoChannels{2, 1, 4};
    PipelineTimeline apart(8);
    apart.configureRanks(2, 4, twoChannels.channelMap());
    PipelineEvent a0 = sys.scatterAsync(apart, 0.0, rank0, 0);
    PipelineEvent a1 = sys.scatterAsync(apart, 0.0, rank1, 1);
    const double one = a0.seconds();
    ASSERT_GT(one, 0.0);
    EXPECT_DOUBLE_EQ(a1.seconds(), one);
    // Parallel across channels: two ranks move 2x the bytes in the
    // time one rank moves its share.
    EXPECT_NEAR(apart.makespan(), one, one * 1e-12);

    Topology shared{1, 2, 4};
    PipelineTimeline together(8);
    together.configureRanks(2, 4, shared.channelMap());
    sys.scatterAsync(together, 0.0, rank0, 0);
    sys.scatterAsync(together, 0.0, rank1, 1);
    EXPECT_NEAR(together.makespan(), 2.0 * one, one * 1e-12);
}

// ---------------------------------------------------------------------
// Table residency: a miss broadcasts once per holding rank, never
// once per DPU.

TEST(FleetCache, BroadcastOncePerHoldingRankNotPerDpu)
{
    PimSystem sys(4);
    int providerCalls = 0;
    serve::TableCache cache(
        sys, [&](const serve::TableKey& key, PimSystem&) {
            ++providerCalls;
            serve::TableBinding b;
            b.valid = key.hash != 666; // key 666: infeasible
            b.tableBytes = 4096;
            return b;
        });
    cache.setRankCount(3);

    // First fleet-wide sighting: provider runs AND rank 0 receives
    // its broadcast.
    serve::TableCache::RankLookup l0 =
        cache.lookupOnRank(keyOf(1), 0);
    ASSERT_NE(l0.binding, nullptr);
    EXPECT_TRUE(l0.providerMiss);
    EXPECT_TRUE(l0.rankMiss);

    // Same rank again: fully resident, nothing to pay.
    serve::TableCache::RankLookup l0b =
        cache.lookupOnRank(keyOf(1), 0);
    EXPECT_FALSE(l0b.providerMiss);
    EXPECT_FALSE(l0b.rankMiss);

    // New rank: tables exist, but this rank still pays exactly one
    // single-rank broadcast.
    serve::TableCache::RankLookup l1 =
        cache.lookupOnRank(keyOf(1), 1);
    EXPECT_FALSE(l1.providerMiss);
    EXPECT_TRUE(l1.rankMiss);

    EXPECT_EQ(providerCalls, 1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.rankBroadcasts(), 2u); // ranks 0 and 1, not 4 DPUs
    EXPECT_TRUE(cache.residentOnRank(keyOf(1), 0));
    EXPECT_TRUE(cache.residentOnRank(keyOf(1), 1));
    EXPECT_FALSE(cache.residentOnRank(keyOf(1), 2));
    EXPECT_EQ(cache.residency(0), 1u);
    EXPECT_EQ(cache.residency(2), 0u);

    // Infeasible tables are cached but never become resident.
    serve::TableCache::RankLookup bad =
        cache.lookupOnRank(keyOf(666), 0);
    EXPECT_TRUE(bad.providerMiss);
    EXPECT_FALSE(bad.rankMiss);
    EXPECT_FALSE(bad.binding->valid);
    EXPECT_EQ(cache.rankBroadcasts(), 2u);
    EXPECT_EQ(cache.residency(0), 1u);

    // Re-arming resets residency (each fleet run re-broadcasts).
    cache.setRankCount(3);
    EXPECT_EQ(cache.residency(0), 0u);
    EXPECT_EQ(cache.rankBroadcasts(), 0u);
}

TEST(FleetScheduler, CacheCountersCountRanksNotDpus)
{
    // One hot table over 4 ranks x 4 DPUs: the provider runs once,
    // and broadcasts are charged per holding rank.
    Topology topo{4, 1, 4};
    std::vector<Req> reqs(8, Req{0, 128});
    RunResult res = runTrace(reqs, topo.numDpus(), &topo, 32);
    ASSERT_TRUE(res.rep.complete);
    EXPECT_EQ(res.rep.cacheMisses, 1u);
    ASSERT_EQ(res.rep.rankStats.size(), 4u);
    uint64_t broadcasts = 0;
    uint64_t resident = 0;
    for (const serve::RankStats& r : res.rep.rankStats) {
        // One table: a rank broadcasts at most once, exactly when it
        // ends up holding the table.
        EXPECT_LE(r.broadcasts, 1u);
        EXPECT_EQ(r.broadcasts, r.residentTables);
        broadcasts += r.broadcasts;
        resident += r.residentTables;
    }
    EXPECT_GE(broadcasts, 1u);
    EXPECT_LE(broadcasts, topo.numRanks()); // never once per DPU
    EXPECT_EQ(broadcasts, resident);
}

// ---------------------------------------------------------------------
// The kill switch: no topology (or a mismatched one) is the flat
// path; Topology{1,1,N} is the flat schedule re-derived.

TEST(FleetScheduler, SingleRankTopologyMatchesFlatBitExactly)
{
    std::vector<Req> reqs = {
        {0, 600}, {1, 300}, {0, 300}, {2, 500}, {1, 140}};
    RunResult flat = runTrace(reqs, 8, nullptr);
    Topology topo{1, 1, 8};
    RunResult fleet = runTrace(reqs, 8, &topo);

    ASSERT_TRUE(flat.rep.complete);
    ASSERT_TRUE(fleet.rep.complete);
    // Modeled quantities are bit-identical, not just close.
    EXPECT_EQ(fleet.rep.modeledSeconds, flat.rep.modeledSeconds);
    EXPECT_EQ(fleet.rep.syncSeconds, flat.rep.syncSeconds);
    EXPECT_EQ(fleet.rep.computeCycles, flat.rep.computeCycles);
    EXPECT_EQ(fleet.rep.waves, flat.rep.waves);
    EXPECT_EQ(fleet.rep.cacheHits, flat.rep.cacheHits);
    EXPECT_EQ(fleet.rep.cacheMisses, flat.rep.cacheMisses);
    EXPECT_EQ(fleet.rep.elements, flat.rep.elements);
    ASSERT_EQ(fleet.out.size(), flat.out.size());
    EXPECT_EQ(std::memcmp(fleet.out.data(), flat.out.data(),
                          flat.out.size() * sizeof(float)),
              0);
    // The flat report has no rank rows; the single-rank fleet's one
    // row carries the whole makespan.
    EXPECT_TRUE(flat.rep.rankStats.empty());
    ASSERT_EQ(fleet.rep.rankStats.size(), 1u);
    EXPECT_EQ(fleet.rep.rankStats[0].makespanSeconds,
              fleet.rep.modeledSeconds);
}

TEST(FleetScheduler, MismatchedTopologyFallsBackToFlat)
{
    std::vector<Req> reqs = {{0, 600}, {1, 300}};
    Topology wrong{1, 1, 16}; // system below has 8 DPUs
    RunResult flat = runTrace(reqs, 8, nullptr);
    RunResult fallback = runTrace(reqs, 8, &wrong);
    EXPECT_TRUE(fallback.rep.rankStats.empty());
    EXPECT_EQ(fallback.rep.modeledSeconds, flat.rep.modeledSeconds);
    EXPECT_EQ(fallback.rep.waves, flat.rep.waves);
    EXPECT_EQ(std::memcmp(fallback.out.data(), flat.out.data(),
                          flat.out.size() * sizeof(float)),
              0);
}

// ---------------------------------------------------------------------
// Determinism: the fleet schedule is bookkept in modeled time on the
// consumer thread, so any simulation thread count produces the same
// bytes.

TEST(FleetScheduler, BitIdenticalAcrossSimThreadCounts)
{
    Topology topo{2, 2, 4};
    std::vector<Req> reqs = mixedLoad(12, 160);

    std::optional<RunResult> ref;
    std::string refJournal;
    for (uint32_t threads : {1u, 4u, 16u}) {
        obs::Journal journal;
        RunResult res = runTrace(reqs, topo.numDpus(), &topo, 32,
                                 threads, nullptr, true, &journal);
        ASSERT_TRUE(res.rep.complete);
        std::string jsonl = journal.toJsonl();
        if (!ref) {
            ref = std::move(res);
            refJournal = std::move(jsonl);
            continue;
        }
        EXPECT_EQ(res.rep.modeledSeconds, ref->rep.modeledSeconds);
        EXPECT_EQ(res.rep.computeCycles, ref->rep.computeCycles);
        EXPECT_EQ(res.rep.waves, ref->rep.waves);
        ASSERT_EQ(res.rep.rankStats.size(),
                  ref->rep.rankStats.size());
        for (size_t r = 0; r < res.rep.rankStats.size(); ++r) {
            EXPECT_EQ(res.rep.rankStats[r].waves,
                      ref->rep.rankStats[r].waves);
            EXPECT_EQ(res.rep.rankStats[r].makespanSeconds,
                      ref->rep.rankStats[r].makespanSeconds);
        }
        EXPECT_EQ(std::memcmp(res.out.data(), ref->out.data(),
                              ref->out.size() * sizeof(float)),
                  0);
        EXPECT_EQ(jsonl, refJournal); // journal bytes, not just stats
    }
}

// ---------------------------------------------------------------------
// Accounting identities.

TEST(FleetScheduler, MakespanIsMaxOverRankMakespans)
{
    Topology topo{2, 2, 4};
    RunResult res =
        runTrace(mixedLoad(16, 200), topo.numDpus(), &topo, 32);
    ASSERT_TRUE(res.rep.complete);
    ASSERT_EQ(res.rep.rankStats.size(), topo.numRanks());

    double maxSpan = 0.0;
    uint64_t waves = 0;
    uint64_t elements = 0;
    uint64_t cycles = 0;
    for (const serve::RankStats& r : res.rep.rankStats) {
        maxSpan = std::max(maxSpan, r.makespanSeconds);
        waves += r.waves;
        elements += r.elements;
        cycles += r.computeCycles;
    }
    // The fleet clock is exactly the slowest rank's clock, and the
    // per-rank rows partition the fleet totals.
    EXPECT_EQ(res.rep.modeledSeconds, maxSpan);
    EXPECT_EQ(waves, res.rep.waves);
    EXPECT_EQ(elements, res.rep.elements);
    EXPECT_EQ(cycles, res.rep.computeCycles);
}

TEST(FleetScheduler, PipelinedFleetNotSlowerThanSyncFleet)
{
    Topology topo{2, 2, 4};
    std::vector<Req> reqs = mixedLoad(16, 200);
    RunResult pipe = runTrace(reqs, topo.numDpus(), &topo, 32, 0,
                              nullptr, true);
    RunResult sync = runTrace(reqs, topo.numDpus(), &topo, 32, 0,
                              nullptr, false);
    ASSERT_TRUE(pipe.rep.complete);
    ASSERT_TRUE(sync.rep.complete);
    EXPECT_LE(pipe.rep.modeledSeconds,
              sync.rep.modeledSeconds * (1.0 + 1e-12));
    // Data results are schedule-independent.
    EXPECT_EQ(std::memcmp(pipe.out.data(), sync.out.data(),
                          sync.out.size() * sizeof(float)),
              0);
}

TEST(FleetScheduler, MoreRanksServeTheSameLoadFaster)
{
    std::vector<Req> reqs = mixedLoad(32, 256);
    Topology one{1, 1, 8};
    Topology four{4, 1, 8};
    RunResult r1 = runTrace(reqs, one.numDpus(), &one, 32);
    RunResult r4 = runTrace(reqs, four.numDpus(), &four, 32);
    ASSERT_TRUE(r1.rep.complete);
    ASSERT_TRUE(r4.rep.complete);
    // Scale-out must actually buy throughput on a parallel load.
    EXPECT_LT(r4.rep.modeledSeconds * 1.5, r1.rep.modeledSeconds);
    EXPECT_EQ(std::memcmp(r1.out.data(), r4.out.data(),
                          r1.out.size() * sizeof(float)),
              0);
}

// ---------------------------------------------------------------------
// Hot-table balancing.

TEST(FleetScheduler, HotTablesBalanceAcrossRanks)
{
    Topology topo{4, 1, 4};
    RunResult res =
        runTrace(mixedLoad(48, 128), topo.numDpus(), &topo, 32);
    ASSERT_TRUE(res.rep.complete);
    ASSERT_EQ(res.rep.rankStats.size(), 4u);

    uint64_t totalResident = 0;
    uint64_t maxResident = 0;
    for (const serve::RankStats& r : res.rep.rankStats) {
        EXPECT_GT(r.waves, 0u); // every rank pulled weight
        totalResident += r.residentTables;
        maxResident = std::max(maxResident, r.residentTables);
    }
    ASSERT_GT(totalResident, 0u);
    const double mean =
        static_cast<double>(totalResident) /
        static_cast<double>(res.rep.rankStats.size());
    // Balanced residency: no rank hoards more than twice the mean.
    EXPECT_LE(static_cast<double>(maxResident), 2.0 * mean);
}

// ---------------------------------------------------------------------
// Fault degradation per rank.

TEST(FleetScheduler, MaskedRankReshardsOntoHealthyRanks)
{
    // Kill all four DPUs of rank 0 (hard-fail on first launch); the
    // fleet must finish every element on rank 1 with nothing dropped.
    Topology topo{2, 1, 4};
    const char* plan =
        "seed 5\n"
        "fault kind=dpu-hard-fail dpu=0 prob=1\n"
        "fault kind=dpu-hard-fail dpu=1 prob=1\n"
        "fault kind=dpu-hard-fail dpu=2 prob=1\n"
        "fault kind=dpu-hard-fail dpu=3 prob=1\n";
    RunResult res = runTrace(mixedLoad(12, 160), topo.numDpus(),
                             &topo, 32, 0, plan);
    ASSERT_TRUE(res.rep.complete);
    EXPECT_EQ(res.rep.droppedElements, 0u);
    EXPECT_EQ(res.rep.failedDpus.size(), 4u);
    EXPECT_GT(res.rep.reshardedElements, 0u);
    ASSERT_EQ(res.rep.rankStats.size(), 2u);
    // The surviving rank served the re-sharded stream.
    EXPECT_GT(res.rep.rankStats[1].waves, 0u);
    // Exact accounting: what the healthy rank computed is the whole
    // fleet's compute.
    EXPECT_EQ(res.rep.rankStats[1].computeCycles +
                  res.rep.rankStats[0].computeCycles,
              res.rep.computeCycles);

    // Outputs match a fault-free flat reference bit for bit.
    RunResult ref = runTrace(mixedLoad(12, 160), 8, nullptr, 32);
    ASSERT_TRUE(ref.rep.complete);
    EXPECT_EQ(std::memcmp(res.out.data(), ref.out.data(),
                          ref.out.size() * sizeof(float)),
              0);
}

TEST(FleetScheduler, AllRanksDeadDropsEverythingWithoutHanging)
{
    Topology topo{2, 1, 2};
    const char* plan =
        "seed 7\nfault kind=dpu-hard-fail prob=1\n"; // every DPU
    // A single small request: it fits in one wave, so after the
    // retry budget the drop accounting must be exact.
    std::vector<Req> reqs = {{0, 96}};
    RunResult res =
        runTrace(reqs, topo.numDpus(), &topo, 32, 0, plan);
    EXPECT_FALSE(res.rep.complete);
    EXPECT_EQ(res.rep.droppedElements, 96u);
    for (float v : res.out)
        EXPECT_EQ(v, 0.0f); // nothing pretended to be served
}
