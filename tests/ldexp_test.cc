/**
 * @file
 * C99 conformance tests for the PIM-side ldexpf against the host libm.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {
namespace {

::testing::AssertionResult
bitEqual(float expected, float actual)
{
    if (std::isnan(expected) && std::isnan(actual))
        return ::testing::AssertionSuccess();
    if (floatBits(expected) == floatBits(actual))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "expected " << std::hexfloat << expected << " got "
           << actual;
}

TEST(PimLdexp, PassThroughSpecials)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(bitEqual(inf, pimLdexp(inf, 10)));
    EXPECT_TRUE(bitEqual(-inf, pimLdexp(-inf, -10)));
    EXPECT_TRUE(std::isnan(pimLdexp(nan, 3)));
    EXPECT_TRUE(bitEqual(0.0f, pimLdexp(0.0f, 100)));
    EXPECT_TRUE(bitEqual(-0.0f, pimLdexp(-0.0f, -100)));
}

TEST(PimLdexp, PowersOfTwo)
{
    EXPECT_TRUE(bitEqual(8.0f, pimLdexp(1.0f, 3)));
    EXPECT_TRUE(bitEqual(0.125f, pimLdexp(1.0f, -3)));
    EXPECT_TRUE(bitEqual(-48.0f, pimLdexp(-3.0f, 4)));
    EXPECT_TRUE(bitEqual(1.0f, pimLdexp(1.0f, 0)));
}

TEST(PimLdexp, OverflowToInfinity)
{
    EXPECT_TRUE(bitEqual(std::ldexp(1.0f, 200), pimLdexp(1.0f, 200)));
    EXPECT_TRUE(bitEqual(std::ldexp(-1.5f, 300), pimLdexp(-1.5f, 300)));
    float maxN = std::numeric_limits<float>::max();
    EXPECT_TRUE(bitEqual(std::ldexp(maxN, 1), pimLdexp(maxN, 1)));
}

TEST(PimLdexp, UnderflowToSubnormalAndZero)
{
    EXPECT_TRUE(bitEqual(std::ldexp(1.0f, -127), pimLdexp(1.0f, -127)));
    EXPECT_TRUE(bitEqual(std::ldexp(1.0f, -149), pimLdexp(1.0f, -149)));
    EXPECT_TRUE(bitEqual(std::ldexp(1.0f, -150), pimLdexp(1.0f, -150)));
    EXPECT_TRUE(bitEqual(std::ldexp(-1.0f, -200), pimLdexp(-1.0f, -200)));
    EXPECT_TRUE(bitEqual(std::ldexp(1.75f, -149), pimLdexp(1.75f, -149)));
}

TEST(PimLdexp, SubnormalInputs)
{
    float den = std::numeric_limits<float>::denorm_min();
    EXPECT_TRUE(bitEqual(std::ldexp(den, 30), pimLdexp(den, 30)));
    EXPECT_TRUE(bitEqual(std::ldexp(den, 200), pimLdexp(den, 200)));
    float sub = bitsToFloat(0x00400123u);
    EXPECT_TRUE(bitEqual(std::ldexp(sub, 5), pimLdexp(sub, 5)));
    EXPECT_TRUE(bitEqual(std::ldexp(sub, -5), pimLdexp(sub, -5)));
}

TEST(PimLdexp, RandomSweepMatchesLibm)
{
    SplitMix64 rng(31);
    for (int i = 0; i < 200000; ++i) {
        float a = bitsToFloat(static_cast<uint32_t>(rng.next()));
        if (std::isnan(a))
            continue;
        int e = static_cast<int>(rng.next() % 700) - 350;
        ASSERT_TRUE(bitEqual(std::ldexp(a, e), pimLdexp(a, e)))
            << std::hexfloat << a << " exp " << e;
    }
}

TEST(PimLdexp, ChargesFewInstructions)
{
    // The whole point of the L-LUT: ldexp must be far cheaper than an
    // emulated float multiplication (~175 instructions).
    CountingSink sink;
    for (int i = 0; i < 1000; ++i)
        pimLdexp(1.5f, (i % 40) - 20, &sink);
    EXPECT_LT(sink.total() / 1000, 20u);
    EXPECT_GT(sink.total() / 1000, 4u);
}

} // namespace
} // namespace transpim
} // namespace tpl
