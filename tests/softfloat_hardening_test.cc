/**
 * @file
 * Soft-float hardening: systematic boundary-grid sweeps beyond the
 * random testing in softfloat_test.cc.
 *
 * The accuracy claims of the whole library rest on the soft-float
 * layer being bit-exact, so these tests walk structured grids designed
 * to hit every rounding/normalization corner: all exponent-difference
 * classes for add/sub, products that straddle the subnormal boundary
 * and the overflow boundary, quotients around power-of-two edges, and
 * mantissa patterns that force carries out of rounding.
 */

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "softfloat/softfloat.h"

namespace tpl {
namespace {

::testing::AssertionResult
bitEqual(float expected, float actual)
{
    if (std::isnan(expected) && std::isnan(actual))
        return ::testing::AssertionSuccess();
    if (floatBits(expected) == floatBits(actual))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << std::hexfloat << "expected " << expected << " got "
           << actual;
}

/** Mantissa patterns that exercise rounding carries and ties. */
constexpr uint32_t kMantissas[] = {
    0x000000, 0x000001, 0x3fffff, 0x400000, 0x400001,
    0x7ffffe, 0x7fffff, 0x555555, 0x2aaaaa, 0x000002,
};

class ExponentPairTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ExponentPairTest, AddSubGrid)
{
    auto [ea, eb] = GetParam();
    for (uint32_t ma : kMantissas) {
        for (uint32_t mb : kMantissas) {
            for (uint32_t signs = 0; signs < 4; ++signs) {
                float a = bitsToFloat(ieeePack(
                    signs & 1, static_cast<uint32_t>(ea), ma));
                float b = bitsToFloat(ieeePack(
                    (signs >> 1) & 1, static_cast<uint32_t>(eb), mb));
                ASSERT_TRUE(bitEqual(a + b, sf::add(a, b)))
                    << std::hexfloat << a << " + " << b;
                ASSERT_TRUE(bitEqual(a - b, sf::sub(a, b)))
                    << std::hexfloat << a << " - " << b;
            }
        }
    }
}

// Exponent pairs: equal, adjacent (massive cancellation), a few apart
// (guard-bit rounding), far apart (absorption), and subnormal edges.
INSTANTIATE_TEST_SUITE_P(
    Boundaries, ExponentPairTest,
    ::testing::Values(std::make_tuple(127, 127),
                      std::make_tuple(127, 126),
                      std::make_tuple(127, 125),
                      std::make_tuple(127, 120),
                      std::make_tuple(127, 103),
                      std::make_tuple(127, 102),
                      std::make_tuple(127, 30),
                      std::make_tuple(1, 0),   // smallest normal + sub
                      std::make_tuple(0, 0),   // both subnormal
                      std::make_tuple(2, 1),
                      std::make_tuple(254, 254), // near overflow
                      std::make_tuple(254, 253)));

TEST(SoftFloatHardening, MulSubnormalBoundaryGrid)
{
    // Products with result exponents sweeping across the subnormal
    // boundary (sum of unbiased exponents near -126).
    for (int ea = -80; ea <= -40; ++ea) {
        int eb = -126 - ea; // product magnitude near 2^-126
        for (int shift = -3; shift <= 3; ++shift) {
            for (uint32_t ma : kMantissas) {
                float a = bitsToFloat(ieeePack(
                    0, static_cast<uint32_t>(ea + 127), ma));
                float b = bitsToFloat(ieeePack(
                    0, static_cast<uint32_t>(eb + shift + 127),
                    0x31415a & 0x7fffff));
                ASSERT_TRUE(bitEqual(a * b, sf::mul(a, b)))
                    << std::hexfloat << a << " * " << b;
            }
        }
    }
}

TEST(SoftFloatHardening, MulOverflowBoundaryGrid)
{
    for (int ea = 120; ea <= 127; ++ea) {
        for (int eb = 0; eb <= 8; ++eb) {
            for (uint32_t ma : kMantissas) {
                float a = bitsToFloat(ieeePack(
                    0, static_cast<uint32_t>(ea + 127), ma));
                float b = bitsToFloat(ieeePack(
                    1, static_cast<uint32_t>(eb + 127), 0x7fffff));
                ASSERT_TRUE(bitEqual(a * b, sf::mul(a, b)))
                    << std::hexfloat << a << " * " << b;
            }
        }
    }
}

TEST(SoftFloatHardening, DivPowerOfTwoEdges)
{
    // Quotients landing exactly at or next to powers of two stress
    // the quotient normalization step.
    for (uint32_t ma : kMantissas) {
        for (uint32_t mb : kMantissas) {
            float a = bitsToFloat(ieeePack(0, 127, ma));
            float b = bitsToFloat(ieeePack(0, 127, mb));
            ASSERT_TRUE(bitEqual(a / b, sf::div(a, b)))
                << std::hexfloat << a << " / " << b;
            ASSERT_TRUE(bitEqual(b / a, sf::div(b, a)))
                << std::hexfloat << b << " / " << a;
        }
    }
}

TEST(SoftFloatHardening, DivSubnormalOperands)
{
    SplitMix64 rng(71);
    for (int i = 0; i < 50000; ++i) {
        // Subnormal / normal and normal / large -> subnormal result.
        float a = bitsToFloat(static_cast<uint32_t>(rng.next()) &
                              0x007fffffu); // subnormal
        float b = bitsToFloat(ieeePack(
            rng.next() & 1,
            1 + static_cast<uint32_t>(rng.next() % 120),
            static_cast<uint32_t>(rng.next()) & 0x7fffffu));
        ASSERT_TRUE(bitEqual(a / b, sf::div(a, b)))
            << std::hexfloat << a << " / " << b;
        ASSERT_TRUE(bitEqual(b / a, sf::div(b, a)))
            << std::hexfloat << b << " / " << a;
    }
}

TEST(SoftFloatHardening, SqrtExponentSweep)
{
    // Every exponent with tie-prone mantissas.
    for (int e = 0; e <= 254; ++e) {
        for (uint32_t m : kMantissas) {
            float a = bitsToFloat(ieeePack(0, static_cast<uint32_t>(e),
                                           m));
            ASSERT_TRUE(bitEqual(std::sqrt(a), sf::sqrt(a)))
                << std::hexfloat << a;
        }
    }
}

TEST(SoftFloatHardening, RoundToNearestEvenTies)
{
    // Construct additions whose exact result sits exactly halfway
    // between representable values: a = 1.0, b = ulp/2 * odd.
    float one = 1.0f;
    float halfUlp = std::ldexp(1.0f, -24);
    ASSERT_TRUE(bitEqual(one + halfUlp, sf::add(one, halfUlp)));
    // 1.0 + 1.5*ulp/2 rounds up; 1.0 + 0.5*ulp stays (ties to even).
    float u = std::ldexp(1.0f, -23);
    float x = 1.0f + u; // odd mantissa LSB
    ASSERT_TRUE(bitEqual(x + halfUlp, sf::add(x, halfUlp)));
}

TEST(SoftFloatHardening, ConversionBoundaryIntegers)
{
    for (int32_t v : {0, 1, -1, 2, -2, 0x7fffff, 0x800000, 0x800001,
                      0x1000000, 0x1000001, INT32_MAX, INT32_MIN,
                      INT32_MAX - 1, INT32_MIN + 1}) {
        ASSERT_TRUE(bitEqual(static_cast<float>(v), sf::fromI32(v)))
            << v;
    }
    // Floats exactly at integer boundaries.
    for (float f : {8388608.0f, 8388609.0f, 16777216.0f,
                    2147483520.0f, -2147483520.0f}) {
        ASSERT_EQ(static_cast<int32_t>(f), sf::toI32Trunc(f)) << f;
    }
}

TEST(SoftFloatHardening, FixedConversionEdges)
{
    // Q3.28 boundaries: the largest representable value, resolution
    // steps, and negative extremes.
    EXPECT_EQ(Fixed::fromFloat(7.99999f).raw(),
              sf::toFixed(7.99999f).raw());
    EXPECT_EQ(Fixed::fromFloat(-8.0f).raw(), sf::toFixed(-8.0f).raw());
    float eps = std::ldexp(1.0f, -28);
    EXPECT_EQ(1, sf::toFixed(eps).raw());
    EXPECT_EQ(-1, sf::toFixed(-eps).raw());
    EXPECT_EQ(1, sf::toFixed(eps * 0.75f).raw()); // rounds to nearest
    EXPECT_EQ(0, sf::toFixed(eps * 0.25f).raw());
}

} // namespace
} // namespace tpl
