/**
 * @file
 * Fuzzy and direct lookup-table method tests: address generation,
 * accuracy scaling with table size, interpolation benefits, cost
 * properties (the multiplication counts that define the paper's
 * Figure 5 ordering), fixed-point variants, and D-LUT spacing.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/direct_lut.h"
#include "transpim/fuzzy_lut.h"

namespace tpl {
namespace transpim {
namespace {

double
maxError(const std::function<float(float)>& approx,
         const std::function<double(double)>& ref, double lo, double hi,
         int samples = 4000)
{
    double worst = 0.0;
    for (int i = 0; i <= samples; ++i) {
        double x = lo + (hi - lo) * i / samples;
        worst = std::max(worst, std::abs(approx((float)x) - ref(x)));
    }
    return worst;
}

TableFn sinFn = [](double x) { return std::sin(x); };
TableFn tanhFn = [](double x) { return std::tanh(x); };
TableFn expFn = [](double x) { return std::exp(x); };

constexpr double kTwoPi = 6.283185307179586;

TEST(MLut, PaperExampleAddressing)
{
    // Section 3.2.1's example: 12 entries over [0, 5] gives density
    // k = 11/5 = 2.2 in our grid formulation; an input maps to the
    // nearest grid point.
    MLut lut([](double x) { return x; }, 0.0, 5.0, 12, false,
             Placement::Host);
    EXPECT_NEAR(12.0 / 5.0, lut.density(), 0.3);
    // Identity table: output is the nearest grid value.
    float y = lut.eval(3.0f, nullptr);
    EXPECT_NEAR(3.0, y, 0.5 / lut.density());
}

TEST(MLut, ErrorShrinksLinearlyWithEntries)
{
    double prev = 1.0;
    for (uint32_t n : {64u, 256u, 1024u, 4096u}) {
        MLut lut(sinFn, 0.0, kTwoPi, n, false, Placement::Host);
        double err = maxError(
            [&](float x) { return lut.eval(x, nullptr); },
            [](double x) { return std::sin(x); }, 0.0, kTwoPi);
        // Non-interpolated error ~ half spacing.
        EXPECT_LT(err, 1.2 * kTwoPi / n) << n;
        EXPECT_LT(err, prev);
        prev = err;
    }
}

TEST(MLut, InterpolationErrorQuadratic)
{
    for (uint32_t n : {64u, 256u, 1024u}) {
        MLut plain(sinFn, 0.0, kTwoPi, n, false, Placement::Host);
        MLut interp(sinFn, 0.0, kTwoPi, n, true, Placement::Host);
        double errP = maxError(
            [&](float x) { return plain.eval(x, nullptr); },
            [](double x) { return std::sin(x); }, 0.0, kTwoPi);
        double errI = maxError(
            [&](float x) { return interp.eval(x, nullptr); },
            [](double x) { return std::sin(x); }, 0.0, kTwoPi);
        EXPECT_LT(errI, errP / 4) << n;
        // Interpolation error ~ spacing^2 / 8 * |f''|.
        double s = kTwoPi / (n - 1);
        EXPECT_LT(errI, s * s) << n;
    }
}

TEST(LLut, DensityIsPowerOfTwo)
{
    LLut lut(sinFn, 0.0, kTwoPi, 1000, false, Placement::Host);
    // 2^7 = 128 per unit: 6.28*128 = 804 entries <= 1000. 2^8 would
    // need 1609.
    EXPECT_EQ(7, lut.densityLog2());
    EXPECT_LE(lut.entries(), 1000u);
    EXPECT_GE(lut.entries(), 500u);
}

TEST(LLut, MatchesMLutAccuracyClass)
{
    for (uint32_t n : {256u, 2048u}) {
        LLut lut(sinFn, 0.0, kTwoPi, n, true, Placement::Host);
        double err = maxError(
            [&](float x) { return lut.eval(x, nullptr); },
            [](double x) { return std::sin(x); }, 0.0, kTwoPi);
        double spacing = std::ldexp(1.0, -lut.densityLog2());
        EXPECT_LT(err, spacing * spacing) << n;
    }
}

TEST(LLut, NoMultiplicationWhenNotInterpolated)
{
    // The defining L-LUT property: the non-interpolated query runs in
    // far fewer instructions than one emulated float multiply (~175).
    LLut lut(sinFn, 0.0, kTwoPi, 1024, false, Placement::Host);
    CountingSink sink;
    lut.eval(3.0f, &sink);
    EXPECT_LT(sink.total(), 120u);
}

TEST(LLut, CostOrderingAgainstMLut)
{
    LLut llutPlain(sinFn, 0.0, kTwoPi, 1024, false, Placement::Host);
    LLut llutInterp(sinFn, 0.0, kTwoPi, 1024, true, Placement::Host);
    MLut mlutPlain(sinFn, 0.0, kTwoPi, 1024, false, Placement::Host);
    MLut mlutInterp(sinFn, 0.0, kTwoPi, 1024, true, Placement::Host);
    CountingSink sLP, sLI, sMP, sMI;
    llutPlain.eval(3.0f, &sLP);
    llutInterp.eval(3.0f, &sLI);
    mlutPlain.eval(3.0f, &sMP);
    mlutInterp.eval(3.0f, &sMI);
    // Figure 5 ordering: L < M within each interpolation class, and
    // interpolated variants cost more than their plain counterparts.
    EXPECT_LT(sLP.total(), sMP.total());
    EXPECT_LT(sLI.total(), sMI.total());
    EXPECT_LT(sLP.total(), sLI.total());
    EXPECT_LT(sMP.total(), sMI.total());
    // Non-interpolated L-LUT saves the full multiply vs M-LUT.
    EXPECT_LT(sLP.total(), 0.5 * sMP.total());
}

TEST(LLutFixed, MatchesFloatAccuracyClass)
{
    LLutFixed lut(sinFn, 0.0, kTwoPi, 4096, true, Placement::Host);
    double err = maxError(
        [&](float x) { return lut.eval(x, nullptr); },
        [](double x) { return std::sin(x); }, 0.0, kTwoPi);
    double spacing = std::ldexp(1.0, -lut.densityLog2());
    EXPECT_LT(err, spacing * spacing + 1e-7);
}

TEST(LLutFixed, FixedPipelineAvoidsFloatOps)
{
    LLutFixed lut(sinFn, 0.0, kTwoPi, 1024, true, Placement::Host);
    CountingSink viaFloat, viaFixed;
    lut.eval(3.0f, &viaFloat);
    lut.evalFixed(Fixed::fromDouble(3.0), &viaFixed);
    // The all-fixed path skips both conversions.
    EXPECT_LT(viaFixed.total(), viaFloat.total());
    // Interpolated fixed L-LUT uses one emulated int multiply, which
    // is much cheaper than the float multiply of the float variant.
    LLut fl(sinFn, 0.0, kTwoPi, 1024, true, Placement::Host);
    CountingSink floatSink;
    fl.eval(3.0f, &floatSink);
    EXPECT_LT(viaFloat.total(), floatSink.total());
}

TEST(LLutFixed, RoundingAddress)
{
    // Non-interpolated fixed lookup rounds to the nearest entry.
    LLutFixed lut([](double x) { return x; }, 0.0, 4.0, 5, false,
                  Placement::Host);
    // density 2^0 = 1 entry per unit.
    EXPECT_EQ(0, lut.densityLog2());
    EXPECT_NEAR(2.0, lut.eval(2.4f, nullptr), 1e-6);
    EXPECT_NEAR(3.0, lut.eval(2.6f, nullptr), 1e-6);
}

TEST(DLut, DenseNearZero)
{
    // The pseudo-logarithmic spacing puts far more resolution near
    // zero than a uniform table with the same entry count could: a
    // signed D-LUT with 16 exponents x 64 entries (2048 total) has
    // spacing ~1.2e-4 around |x| ~ 0.01, while a uniform 2048-entry
    // table over [-8, 8] has spacing 7.8e-3 everywhere.
    DLutSpec spec;
    spec.minExp = -12;
    spec.maxExp = 3;
    spec.mantBits = 6;
    DLut lut(tanhFn, spec, false, Placement::Host);
    MLut uniform(tanhFn, -8.0, 8.0, 2048, false, Placement::Host);
    double errD = maxError(
        [&](float x) { return lut.eval(x, nullptr); },
        [](double x) { return std::tanh(x); }, 0.01, 0.02);
    double errU = maxError(
        [&](float x) { return uniform.eval(x, nullptr); },
        [](double x) { return std::tanh(x); }, 0.01, 0.02);
    EXPECT_LT(errD, 2e-4);
    EXPECT_LT(errD, errU / 4);
}

TEST(DLut, BlindSpotBelowMinExp)
{
    // The paper's D-LUT limitation: no entries between 0 and the
    // smallest exponent; inputs there clamp to the first entry.
    DLutSpec spec;
    spec.minExp = -4; // smallest covered magnitude 1/16
    spec.maxExp = 3;
    spec.mantBits = 4;
    DLut lut(tanhFn, spec, false, Placement::Host);
    float atZero = lut.eval(0.0f, nullptr);
    float atTiny = lut.eval(1e-8f, nullptr);
    EXPECT_EQ(atZero, atTiny); // both clamp to the same entry
    EXPECT_NEAR(std::tanh(1.0 / 16.0), atZero, 0.01);
}

TEST(DLut, SignedCoverage)
{
    DLutSpec spec;
    spec.minExp = -10;
    spec.maxExp = 3;
    spec.mantBits = 6;
    DLut lut(tanhFn, spec, true, Placement::Host);
    SplitMix64 rng(51);
    for (int i = 0; i < 2000; ++i) {
        float x = rng.nextFloat(-8.0f, 8.0f);
        EXPECT_NEAR(std::tanh(x), lut.eval(x, nullptr), 0.02) << x;
    }
}

TEST(DLut, InterpolationImprovesAccuracy)
{
    DLutSpec spec;
    spec.minExp = -10;
    spec.maxExp = 3;
    spec.mantBits = 6;
    DLut plain(tanhFn, spec, false, Placement::Host);
    DLut interp(tanhFn, spec, true, Placement::Host);
    double errP = maxError(
        [&](float x) { return plain.eval(x, nullptr); },
        [](double x) { return std::tanh(x); }, -8.0, 8.0);
    double errI = maxError(
        [&](float x) { return interp.eval(x, nullptr); },
        [](double x) { return std::tanh(x); }, -8.0, 8.0);
    EXPECT_LT(errI, errP / 3);
}

TEST(DLut, CheapAddressGeneration)
{
    DLutSpec spec;
    DLut lut(tanhFn, spec, false, Placement::Host);
    CountingSink sink;
    lut.eval(1.5f, &sink);
    // Shift + subtract + clamps: no float arithmetic at all.
    EXPECT_LT(sink.total(), 20u);
}

TEST(DlLut, CoversZeroNeighborhood)
{
    DLutSpec spec;
    spec.maxExp = 3;
    spec.mantBits = 6;
    DlLut lut(tanhFn, spec, 1024, true, Placement::Host);
    // Unlike the plain D-LUT, near-zero inputs interpolate on the
    // uniform inner L-LUT.
    EXPECT_NEAR(0.0, lut.eval(0.0f, nullptr), 1e-4);
    EXPECT_NEAR(std::tanh(1e-3), lut.eval(1e-3f, nullptr), 1e-4);
    SplitMix64 rng(52);
    for (int i = 0; i < 2000; ++i) {
        float x = rng.nextFloat(-8.0f, 8.0f);
        EXPECT_NEAR(std::tanh(x), lut.eval(x, nullptr), 5e-3) << x;
    }
}

TEST(DlLut, MemoryIsSumOfHalves)
{
    DLutSpec spec;
    spec.maxExp = 3;
    spec.mantBits = 6;
    DlLut lut(expFn, spec, 512, true, Placement::Host);
    EXPECT_GT(lut.memoryBytes(), 512u * 4u);
}

TEST(LutPlacement, WramOverflowThrows)
{
    // A 2^16-entry float table (256 KB) cannot live in 64-KB WRAM.
    LLut big(sinFn, 0.0, kTwoPi, 1u << 16, false, Placement::Wram);
    sim::DpuCore dpu;
    EXPECT_THROW(big.attach(dpu), std::bad_alloc);
    // The same table fits in MRAM.
    LLut bigM(sinFn, 0.0, kTwoPi, 1u << 16, false, Placement::Mram);
    EXPECT_NO_THROW(bigM.attach(dpu));
}

TEST(LutPlacement, MramReadsChargeDma)
{
    LLut lut(sinFn, 0.0, kTwoPi, 4096, false, Placement::Mram);
    sim::DpuCore dpu;
    lut.attach(dpu);
    sim::LaunchStats stats = dpu.launch(1, [&](sim::TaskletContext& ctx) {
        float y = lut.eval(1.0f, &ctx);
        EXPECT_NEAR(std::sin(1.0), y, 1e-3);
    });
    EXPECT_GT(stats.dmaEngineCycles, 0u);
}

TEST(LutPlacement, WramAndMramAgreeOnValues)
{
    LLut w(sinFn, 0.0, kTwoPi, 2048, true, Placement::Wram);
    LLut m(sinFn, 0.0, kTwoPi, 2048, true, Placement::Mram);
    sim::DpuCore dpu;
    w.attach(dpu);
    m.attach(dpu);
    dpu.launch(1, [&](sim::TaskletContext& ctx) {
        for (float x : {0.1f, 1.0f, 3.0f, 6.0f}) {
            EXPECT_EQ(w.eval(x, &ctx), m.eval(x, &ctx)) << x;
        }
    });
}

} // namespace
} // namespace transpim
} // namespace tpl
