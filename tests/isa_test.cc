/**
 * @file
 * Miniature DPU ISA tests: assembler parsing and errors, interpreter
 * semantics, and - the point of the module - bottom-up validation of
 * the cost model: hand-written assembly kernels for the fixed-point
 * interpolated L-LUT and the fixed-point CORDIC must reproduce the
 * high-level implementations' outputs *bit-exactly* and land within a
 * tight band of their charged instruction counts.
 */

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "pimsim/isa.h"
#include "transpim/cordic.h"
#include "transpim/fuzzy_lut.h"

#include "isa_kernels.h"

namespace tpl {
namespace sim {
namespace {

using testkernels::substConst;

/** Replace every occurrence of @p key with @p value. */
std::string
subst(std::string text, const std::string& key, int64_t value)
{
    return substConst(std::move(text), key, value);
}

ExecResult
runOnce(const Program& prog, DpuCore& dpu,
        const std::array<int32_t, 4>& args = {})
{
    ExecResult out;
    dpu.launch(1, [&](TaskletContext& ctx) {
        out = execute(prog, ctx);
        (void)args;
    });
    return out;
}

TEST(Assembler, ParsesBasicProgram)
{
    Program p = assemble(R"(
        # compute 6*7 the long way
        movi r1, 6
        movi r2, 7
        mul  r3, r1, r2
        halt
    )");
    EXPECT_EQ(4u, p.code.size());
    EXPECT_EQ(Opcode::Mul, p.code[2].op);
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = assemble(R"(
        movi r1, 0
        movi r2, 5
    loop:
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
    )");
    // The branch target is the instruction index of 'loop'.
    EXPECT_EQ(2, p.code[3].imm);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    EXPECT_THROW(assemble("bogus r1, r2\n"), AsmError);
    EXPECT_THROW(assemble("add r1, r2\n"), AsmError); // missing operand
    EXPECT_THROW(assemble("add r1, r2, r99\n"), AsmError);
    EXPECT_THROW(assemble("jmp nowhere\n"), AsmError);
    EXPECT_THROW(assemble("movi r1, zzz\n"), AsmError);
    try {
        assemble("movi r1, 1\nbogus\n");
        FAIL();
    } catch (const AsmError& e) {
        EXPECT_NE(nullptr, std::strstr(e.what(), "line 2"));
    }
}

TEST(Interpreter, ArithmeticSemantics)
{
    Program p = assemble(R"(
        movi r1, -20
        movi r2, 6
        add  r3, r1, r2     # -14
        sub  r4, r1, r2     # -26
        mul  r5, r1, r2     # -120
        mulh r6, r1, r2     # -1 (sign extension of small product)
        srai r7, r1, 2      # -5
        srli r8, r1, 28     # 15 (logical)
        andi r9, r1, 0xff   # 0xec
        halt
    )");
    DpuCore dpu;
    ExecResult r = runOnce(p, dpu);
    EXPECT_EQ(-14, r.registers[3]);
    EXPECT_EQ(-26, r.registers[4]);
    EXPECT_EQ(-120, r.registers[5]);
    EXPECT_EQ(-1, r.registers[6]);
    EXPECT_EQ(-5, r.registers[7]);
    EXPECT_EQ(15, r.registers[8]);
    EXPECT_EQ(0xec, r.registers[9]);
}

TEST(Interpreter, LoopAndWram)
{
    // Sum WRAM[0..9] into WRAM[40].
    DpuCore dpu;
    for (int32_t i = 0; i < 10; ++i)
        std::memcpy(dpu.wramData() + 4 * i, &i, 4);
    Program p = assemble(R"(
        movi r1, 0      # i
        movi r2, 10
        movi r3, 0      # sum
    loop:
        bge  r1, r2, done
        slli r4, r1, 2
        ldw  r5, r4, 0
        add  r3, r3, r5
        addi r1, r1, 1
        jmp  loop
    done:
        movi r6, 0
        stw  r3, r6, 40
        halt
    )");
    runOnce(p, dpu);
    int32_t sum;
    std::memcpy(&sum, dpu.wramData() + 40, 4);
    EXPECT_EQ(45, sum);
}

TEST(Interpreter, DmaInstructions)
{
    DpuCore dpu;
    std::vector<int32_t> data{11, 22, 33, 44};
    dpu.hostWriteMram(1024, data.data(), 16);
    Program p = assemble(R"(
        movi r1, 0       # wram addr
        movi r2, 1024    # mram addr
        movi r3, 16      # bytes
        ldma r1, r2, r3
        ldw  r4, r1, 8   # third word
        movi r5, 2048
        sdma r1, r5, r3
        halt
    )");
    ExecResult r = runOnce(p, dpu);
    EXPECT_EQ(33, r.registers[4]);
    std::vector<int32_t> back(4);
    dpu.hostReadMram(2048, back.data(), 16);
    EXPECT_EQ(data, back);
}

TEST(Interpreter, GuardsAndErrors)
{
    DpuCore dpu;
    Program spin = assemble("loop: jmp loop\n");
    EXPECT_THROW(dpu.launch(1,
                            [&](TaskletContext& ctx) {
                                execute(spin, ctx, 1000);
                            }),
                 std::runtime_error);
    Program oob = assemble(R"(
        movi r1, 0x7fffffff
        ldw  r2, r1, 0
        halt
    )");
    EXPECT_THROW(dpu.launch(1,
                            [&](TaskletContext& ctx) {
                                execute(oob, ctx);
                            }),
                 std::runtime_error);
}

// ---------------------------------------------------------------------
// Bottom-up cost-model validation
// ---------------------------------------------------------------------

// Hand-written fixed-point kernels shared with analysis_test.cc.
using testkernels::kCordicKernel;
using testkernels::kLLutKernel;

TEST(CostModelValidation, FixedLLutKernelMatchesHighLevel)
{
    using transpim::LLutFixed;
    using transpim::Placement;
    constexpr double kTwoPi = 6.283185307179586;
    constexpr uint32_t n = 256;

    LLutFixed lut([](double x) { return std::sin(x); }, 0.0, kTwoPi,
                  2048, true, Placement::Host);
    int shift = Fixed::fracBits - lut.densityLog2();

    // Layout: table at 0, inputs after it, outputs after that.
    DpuCore dpu;
    const auto& entries = lut.hostEntries();
    uint32_t tblBytes = static_cast<uint32_t>(entries.size()) * 4;
    std::memcpy(dpu.wramData(), entries.data(), tblBytes);
    uint32_t inp = tblBytes;
    uint32_t out = inp + n * 4;

    std::vector<int32_t> inputs(n);
    for (uint32_t i = 0; i < n; ++i) {
        double x = kTwoPi * (i + 0.37) / n;
        inputs[i] = Fixed::fromDouble(x).raw();
    }
    std::memcpy(dpu.wramData() + inp, inputs.data(), n * 4);

    std::string src = kLLutKernel;
    src = subst(src, "@N", n);
    src = subst(src, "@PRAW", 0); // table starts at 0.0
    src = subst(src, "@MASK", (1 << shift) - 1);
    src = subst(src, "@SHIFTC", 32 - shift);
    src = subst(src, "@SHIFT", shift);
    src = subst(src, "@INP", inp);
    src = subst(src, "@TBLN", 4); // l1 offset = table base + 4
    src = subst(src, "@TBL", 0);
    src = subst(src, "@OUT", out);
    Program prog = assemble(src);

    LaunchStats asmStats;
    dpu.launch(1, [&](TaskletContext& ctx) { execute(prog, ctx); });
    asmStats = dpu.lastLaunch();

    // Outputs must match the high-level evalFixed bit for bit.
    CountingSink hlCost;
    for (uint32_t i = 0; i < n; ++i) {
        int32_t asmOut;
        std::memcpy(&asmOut, dpu.wramData() + out + 4 * i, 4);
        Fixed expect =
            lut.evalFixed(Fixed::fromRaw(inputs[i]), &hlCost);
        ASSERT_EQ(expect.raw(), asmOut) << "element " << i;
    }

    // And the high-level charge must track the instruction-by-
    // instruction count (within a band covering loop overhead).
    double asmPerElem =
        static_cast<double>(asmStats.totalInstructions) / n;
    double hlPerElem = static_cast<double>(hlCost.total()) / n;
    EXPECT_GT(hlPerElem, 0.5 * asmPerElem);
    EXPECT_LT(hlPerElem, 1.6 * asmPerElem);
}

TEST(CostModelValidation, FixedCordicKernelMatchesHighLevel)
{
    using transpim::CordicFixedEngine;
    using transpim::CordicMode;
    using transpim::Placement;
    constexpr uint32_t iters = 24;

    CordicFixedEngine eng(CordicMode::Circular, iters, Placement::Host);

    // Angle table into WRAM at 0 (circular schedule: shift k = index).
    DpuCore dpu;
    std::vector<int32_t> angles(iters);
    for (uint32_t k = 0; k < iters; ++k) {
        angles[k] = Fixed::fromDouble(
                        std::atan(std::ldexp(1.0, -(int)k)))
                        .raw();
    }
    std::memcpy(dpu.wramData(), angles.data(), iters * 4);

    for (double z : {0.1, 0.5, 1.0, 1.4}) {
        std::string src = kCordicKernel;
        src = subst(src, "@Z0", Fixed::fromDouble(z).raw());
        src = subst(src, "@INVGAIN", eng.invGain().raw());
        src = subst(src, "@NITER", iters);
        src = subst(src, "@ATBL", 0);
        Program prog = assemble(src);

        ExecResult res;
        dpu.launch(1, [&](TaskletContext& ctx) {
            res = execute(prog, ctx);
        });

        CountingSink hlCost;
        auto hl = eng.rotate(Fixed::fromDouble(z), &hlCost);
        EXPECT_EQ(hl.x.raw(), res.registers[2]) << z;
        EXPECT_EQ(hl.y.raw(), res.registers[3]) << z;

        double asmInstr = static_cast<double>(res.instructionsExecuted);
        EXPECT_GT(static_cast<double>(hlCost.total()),
                  0.5 * asmInstr);
        EXPECT_LT(static_cast<double>(hlCost.total()),
                  1.6 * asmInstr);
    }
}

} // namespace
} // namespace sim
} // namespace tpl
