/**
 * @file
 * pimfault framework tests: plan text round-trip, the zero-
 * perturbation invariant (an armed plan that never fires leaves every
 * modeled statistic bit-identical to no plan), every fault kind
 * firing and being detected or recovered, retry/backoff semantics,
 * and the headline acceptance scenario — 64 DPUs with 5% injected
 * hard failures completing via masking + re-shard within the error-
 * model bound.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "pimsim/fault/fault.h"
#include "pimsim/obs/metrics.h"
#include "pimsim/system.h"
#include "transpim/harness.h"

namespace {

using namespace tpl;
using namespace tpl::sim;
using namespace tpl::transpim;

// ---------------------------------------------------------------------
// Shared workload: scatter, one chunked DMA kernel, gather.
// ---------------------------------------------------------------------

struct WorkloadResult
{
    std::vector<LaunchStats> stats; ///< per-DPU, post-launch
    std::vector<float> outputs;
    double seconds = 0.0; ///< scatter + launch + gather, modeled
};

constexpr uint32_t kChunk = 64;

WorkloadResult
runWorkload(PimSystem& sys, uint32_t perDpu = 512)
{
    const uint32_t n = sys.numDpus();
    const uint32_t bytes = perDpu * sizeof(float);
    uint32_t inAddr = 0, outAddr = 0;
    for (uint32_t i = 0; i < n; ++i) {
        sys.dpu(i).resetAllocators();
        inAddr = sys.dpu(i).mramAlloc(bytes);
        outAddr = sys.dpu(i).mramAlloc(bytes);
    }
    std::vector<float> inputs =
        uniformFloats(perDpu * n, -1.0f, 1.0f, 99);

    WorkloadResult r;
    r.seconds = sys.scatterToMram(inAddr, inputs.data(), bytes);
    r.seconds += sys.launchAll(4, [&](TaskletContext& ctx) {
        float buf[kChunk];
        uint32_t chunks = perDpu / kChunk;
        for (uint32_t c = ctx.taskletId(); c < chunks;
             c += ctx.numTasklets()) {
            ctx.mramRead(inAddr + c * kChunk * sizeof(float), buf,
                         kChunk * sizeof(float));
            for (uint32_t i = 0; i < kChunk; ++i) {
                ctx.charge(3);
                buf[i] = buf[i] * 0.5f + 1.0f;
            }
            ctx.mramWrite(outAddr + c * kChunk * sizeof(float), buf,
                          kChunk * sizeof(float));
        }
    });
    r.outputs.assign(perDpu * n, 0.0f);
    r.seconds += sys.gatherFromMram(outAddr, r.outputs.data(), bytes);
    for (uint32_t i = 0; i < n; ++i)
        r.stats.push_back(sys.dpu(i).lastLaunch());
    return r;
}

void
expectStatsEqual(const LaunchStats& a, const LaunchStats& b,
                 const std::string& label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.totalInstructions, b.totalInstructions) << label;
    EXPECT_EQ(a.maxTaskletWork, b.maxTaskletWork) << label;
    EXPECT_EQ(a.dmaEngineCycles, b.dmaEngineCycles) << label;
    EXPECT_EQ(a.dmaBytes, b.dmaBytes) << label;
    EXPECT_EQ(a.stallCycles, b.stallCycles) << label;
    EXPECT_EQ(a.tasklets, b.tasklets) << label;
    EXPECT_EQ(a.energyJoules, b.energyJoules) << label;
    EXPECT_EQ(a.failed, b.failed) << label;
    EXPECT_EQ(a.faultEvents, b.faultEvents) << label;
    for (int c = 0; c < numInstrClasses; ++c)
        EXPECT_EQ(a.classInstructions[c], b.classInstructions[c])
            << label << " class " << c;
}

// ---------------------------------------------------------------------
// FaultPlan text form.
// ---------------------------------------------------------------------

TEST(FaultPlan, TextRoundTripIsExact)
{
    fault::FaultPlan plan;
    plan.seed = 0xdeadbeef;
    fault::FaultSpec stuck;
    stuck.kind = fault::FaultKind::MramStuckBit;
    stuck.dpu = 0;
    stuck.addr = 1024;
    stuck.bit = 3;
    stuck.stuckValue = true;
    plan.faults.push_back(stuck);
    fault::FaultSpec hard;
    hard.kind = fault::FaultKind::DpuHardFail;
    hard.dpu = -1;
    hard.probability = 0.05;
    plan.faults.push_back(hard);
    fault::FaultSpec strag;
    strag.kind = fault::FaultKind::DpuStraggler;
    strag.probability = 0.25;
    strag.slowdown = 3.5;
    plan.faults.push_back(strag);
    fault::FaultSpec dma;
    dma.kind = fault::FaultKind::DmaTimeout;
    dma.probability = 0.001;
    dma.extraStallCycles = 12345;
    plan.faults.push_back(dma);
    fault::FaultSpec flip;
    flip.kind = fault::FaultKind::WramBitFlip;
    flip.dpu = 2;
    flip.addr = 16;
    flip.bit = 7;
    flip.triggerAfter = 4;
    plan.faults.push_back(flip);

    std::string text = plan.toText();
    std::string error;
    auto parsed = fault::FaultPlan::parse(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->seed, plan.seed);
    ASSERT_EQ(parsed->faults.size(), plan.faults.size());
    EXPECT_EQ(parsed->toText(), text); // canonical fixed point
    EXPECT_EQ(parsed->faults[2].slowdown, 3.5);
    EXPECT_EQ(parsed->faults[3].extraStallCycles, 12345u);
    EXPECT_EQ(parsed->faults[4].triggerAfter, 4u);
}

TEST(FaultPlan, ParseAcceptsCommentsAndWildcardDpu)
{
    std::string error;
    auto plan = fault::FaultPlan::parse("# scenario\n"
                                        "seed 42\n"
                                        "\n"
                                        "fault kind=dpu-hard-fail"
                                        " dpu=* prob=0.5\n",
                                        &error);
    ASSERT_TRUE(plan.has_value()) << error;
    EXPECT_EQ(plan->seed, 42u);
    ASSERT_EQ(plan->faults.size(), 1u);
    EXPECT_EQ(plan->faults[0].dpu, -1);
}

TEST(FaultPlan, ParseRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(fault::FaultPlan::parse("fault kind=no-such-kind\n",
                                         &error)
                     .has_value());
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
    EXPECT_FALSE(
        fault::FaultPlan::parse("fault kind=dma-corrupt prob=1.5\n")
            .has_value());
    EXPECT_FALSE(
        fault::FaultPlan::parse(
            "fault kind=mram-stuck-bit addr=0 bit=9\n")
            .has_value());
    EXPECT_FALSE(fault::FaultPlan::parse("bogus directive\n")
                     .has_value());
    EXPECT_FALSE(fault::FaultPlan::parse("fault\n").has_value());
}

TEST(FaultPlan, KindSlugsRoundTrip)
{
    for (int k = 0; k <= static_cast<int>(
                        fault::FaultKind::TransferCorrupt);
         ++k) {
        fault::FaultKind kind = static_cast<fault::FaultKind>(k);
        auto back = fault::kindFromSlug(fault::kindSlug(kind));
        ASSERT_TRUE(back.has_value()) << fault::kindSlug(kind);
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(fault::kindFromSlug("not-a-kind").has_value());
}

// ---------------------------------------------------------------------
// Zero-perturbation invariant.
// ---------------------------------------------------------------------

TEST(FaultZeroPerturbation, ArmedZeroProbabilityPlanIsBitIdentical)
{
    PimSystem clean(4);
    WorkloadResult base = runWorkload(clean);

    // A plan covering every probabilistic kind, all at probability 0.
    fault::FaultPlan plan;
    plan.seed = 123;
    for (fault::FaultKind kind :
         {fault::FaultKind::MramBitFlip, fault::FaultKind::WramBitFlip,
          fault::FaultKind::DmaCorrupt, fault::FaultKind::DmaTimeout,
          fault::FaultKind::DpuHardFail,
          fault::FaultKind::DpuStraggler,
          fault::FaultKind::TransferTimeout,
          fault::FaultKind::TransferCorrupt}) {
        fault::FaultSpec s;
        s.kind = kind;
        s.probability = 0.0;
        plan.faults.push_back(s);
    }

    PimSystem armed(4);
    armed.armFaults(plan);
    WorkloadResult faulted = runWorkload(armed);

    EXPECT_EQ(base.seconds, faulted.seconds);
    EXPECT_EQ(base.outputs, faulted.outputs);
    for (uint32_t i = 0; i < 4; ++i)
        expectStatsEqual(base.stats[i], faulted.stats[i],
                         "dpu " + std::to_string(i));
    EXPECT_EQ(armed.lastLaunchReport().attempted, 4u);
    EXPECT_TRUE(armed.lastLaunchReport().failedDpus.empty());
}

TEST(FaultZeroPerturbation, EmptyPlanIsBitIdentical)
{
    PimSystem clean(2);
    WorkloadResult base = runWorkload(clean);

    PimSystem armed(2);
    armed.armFaults(fault::FaultPlan{});
    WorkloadResult faulted = runWorkload(armed);

    EXPECT_EQ(base.seconds, faulted.seconds);
    EXPECT_EQ(base.outputs, faulted.outputs);
    for (uint32_t i = 0; i < 2; ++i)
        expectStatsEqual(base.stats[i], faulted.stats[i],
                         "dpu " + std::to_string(i));
}

TEST(FaultZeroPerturbation, ReplaySameSeedIsBitIdentical)
{
    fault::FaultPlan plan;
    plan.seed = 2026;
    fault::FaultSpec hard;
    hard.kind = fault::FaultKind::DpuHardFail;
    hard.probability = 0.25;
    plan.faults.push_back(hard);
    fault::FaultSpec strag;
    strag.kind = fault::FaultKind::DpuStraggler;
    strag.probability = 0.25;
    plan.faults.push_back(strag);
    fault::FaultSpec corrupt;
    corrupt.kind = fault::FaultKind::DmaCorrupt;
    corrupt.probability = 0.01;
    plan.faults.push_back(corrupt);

    PimSystem a(8), b(8);
    a.armFaults(plan);
    b.armFaults(plan);
    WorkloadResult ra = runWorkload(a);
    WorkloadResult rb = runWorkload(b);
    EXPECT_EQ(ra.seconds, rb.seconds);
    EXPECT_EQ(ra.outputs, rb.outputs);
    for (uint32_t i = 0; i < 8; ++i)
        expectStatsEqual(ra.stats[i], rb.stats[i],
                         "dpu " + std::to_string(i));
    EXPECT_EQ(a.lastLaunchReport().failedDpus,
              b.lastLaunchReport().failedDpus);
}

// ---------------------------------------------------------------------
// Memory-cell faults.
// ---------------------------------------------------------------------

TEST(FaultMemory, MramStuckBitReassertsAfterEveryWrite)
{
    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::MramStuckBit;
    s.dpu = 0;
    s.addr = 12;
    s.bit = 5;
    s.stuckValue = true;
    plan.faults.push_back(s);

    PimSystem sys(1);
    sys.armFaults(plan);
    std::vector<uint8_t> zeros(64, 0);
    sys.dpu(0).hostWriteMram(0, zeros.data(), 64);
    uint8_t byte = 0;
    sys.dpu(0).hostReadMram(12, &byte, 1);
    EXPECT_EQ(byte, 1u << 5); // stuck-at-1 asserted

    // Rewriting the region cannot clear a stuck cell.
    sys.dpu(0).hostWriteMram(0, zeros.data(), 64);
    sys.dpu(0).hostReadMram(12, &byte, 1);
    EXPECT_EQ(byte, 1u << 5);

    // Stuck-at-0 holds a set bit down too.
    fault::FaultPlan plan0;
    fault::FaultSpec z = s;
    z.stuckValue = false;
    plan0.faults.push_back(z);
    PimSystem sys0(1);
    sys0.armFaults(plan0);
    std::vector<uint8_t> ones(64, 0xff);
    sys0.dpu(0).hostWriteMram(0, ones.data(), 64);
    sys0.dpu(0).hostReadMram(12, &byte, 1);
    EXPECT_EQ(byte, 0xff & ~(1u << 5));
}

TEST(FaultMemory, WramStuckBitAsserted)
{
    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::WramStuckBit;
    s.dpu = 0;
    s.addr = 8;
    s.bit = 0;
    s.stuckValue = true;
    plan.faults.push_back(s);

    PimSystem sys(1);
    sys.armFaults(plan);
    std::vector<uint8_t> zeros(16, 0);
    sys.dpu(0).hostWriteWram(0, zeros.data(), 16);
    uint8_t byte = 0;
    sys.dpu(0).hostReadWram(8, &byte, 1);
    EXPECT_EQ(byte, 1u);
}

TEST(FaultMemory, MramBitFlipFiresOnceAtTriggerLaunch)
{
    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::MramBitFlip;
    s.dpu = 0;
    s.addr = 4;
    s.bit = 7;
    s.triggerAfter = 1; // second launch
    plan.faults.push_back(s);

    PimSystem sys(1);
    sys.armFaults(plan);
    std::vector<uint8_t> zeros(16, 0);
    sys.dpu(0).hostWriteMram(0, zeros.data(), 16);
    Kernel nop = [](TaskletContext&) {};

    sys.dpu(0).launch(1, nop); // launch 0: before the trigger
    uint8_t byte = 0;
    sys.dpu(0).hostReadMram(4, &byte, 1);
    EXPECT_EQ(byte, 0u);

    LaunchStats st = sys.dpu(0).launch(1, nop); // launch 1: flips
    sys.dpu(0).hostReadMram(4, &byte, 1);
    EXPECT_EQ(byte, 1u << 7);
    EXPECT_GE(st.faultEvents, 1u);

    sys.dpu(0).launch(1, nop); // one-shot: does not flip back
    sys.dpu(0).hostReadMram(4, &byte, 1);
    EXPECT_EQ(byte, 1u << 7);
}

// ---------------------------------------------------------------------
// DMA faults.
// ---------------------------------------------------------------------

TEST(FaultDma, CorruptPerturbsDataAndCounts)
{
    PimSystem clean(1);
    WorkloadResult base = runWorkload(clean, 256);

    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::DmaCorrupt;
    s.probability = 1.0; // every DMA
    plan.faults.push_back(s);
    PimSystem sys(1);
    sys.armFaults(plan);
    WorkloadResult faulted = runWorkload(sys, 256);

    EXPECT_NE(base.outputs, faulted.outputs);
    EXPECT_GT(faulted.stats[0].faultEvents, 0u);
    // Corruption is silent: the cycle model is untouched.
    EXPECT_EQ(base.stats[0].cycles, faulted.stats[0].cycles);
}

TEST(FaultDma, TimeoutAddsStallCyclesExactly)
{
    PimSystem clean(1);
    WorkloadResult base = runWorkload(clean, 256);

    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::DmaTimeout;
    s.probability = 1.0;
    s.extraStallCycles = 5000;
    plan.faults.push_back(s);
    PimSystem sys(1);
    sys.armFaults(plan);
    WorkloadResult faulted = runWorkload(sys, 256);

    EXPECT_GT(faulted.stats[0].cycles, base.stats[0].cycles);
    EXPECT_GT(faulted.stats[0].stallCycles,
              base.stats[0].stallCycles);
    // Data is intact — a timed-out DMA is late, not wrong.
    EXPECT_EQ(base.outputs, faulted.outputs);
    // The exact cycle partition survives the injected stalls.
    EXPECT_EQ(faulted.stats[0].stallCycles +
                  faulted.stats[0].totalInstructions,
              faulted.stats[0].cycles);
}

// ---------------------------------------------------------------------
// Core faults: hard failure, straggler, launch timeout.
// ---------------------------------------------------------------------

TEST(FaultCore, HardFailMasksCoreAndReports)
{
    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::DpuHardFail;
    s.dpu = 1;
    plan.faults.push_back(s);

    PimSystem sys(4);
    sys.armFaults(plan);
    WorkloadResult r = runWorkload(sys);

    EXPECT_TRUE(r.stats[1].failed);
    EXPECT_EQ(r.stats[1].cycles, 0u);
    const LaunchReport& rep = sys.lastLaunchReport();
    ASSERT_EQ(rep.failedDpus.size(), 1u);
    EXPECT_EQ(rep.failedDpus[0], 1u);
    EXPECT_EQ(rep.attempted, 4u);
    EXPECT_TRUE(sys.isMasked(1));
    EXPECT_EQ(sys.healthyDpus(), 3u);

    // Next launch skips the dead core.
    sys.launchAll(2, [](TaskletContext& ctx) { ctx.charge(10); });
    EXPECT_EQ(sys.lastLaunchReport().masked, 1u);
    EXPECT_EQ(sys.lastLaunchReport().attempted, 3u);
    EXPECT_TRUE(sys.lastLaunchReport().failedDpus.empty());
}

TEST(FaultCore, StragglerMultipliesCycles)
{
    PimSystem clean(2);
    WorkloadResult base = runWorkload(clean);

    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::DpuStraggler;
    s.dpu = 0;
    s.slowdown = 4.0;
    plan.faults.push_back(s);
    PimSystem sys(2);
    sys.armFaults(plan);
    WorkloadResult faulted = runWorkload(sys);

    EXPECT_EQ(faulted.stats[0].cycles, base.stats[0].cycles * 4);
    expectStatsEqual(base.stats[1], faulted.stats[1], "healthy dpu");
    // The stretch lands in the stall residual: partition stays exact.
    EXPECT_EQ(faulted.stats[0].stallCycles +
                  faulted.stats[0].totalInstructions,
              faulted.stats[0].cycles);
}

TEST(FaultCore, LaunchTimeoutFencesStraggler)
{
    PimSystem probe(2);
    WorkloadResult base = runWorkload(probe);
    uint64_t healthyCycles = base.stats[0].cycles;

    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::DpuStraggler;
    s.dpu = 0;
    s.slowdown = 100.0;
    plan.faults.push_back(s);

    PimSystem sys(2);
    sys.armFaults(plan);
    RetryPolicy policy;
    policy.launchTimeoutCycles = healthyCycles * 2;
    sys.setRetryPolicy(policy);
    runWorkload(sys);

    const LaunchReport& rep = sys.lastLaunchReport();
    ASSERT_EQ(rep.failedDpus.size(), 1u);
    EXPECT_EQ(rep.failedDpus[0], 0u);
    EXPECT_TRUE(sys.isMasked(0));
    // The host stops waiting at the fence: the slowest *counted*
    // core is capped at the timeout.
    EXPECT_LE(rep.maxCycles, healthyCycles * 2);
}

// ---------------------------------------------------------------------
// Host<->DPU transfer faults and the retry policy.
// ---------------------------------------------------------------------

TEST(FaultTransfer, PermanentTimeoutExhaustsRetriesAndMasks)
{
    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::TransferTimeout;
    s.dpu = 0;
    s.probability = 1.0; // every attempt times out
    plan.faults.push_back(s);

    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    reg.setEnabled(true);
    PimSystem sys(2);
    sys.armFaults(plan);
    WorkloadResult r = runWorkload(sys);
    reg.setEnabled(false);

    EXPECT_TRUE(sys.isMasked(0));
    EXPECT_FALSE(sys.isMasked(1));
    EXPECT_GE(reg.counter("fault/transfer/retries").value(), 3u);
    EXPECT_GE(reg.counter("fault/transfer/failures").value(), 1u);
    // The dead leg never delivered: DPU 0's output region is still
    // the gather buffer's initial zeros.
    for (uint32_t i = 0; i < 512; ++i)
        EXPECT_EQ(r.outputs[i], 0.0f) << i;
}

TEST(FaultTransfer, OccasionalTimeoutIsRetriedSuccessfully)
{
    fault::FaultPlan plan;
    plan.seed = 5;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::TransferTimeout;
    s.probability = 0.4;
    plan.faults.push_back(s);

    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    reg.setEnabled(true);
    PimSystem clean(8);
    WorkloadResult base = runWorkload(clean);
    PimSystem sys(8);
    RetryPolicy policy;
    policy.maxTransferRetries = 8; // ample headroom at p=0.4
    sys.setRetryPolicy(policy);
    sys.armFaults(plan);
    WorkloadResult r = runWorkload(sys);
    reg.setEnabled(false);

    // With p=0.4 per attempt and 9 attempts per leg over 24 legs the
    // deterministic draws retry at least once and recover everywhere
    // (locked by the fixed seed).
    EXPECT_GE(reg.counter("fault/transfer/retries").value(), 1u);
    EXPECT_EQ(reg.counter("fault/transfer/failures").value(), 0u);
    EXPECT_EQ(sys.healthyDpus(), 8u);
    EXPECT_EQ(base.outputs, r.outputs); // retries delivered the data
    EXPECT_GT(r.seconds, base.seconds); // backoff + re-stream cost
}

TEST(FaultTransfer, UndetectedCorruptionFlipsHostData)
{
    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::TransferCorrupt;
    s.dpu = 0;
    s.probability = 1.0;
    plan.faults.push_back(s);

    PimSystem clean(2);
    WorkloadResult base = runWorkload(clean);

    PimSystem sys(2);
    RetryPolicy policy;
    policy.detectTransferCorruption = false; // no CRC on this runtime
    sys.setRetryPolicy(policy);
    sys.armFaults(plan);
    WorkloadResult r = runWorkload(sys);

    EXPECT_FALSE(sys.isMasked(0)); // silent: the leg "succeeded"
    EXPECT_NE(base.outputs, r.outputs);
}

TEST(FaultTransfer, DetectedCorruptionExhaustsRetries)
{
    fault::FaultPlan plan;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::TransferCorrupt;
    s.dpu = 0;
    s.probability = 1.0; // every attempt corrupt -> retries exhaust
    plan.faults.push_back(s);

    PimSystem sys(2);
    sys.armFaults(plan);
    runWorkload(sys);
    EXPECT_TRUE(sys.isMasked(0));
}

// ---------------------------------------------------------------------
// Acceptance: 64 DPUs, 5% hard failures, re-shard to completion.
// ---------------------------------------------------------------------

TEST(FaultAcceptance, SixtyFourDpusWithFivePercentHardFailures)
{
    fault::FaultPlan plan;
    plan.seed = 11;
    fault::FaultSpec s;
    s.kind = fault::FaultKind::DpuHardFail;
    s.dpu = -1; // every core draws
    s.probability = 0.05;
    plan.faults.push_back(s);

    MethodSpec spec; // interpolated L-LUT in WRAM
    spec.log2Entries = 10;
    ResilientOptions opts;
    opts.elements = 1u << 12;
    opts.dpus = 64;
    opts.tasklets = 4;
    opts.plan = plan;

    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    reg.setEnabled(true);
    ResilientResult res =
        runResilientMicrobench(Function::Sin, spec, opts);
    reg.setEnabled(false);

    ASSERT_TRUE(res.feasible);
    EXPECT_TRUE(res.run.complete);
    EXPECT_TRUE(res.withinErrorBound)
        << "rmse " << res.error.rmse << " predicted "
        << res.predictedRmse;
    // The seed fires the 5% hard-fail draw on at least one core, so
    // degradation actually happened and was recovered from.
    EXPECT_GE(res.run.failedDpus.size(), 1u);
    EXPECT_LT(res.run.failedDpus.size(), 32u);
    EXPECT_GE(res.run.waves, 2u);
    EXPECT_GT(res.run.reshardedElements, 0u);
    EXPECT_EQ(res.healthyDpus,
              res.totalDpus -
                  static_cast<uint32_t>(res.run.failedDpus.size()));
    // Failure surfaced in the obs registry under fault/...
    EXPECT_GE(reg.counter("fault/launch/failed").value(), 1u);
    EXPECT_GE(reg.counter("fault/shard/resharded_elements").value(),
              res.run.reshardedElements);
}

TEST(FaultAcceptance, ResilientRunWithoutPlanIsOneCleanWave)
{
    MethodSpec spec;
    spec.log2Entries = 10;
    ResilientOptions opts;
    opts.elements = 1u << 10;
    opts.dpus = 8;
    opts.tasklets = 4;

    ResilientResult res =
        runResilientMicrobench(Function::Sin, spec, opts);
    ASSERT_TRUE(res.feasible);
    EXPECT_TRUE(res.run.complete);
    EXPECT_EQ(res.run.waves, 1u);
    EXPECT_TRUE(res.run.failedDpus.empty());
    EXPECT_EQ(res.run.reshardedElements, 0u);
    EXPECT_EQ(res.run.transferRetries, 0u);
    EXPECT_TRUE(res.withinErrorBound);
    EXPECT_EQ(res.healthyDpus, 8u);
}

} // namespace
