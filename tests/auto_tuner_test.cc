/**
 * @file
 * Online auto-tuner conformance tier: the TenantSla grammar, the
 * PipelineOptions::autoTuner kill switch (nullptr — and an attached
 * tuner with no constrained tenants — reproduce the untuned pipeline
 * bit-for-bit, journal bytes included), determinism of tuned runs
 * across simulation thread counts, the core win (a tuned stream
 * commits to a cheaper configuration that still meets its SLA),
 * per-tenant wave separation, and MRAM-budget arbitration.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pimsim/obs/journal.h"
#include "pimsim/serve/pipeline.h"
#include "transpim/auto_tuner.h"
#include "transpim/harness.h"
#include "transpim/serve_glue.h"

using namespace tpl;
using namespace tpl::sim;
using namespace tpl::transpim;

namespace {

/** One synthetic request. */
struct Req
{
    Function fn = Function::Sin;
    Method method = Method::Cordic;
    uint32_t elements = 0;
    uint64_t tenant = 0;
};

struct TunedRun
{
    serve::ServeReport rep;
    std::vector<float> out;
    std::string journal; ///< full event stream (JSONL)
    std::vector<StreamReport> streams;
    std::vector<serve::TuneDecision> decisions;
};

/** Replay @p reqs through one ServePipeline on a fresh system, with
 * or without an OnlineAutoTuner attached. Inputs are a fixed
 * deterministic pattern so outputs are comparable across runs. */
TunedRun
runTuned(const std::vector<Req>& reqs, bool useTuner,
         const std::map<uint64_t, serve::TenantSla>& slas,
         uint32_t simThreads = 0, uint64_t exploreElements = 512,
         uint64_t mramBudgetBytes = 0, uint32_t dpus = 8,
         uint32_t perDpuElements = 64)
{
    PimSystem sys(dpus);
    if (simThreads)
        sys.setSimThreads(simThreads);
    EvaluatorCatalog catalog;

    uint64_t total = 0;
    for (const Req& r : reqs)
        total += r.elements;
    std::vector<float> in(total);
    for (uint64_t i = 0; i < total; ++i)
        in[i] = 0.001f +
                0.9f * static_cast<float>((i * 37) % 1000) / 1000.0f;
    TunedRun res;
    res.out.assign(total, 0.0f);

    obs::Journal journal;
    serve::BatchQueue queue;
    queue.setJournal(&journal);
    uint64_t off = 0;
    for (const Req& r : reqs) {
        MethodSpec spec;
        spec.method = r.method;
        serve::Request q;
        q.table = catalog.add(r.fn, spec);
        q.input = in.data() + off;
        q.output = res.out.data() + off;
        q.elements = r.elements;
        q.tenant = r.tenant;
        queue.push(q);
        off += r.elements;
    }
    queue.close();

    std::optional<OnlineAutoTuner> tuner;
    if (useTuner) {
        AutoTunerOptions topts;
        topts.exploreElements = exploreElements;
        topts.mramBudgetBytes = mramBudgetBytes;
        tuner.emplace(catalog, topts);
        for (const auto& [tenant, sla] : slas)
            tuner->setTenantSla(tenant, sla);
    }

    serve::PipelineOptions popts;
    popts.numTasklets = 8;
    popts.perDpuElements = perDpuElements;
    popts.journal = &journal;
    if (tuner)
        popts.autoTuner = &*tuner;
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);
    res.rep = pipeline.run(queue);
    res.journal = journal.toJsonl();
    if (tuner) {
        res.streams = tuner->streamReports();
        res.decisions = tuner->decisions();
    }
    return res;
}

/** @p requests identical requests for one (fn, method, tenant). */
std::vector<Req>
uniformLoad(uint32_t requests, uint32_t elements, uint64_t tenant,
            Function fn = Function::Sin,
            Method method = Method::Cordic)
{
    std::vector<Req> reqs;
    for (uint32_t i = 0; i < requests; ++i)
        reqs.push_back({fn, method, elements, tenant});
    return reqs;
}

serve::TenantSla
slaOf(const std::string& text)
{
    serve::TenantSla sla;
    EXPECT_TRUE(serve::TenantSla::parse(text, sla)) << text;
    return sla;
}

} // namespace

// ---------------------------------------------------------------------
// The TenantSla grammar.

TEST(TenantSla, ParseSingleClauses)
{
    serve::TenantSla s;
    ASSERT_TRUE(serve::TenantSla::parse("rmse<1e-6", s));
    EXPECT_DOUBLE_EQ(s.maxRmse, 1e-6);
    EXPECT_EQ(s.maxUlp, 0.0);
    EXPECT_EQ(s.maxCyclesPerElement, 0.0);
    EXPECT_TRUE(s.constrained());

    ASSERT_TRUE(serve::TenantSla::parse("ulp<8", s));
    EXPECT_DOUBLE_EQ(s.maxUlp, 8.0);

    // ':' is an accepted separator alongside '<' (SloSpec idiom).
    ASSERT_TRUE(serve::TenantSla::parse("cycles:450", s));
    EXPECT_DOUBLE_EQ(s.maxCyclesPerElement, 450.0);
    EXPECT_EQ(s.cyclesPercentile, 0.0); // mean

    ASSERT_TRUE(serve::TenantSla::parse("cycles:p99<600", s));
    EXPECT_DOUBLE_EQ(s.maxCyclesPerElement, 600.0);
    EXPECT_DOUBLE_EQ(s.cyclesPercentile, 99.0);
}

TEST(TenantSla, ParseMultiClauseAndRoundTrip)
{
    serve::TenantSla s;
    ASSERT_TRUE(
        serve::TenantSla::parse("rmse<1e-6;cycles:p99<600", s));
    EXPECT_DOUBLE_EQ(s.maxRmse, 1e-6);
    EXPECT_DOUBLE_EQ(s.maxCyclesPerElement, 600.0);
    EXPECT_DOUBLE_EQ(s.cyclesPercentile, 99.0);

    // toText round-trips through parse for every clause shape.
    for (const char* text :
         {"rmse<1e-06", "ulp<8", "cycles<450", "cycles:p99<600",
          "rmse<0.001;ulp<16;cycles:p50<1200"}) {
        serve::TenantSla a;
        ASSERT_TRUE(serve::TenantSla::parse(text, a)) << text;
        serve::TenantSla b;
        ASSERT_TRUE(serve::TenantSla::parse(a.toText(), b))
            << a.toText();
        EXPECT_DOUBLE_EQ(a.maxRmse, b.maxRmse);
        EXPECT_DOUBLE_EQ(a.maxUlp, b.maxUlp);
        EXPECT_DOUBLE_EQ(a.maxCyclesPerElement,
                         b.maxCyclesPerElement);
        EXPECT_DOUBLE_EQ(a.cyclesPercentile, b.cyclesPercentile);
    }
}

TEST(TenantSla, MalformedInputsRejectedAndLeaveOutputUntouched)
{
    for (const char* text :
         {"", "rmse", "rmse<", "rmse<abc", "rmse<0", "rmse<-1",
          "bogus<1", "rmse<1e-6;", "rmse<1e-6;;ulp<8",
          "rmse<1e-6 ulp<8", "rmse<1e-6;rmse<1e-7", // duplicate
          "cycles:p0<5", "cycles:p100<5", "cycles:p<5",
          "ulp:p99<5"}) { // percentile is cycles-only
        serve::TenantSla out;
        out.maxRmse = 42.0;
        EXPECT_FALSE(serve::TenantSla::parse(text, out)) << text;
        EXPECT_DOUBLE_EQ(out.maxRmse, 42.0) << text;
    }
    serve::TenantSla none;
    EXPECT_FALSE(none.constrained());
}

// ---------------------------------------------------------------------
// The kill switch: PipelineOptions::autoTuner == nullptr is the
// untuned pipeline, bit-identical at any TPL_SIM_THREADS — journal
// bytes included. An attached tuner with no constrained tenants must
// be indistinguishable from no tuner at all.

TEST(AutoTunerKillSwitch, NullTunerBitIdenticalAcrossSimThreads)
{
    std::vector<Req> reqs = uniformLoad(12, 160, 1);
    std::optional<TunedRun> ref;
    for (uint32_t threads : {1u, 4u, 16u}) {
        TunedRun res = runTuned(reqs, false, {}, threads);
        ASSERT_TRUE(res.rep.complete);
        if (!ref) {
            ref = std::move(res);
            continue;
        }
        EXPECT_EQ(res.rep.modeledSeconds, ref->rep.modeledSeconds);
        EXPECT_EQ(res.rep.computeCycles, ref->rep.computeCycles);
        EXPECT_EQ(std::memcmp(res.out.data(), ref->out.data(),
                              ref->out.size() * sizeof(float)),
                  0);
        EXPECT_EQ(res.journal, ref->journal);
    }
}

TEST(AutoTunerKillSwitch, UnconstrainedTunerMatchesNullTunerBitExactly)
{
    std::vector<Req> reqs = uniformLoad(10, 200, 1);
    TunedRun off = runTuned(reqs, false, {});
    // Tuner attached, but no tenant has an SLA: every stream is
    // untunable and passes through.
    TunedRun on = runTuned(reqs, true, {});
    ASSERT_TRUE(off.rep.complete);
    ASSERT_TRUE(on.rep.complete);
    EXPECT_EQ(on.rep.modeledSeconds, off.rep.modeledSeconds);
    EXPECT_EQ(on.rep.syncSeconds, off.rep.syncSeconds);
    EXPECT_EQ(on.rep.computeCycles, off.rep.computeCycles);
    EXPECT_EQ(on.rep.waves, off.rep.waves);
    EXPECT_EQ(std::memcmp(on.out.data(), off.out.data(),
                          off.out.size() * sizeof(float)),
              0);
    EXPECT_EQ(on.journal, off.journal); // no tune events, same bytes
    EXPECT_TRUE(on.decisions.empty());
    for (const StreamReport& s : on.streams)
        EXPECT_FALSE(s.tunable);
}

// ---------------------------------------------------------------------
// The core win: a stream whose SLA admits a cheaper configuration
// commits to one, spends fewer modeled cycles than the requested
// configuration would, and keeps its observed error inside the SLA.

TEST(OnlineTuner, CommitsToCheaperConfigMeetingSla)
{
    std::vector<Req> reqs = uniformLoad(40, 200, 1);
    std::map<uint64_t, serve::TenantSla> slas = {
        {1, slaOf("rmse<1e-3")}};
    TunedRun off = runTuned(reqs, false, slas);
    TunedRun on = runTuned(reqs, true, slas);
    ASSERT_TRUE(off.rep.complete);
    ASSERT_TRUE(on.rep.complete);

    // Fewer modeled cycles than replaying the requested config.
    EXPECT_LT(on.rep.computeCycles, off.rep.computeCycles);

    ASSERT_EQ(on.streams.size(), 1u);
    const StreamReport& s = on.streams[0];
    EXPECT_TRUE(s.tunable);
    EXPECT_TRUE(s.committed);
    EXPECT_FALSE(s.slaViolated);
    EXPECT_NE(s.chosen, s.requested); // actually moved off CORDIC
    EXPECT_GT(s.switches, 0u);
    EXPECT_LT(s.rmse, 1e-3); // observed error inside the SLA
    EXPECT_GT(s.elements, 0u);

    // The journey is trace-visible: decisions end in a commit, and
    // the journal carries `tune` events.
    ASSERT_FALSE(on.decisions.empty());
    bool committed = false;
    for (const serve::TuneDecision& d : on.decisions) {
        EXPECT_EQ(d.tenant, 1u);
        if (d.reason == "commit")
            committed = true;
    }
    EXPECT_TRUE(committed);
    EXPECT_NE(on.journal.find("\"kind\": \"tune\""),
              std::string::npos);
}

TEST(OnlineTuner, DeterministicAcrossSimThreadCounts)
{
    std::vector<Req> reqs = uniformLoad(24, 200, 1);
    std::map<uint64_t, serve::TenantSla> slas = {
        {1, slaOf("rmse<1e-3")}};
    std::optional<TunedRun> ref;
    for (uint32_t threads : {1u, 4u, 16u}) {
        TunedRun res = runTuned(reqs, true, slas, threads);
        ASSERT_TRUE(res.rep.complete);
        if (!ref) {
            ref = std::move(res);
            continue;
        }
        EXPECT_EQ(res.rep.modeledSeconds, ref->rep.modeledSeconds);
        EXPECT_EQ(res.rep.computeCycles, ref->rep.computeCycles);
        EXPECT_EQ(res.rep.waves, ref->rep.waves);
        EXPECT_EQ(std::memcmp(res.out.data(), ref->out.data(),
                              ref->out.size() * sizeof(float)),
                  0);
        EXPECT_EQ(res.journal, ref->journal);
        ASSERT_EQ(res.decisions.size(), ref->decisions.size());
        for (size_t i = 0; i < res.decisions.size(); ++i) {
            EXPECT_EQ(res.decisions[i].sequence,
                      ref->decisions[i].sequence);
            EXPECT_EQ(res.decisions[i].toTable,
                      ref->decisions[i].toTable);
            EXPECT_EQ(res.decisions[i].reason,
                      ref->decisions[i].reason);
        }
    }
}

// ---------------------------------------------------------------------
// Per-tenant isolation: tenants never share a wave, each
// (tenant, requested-table) pair is its own stream, and a tenant
// without an SLA rides through untouched next to a tuned one.

TEST(OnlineTuner, TenantsGetSeparateStreamsAndWaves)
{
    // Two tenants, same requested config, interleaved. The load fits
    // one wave's capacity (8 DPUs x 64 = 512 >= 8 x 64 elements), so
    // any wave count above one is tenant separation at work.
    std::vector<Req> reqs;
    for (uint32_t i = 0; i < 8; ++i)
        reqs.push_back(
            {Function::Sin, Method::Cordic, 64, 1 + i % 2});
    std::map<uint64_t, serve::TenantSla> slas = {
        {1, slaOf("rmse<1e-3")}}; // tenant 2: no SLA, untunable
    TunedRun off = runTuned(reqs, false, slas);
    TunedRun on = runTuned(reqs, true, slas);
    ASSERT_TRUE(on.rep.complete);
    EXPECT_GE(on.rep.waves, 2u);

    ASSERT_EQ(on.streams.size(), 2u);
    std::map<uint64_t, const StreamReport*> byTenant;
    for (const StreamReport& s : on.streams)
        byTenant[s.tenant] = &s;
    ASSERT_TRUE(byTenant.count(1));
    ASSERT_TRUE(byTenant.count(2));
    EXPECT_TRUE(byTenant[1]->tunable);
    EXPECT_FALSE(byTenant[2]->tunable);
    EXPECT_EQ(byTenant[2]->chosen, byTenant[2]->requested);
    for (const serve::TuneDecision& d : on.decisions)
        EXPECT_EQ(d.tenant, 1u); // tenant 2 never re-routed

    // The untuned tenant's outputs are bit-identical to the fully
    // untuned run (its spans in the shared buffer are untouched by
    // tenant 1's tuning).
    uint64_t offEl = 0;
    for (const Req& r : reqs) {
        if (r.tenant == 2)
            EXPECT_EQ(std::memcmp(on.out.data() + offEl,
                                  off.out.data() + offEl,
                                  r.elements * sizeof(float)),
                      0);
        offEl += r.elements;
    }
}

// ---------------------------------------------------------------------
// MRAM-budget arbitration: a tight table budget still completes,
// stays deterministic, and never lands a stream on a candidate that
// violates its SLA.

TEST(OnlineTuner, TightMramBudgetCompletesDeterministically)
{
    // Two tunable tenants on different functions: their candidate
    // tables compete for an 8 KiB per-DPU budget.
    std::vector<Req> reqs;
    for (uint32_t i = 0; i < 32; ++i)
        reqs.push_back({i % 2 ? Function::Exp : Function::Sin,
                        Method::Cordic, 200, 1 + i % 2});
    std::map<uint64_t, serve::TenantSla> slas = {
        {1, slaOf("rmse<1e-2")}, {2, slaOf("rmse<1e-2")}};
    std::optional<TunedRun> ref;
    for (uint32_t threads : {1u, 4u, 16u}) {
        TunedRun res =
            runTuned(reqs, true, slas, threads, 512, 8 * 1024);
        ASSERT_TRUE(res.rep.complete);
        for (const StreamReport& s : res.streams)
            EXPECT_FALSE(s.slaViolated);
        if (!ref) {
            ref = std::move(res);
            continue;
        }
        EXPECT_EQ(res.rep.modeledSeconds, ref->rep.modeledSeconds);
        EXPECT_EQ(res.rep.computeCycles, ref->rep.computeCycles);
        EXPECT_EQ(std::memcmp(res.out.data(), ref->out.data(),
                              ref->out.size() * sizeof(float)),
                  0);
        EXPECT_EQ(res.journal, ref->journal);
        ASSERT_EQ(res.decisions.size(), ref->decisions.size());
    }
}
