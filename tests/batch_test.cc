/**
 * @file
 * Batch-vs-scalar identity tier.
 *
 * The batch execution path (FunctionEvaluator::evalBatch, the batched
 * softfloat entry points) must be *observationally identical* to the
 * scalar path: bit-identical outputs and bit-identical accounting —
 * LaunchStats cycles, the per-class instruction partition, operation
 * counts, DMA totals and energy — for every (function, method,
 * placement) combination the support matrix admits, on well-behaved
 * inputs, degenerate sizes (empty, single element, non-multiple of
 * any SIMD lane width) and NaN/Inf-laden inputs, with and without an
 * armed fault plan, at any simulation thread count.
 */

#include <algorithm>
#include <array>
#include <cctype>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pimsim/fault/fault.h"
#include "pimsim/system.h"
#include "softfloat/softfloat.h"
#include "softfloat/softfloat64.h"
#include "softfloat/softfloat_batch.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {
namespace {

using sim::DpuCore;
using sim::LaunchStats;
using sim::PimSystem;
using sim::TaskletContext;

constexpr Function kFunctions[] = {
    Function::Sin,   Function::Cos,    Function::Tan,
    Function::Sinh,  Function::Cosh,   Function::Tanh,
    Function::Exp,   Function::Log,    Function::Sqrt,
    Function::Gelu,  Function::Sigmoid, Function::Cndf,
    Function::Atan,  Function::Asin,   Function::Acos,
    Function::Atanh, Function::Log2,   Function::Log10,
    Function::Exp2,  Function::Rsqrt,  Function::Erf,
    Function::Silu,  Function::Softplus,
};

constexpr Method kMethods[] = {
    Method::Cordic, Method::CordicFixed, Method::CordicLut,
    Method::MLut,   Method::LLut,        Method::LLutFixed,
    Method::DLut,   Method::DlLut,       Method::Poly,
};

/** Small-but-representative spec: quick tables, all paths exercised. */
MethodSpec
smallSpec(Method m, Placement p)
{
    MethodSpec spec;
    spec.method = m;
    spec.placement = p;
    spec.interpolated = true;
    spec.log2Entries = 8;
    spec.iterations = 16;
    spec.gridBits = 6;
    spec.polyDegree = 7;
    return spec;
}

std::string
comboLabel(Function f, const MethodSpec& spec)
{
    return std::string(functionName(f)) + " / " + methodLabel(spec);
}

struct RunResult
{
    std::vector<float> outputs;
    LaunchStats stats;
};

/**
 * The Fig-5 streaming kernel on one core, scalar or batched. A fresh
 * evaluator is created per run (table generation is deterministic, and
 * LutStore binds attached tables to a single core).
 */
RunResult
runStreaming(Function f, const MethodSpec& spec,
             const std::vector<float>& inputs, uint32_t tasklets,
             bool batch)
{
    FunctionEvaluator ev = FunctionEvaluator::create(f, spec);
    DpuCore dpu;
    ev.attach(dpu);

    const uint32_t n = static_cast<uint32_t>(inputs.size());
    const uint32_t bytes = n * sizeof(float);
    uint32_t inAddr = dpu.mramAlloc(bytes ? bytes : 8);
    uint32_t outAddr = dpu.mramAlloc(bytes ? bytes : 8);
    if (bytes)
        dpu.hostWriteMram(inAddr, inputs.data(), bytes);

    RunResult r;
    r.stats = dpu.launch(tasklets, [&](TaskletContext& ctx) {
        constexpr uint32_t chunkElems = 64;
        float buf[chunkElems];
        uint32_t chunks = (n + chunkElems - 1) / chunkElems;
        for (uint32_t c = ctx.taskletId(); c < chunks;
             c += ctx.numTasklets()) {
            uint32_t beg = c * chunkElems;
            uint32_t cnt = std::min(chunkElems, n - beg);
            ctx.mramRead(inAddr + beg * sizeof(float), buf,
                         cnt * sizeof(float));
            if (batch) {
                ctx.chargeClassN(InstrClass::IntAlu, 4, cnt);
                std::span<float> s(buf, cnt);
                ev.evalBatch(s, s, &ctx);
            } else {
                for (uint32_t i = 0; i < cnt; ++i) {
                    ctx.charge(4);
                    buf[i] = ev.eval(buf[i], &ctx);
                }
            }
            ctx.mramWrite(outAddr + beg * sizeof(float), buf,
                          cnt * sizeof(float));
        }
    });
    r.outputs.assign(n, 0.0f);
    if (bytes)
        dpu.hostReadMram(outAddr, r.outputs.data(), bytes);
    return r;
}

/** Full LaunchStats equality, including the per-tasklet breakdown. */
void
expectStatsIdentical(const LaunchStats& a, const LaunchStats& b,
                     const std::string& label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.totalInstructions, b.totalInstructions) << label;
    EXPECT_EQ(a.maxTaskletWork, b.maxTaskletWork) << label;
    EXPECT_EQ(a.dmaEngineCycles, b.dmaEngineCycles) << label;
    EXPECT_EQ(a.dmaBytes, b.dmaBytes) << label;
    EXPECT_EQ(a.stallCycles, b.stallCycles) << label;
    EXPECT_EQ(a.tasklets, b.tasklets) << label;
    EXPECT_EQ(a.energyJoules, b.energyJoules) << label;
    EXPECT_EQ(a.failed, b.failed) << label;
    EXPECT_EQ(a.faultEvents, b.faultEvents) << label;
    for (int c = 0; c < numInstrClasses; ++c)
        EXPECT_EQ(a.classInstructions[c], b.classInstructions[c])
            << label << " class "
            << instrClassName(static_cast<InstrClass>(c));
    for (int o = 0; o < numOpClasses; ++o)
        EXPECT_EQ(a.opCounts[o], b.opCounts[o])
            << label << " op " << opClassSlug(static_cast<OpClass>(o));
    ASSERT_EQ(a.perTasklet.size(), b.perTasklet.size()) << label;
    for (size_t t = 0; t < a.perTasklet.size(); ++t) {
        EXPECT_EQ(a.perTasklet[t].instructions,
                  b.perTasklet[t].instructions)
            << label << " tasklet " << t;
        EXPECT_EQ(a.perTasklet[t].dmaStallCycles,
                  b.perTasklet[t].dmaStallCycles)
            << label << " tasklet " << t;
    }
}

void
expectOutputsBitIdentical(const std::vector<float>& a,
                          const std::vector<float>& b,
                          const std::string& label)
{
    ASSERT_EQ(a.size(), b.size()) << label;
    if (!a.empty()) {
        EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                 a.size() * sizeof(float)))
            << label;
    }
}

void
expectBatchMatchesScalar(Function f, const MethodSpec& spec,
                         const std::vector<float>& inputs,
                         uint32_t tasklets)
{
    std::string label = comboLabel(f, spec);
    RunResult scalar = runStreaming(f, spec, inputs, tasklets, false);
    RunResult batch = runStreaming(f, spec, inputs, tasklets, true);
    expectOutputsBitIdentical(scalar.outputs, batch.outputs, label);
    expectStatsIdentical(scalar.stats, batch.stats, label);
}

// ---------------------------------------------------------------------
// Full support matrix: every (function, method, placement).
// ---------------------------------------------------------------------

class BatchIdentity : public ::testing::TestWithParam<Method>
{};

TEST_P(BatchIdentity, WholeCatalogBitIdenticalToScalar)
{
    const Method m = GetParam();
    for (Function f : kFunctions) {
        for (Placement p : {Placement::Wram, Placement::Mram}) {
            MethodSpec spec = smallSpec(m, p);
            if (!FunctionEvaluator::supports(f, spec))
                continue;
            Domain dom = functionDomain(f);
            // 193 elements: a ragged final chunk and a count that is
            // not a multiple of any SIMD lane width.
            std::vector<float> inputs = uniformFloats(
                193, static_cast<float>(dom.lo),
                static_cast<float>(dom.hi), 1234 + spec.log2Entries);
            expectBatchMatchesScalar(f, spec, inputs, 3);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, BatchIdentity, ::testing::ValuesIn(kMethods),
    [](const ::testing::TestParamInfo<Method>& info) {
        std::string name(methodName(info.param));
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

// ---------------------------------------------------------------------
// Degenerate sizes and adversarial values on representative combos.
// ---------------------------------------------------------------------

struct Combo
{
    Function f;
    Method m;
    Placement p;
};

constexpr Combo kRepresentatives[] = {
    {Function::Sin, Method::LLut, Placement::Mram},
    {Function::Sin, Method::MLut, Placement::Wram},
    {Function::Exp, Method::Cordic, Placement::Wram},
    {Function::Tanh, Method::LLutFixed, Placement::Wram},
    {Function::Log, Method::DLut, Placement::Mram},
    {Function::Sqrt, Method::DlLut, Placement::Mram},
    {Function::Sigmoid, Method::CordicLut, Placement::Wram},
    {Function::Erf, Method::Poly, Placement::Wram},
    {Function::Sin, Method::CordicFixed, Placement::Wram},
};

TEST(BatchEdgeCases, DegenerateSizesBitIdentical)
{
    for (const Combo& combo : kRepresentatives) {
        MethodSpec spec = smallSpec(combo.m, combo.p);
        ASSERT_TRUE(FunctionEvaluator::supports(combo.f, spec));
        Domain dom = functionDomain(combo.f);
        for (uint32_t n : {0u, 1u, 5u, 37u}) {
            std::vector<float> inputs = uniformFloats(
                n, static_cast<float>(dom.lo),
                static_cast<float>(dom.hi), 7 * n + 1);
            expectBatchMatchesScalar(combo.f, spec, inputs, 4);
        }
    }
}

TEST(BatchEdgeCases, NanAndInfLadenInputsBitIdentical)
{
    const float specials[] = {
        std::numeric_limits<float>::quiet_NaN(),
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        0.0f,
        -0.0f,
        1e-42f, // subnormal
        -1e-42f,
        std::numeric_limits<float>::max(),
        -std::numeric_limits<float>::max(),
        std::numeric_limits<float>::min(),
        1.5f,
        -2.25f,
        3.0e20f,
        -7.0e-20f,
    };
    std::vector<float> inputs;
    for (int rep = 0; rep < 5; ++rep)
        for (float s : specials)
            inputs.push_back(s);
    inputs.resize(67); // ragged, non-lane-multiple tail

    for (const Combo& combo : kRepresentatives) {
        MethodSpec spec = smallSpec(combo.m, combo.p);
        expectBatchMatchesScalar(combo.f, spec, inputs, 4);
    }
}

// ---------------------------------------------------------------------
// Fault-armed equivalence across simulation thread counts.
// ---------------------------------------------------------------------

struct FaultedRun
{
    std::vector<float> outputs;
    std::vector<LaunchStats> perDpu;
    sim::ShardedRunReport report;
};

FaultedRun
runFaultedSharded(bool batch, uint32_t threads)
{
    constexpr uint32_t kDpus = 8;
    constexpr uint32_t kPerDpu = 512;
    constexpr uint64_t kTotal = kDpus * kPerDpu;

    MethodSpec spec = smallSpec(Method::LLut, Placement::Mram);
    Domain dom = functionDomain(Function::Sin);
    std::vector<float> inputs = uniformFloats(
        kTotal, static_cast<float>(dom.lo),
        static_cast<float>(dom.hi), 4242);

    PimSystem sys(kDpus);
    sys.setSimThreads(threads);

    std::vector<FunctionEvaluator> evals(kDpus);
    for (uint32_t d = 0; d < kDpus; ++d) {
        evals[d] = FunctionEvaluator::create(Function::Sin, spec);
        evals[d].attach(sys.dpu(d));
    }

    sim::fault::FaultPlan plan;
    plan.seed = 99;
    sim::fault::FaultSpec flip;
    flip.kind = sim::fault::FaultKind::MramBitFlip;
    flip.dpu = 1;
    flip.addr = 512;
    flip.bit = 3;
    flip.triggerAfter = 0;
    plan.faults.push_back(flip);
    sim::fault::FaultSpec straggler;
    straggler.kind = sim::fault::FaultKind::DpuStraggler;
    straggler.dpu = -1;
    straggler.probability = 0.5;
    straggler.slowdown = 3.0;
    plan.faults.push_back(straggler);
    sim::fault::FaultSpec timeout;
    timeout.kind = sim::fault::FaultKind::DmaTimeout;
    timeout.dpu = -1;
    timeout.probability = 0.1;
    timeout.extraStallCycles = 2000;
    plan.faults.push_back(timeout);
    sys.armFaults(plan);

    FaultedRun r;
    r.outputs.assign(kTotal, 0.0f);
    r.report = sys.runSharded(
        inputs.data(), r.outputs.data(), kTotal, sizeof(float), 4,
        [&](const sim::ShardTask& t) -> sim::Kernel {
            const FunctionEvaluator* evp = &evals[t.dpu];
            return [evp, t, batch](TaskletContext& ctx) {
                constexpr uint32_t chunkElems = 32;
                float buf[chunkElems];
                uint32_t chunks =
                    (t.elements + chunkElems - 1) / chunkElems;
                for (uint32_t c = ctx.taskletId(); c < chunks;
                     c += ctx.numTasklets()) {
                    uint32_t beg = c * chunkElems;
                    uint32_t cnt =
                        std::min(chunkElems, t.elements - beg);
                    ctx.mramRead(t.inAddr + beg * sizeof(float), buf,
                                 cnt * sizeof(float));
                    if (batch) {
                        ctx.chargeClassN(InstrClass::IntAlu, 4, cnt);
                        std::span<float> s(buf, cnt);
                        evp->evalBatch(s, s, &ctx);
                    } else {
                        for (uint32_t i = 0; i < cnt; ++i) {
                            ctx.charge(4);
                            buf[i] = evp->eval(buf[i], &ctx);
                        }
                    }
                    ctx.mramWrite(t.outAddr + beg * sizeof(float),
                                  buf, cnt * sizeof(float));
                }
            };
        });
    for (uint32_t d = 0; d < kDpus; ++d)
        r.perDpu.push_back(sys.dpu(d).lastLaunch());
    return r;
}

TEST(BatchFaultEquivalence, ArmedPlanAtAnyThreadCount)
{
    FaultedRun scalarRef = runFaultedSharded(false, 1);
    for (uint32_t threads : {1u, 4u, 16u}) {
        std::string label =
            "threads=" + std::to_string(threads);
        FaultedRun scalar = runFaultedSharded(false, threads);
        FaultedRun batch = runFaultedSharded(true, threads);

        // Batch vs scalar at this thread count.
        expectOutputsBitIdentical(scalar.outputs, batch.outputs,
                                  label);
        ASSERT_EQ(scalar.perDpu.size(), batch.perDpu.size()) << label;
        for (size_t d = 0; d < scalar.perDpu.size(); ++d)
            expectStatsIdentical(scalar.perDpu[d], batch.perDpu[d],
                                 label + " dpu " + std::to_string(d));
        EXPECT_EQ(scalar.report.complete, batch.report.complete)
            << label;
        EXPECT_EQ(scalar.report.waves, batch.report.waves) << label;
        EXPECT_EQ(scalar.report.modeledSeconds,
                  batch.report.modeledSeconds)
            << label;

        // Thread-count determinism of both paths.
        expectOutputsBitIdentical(scalarRef.outputs, scalar.outputs,
                                  label + " vs single-thread");
        expectOutputsBitIdentical(scalarRef.outputs, batch.outputs,
                                  label + " vs single-thread");
    }
}

// ---------------------------------------------------------------------
// Batched softfloat entry points: value + charge differentials.
// ---------------------------------------------------------------------

/** Class- and op-partitioned counting sink. */
class ClassSink : public InstrSink
{
  public:
    void charge(uint32_t n) override
    {
        chargeClass(InstrClass::IntAlu, n);
    }

    void chargeClass(InstrClass cls, uint32_t n) override
    {
        cls_[static_cast<int>(cls)] += n;
    }

    void note(OpClass op) override { ++ops_[static_cast<int>(op)]; }

    void chargeClassN(InstrClass cls, uint32_t perElem,
                      uint64_t n) override
    {
        cls_[static_cast<int>(cls)] +=
            static_cast<uint64_t>(perElem) * n;
    }

    void noteN(OpClass op, uint64_t n) override
    {
        ops_[static_cast<int>(op)] += n;
    }

    std::array<uint64_t, numInstrClasses> cls_{};
    std::array<uint64_t, numOpClasses> ops_{};
};

void
expectSinksEqual(const ClassSink& a, const ClassSink& b,
                 const std::string& label)
{
    for (int c = 0; c < numInstrClasses; ++c)
        EXPECT_EQ(a.cls_[c], b.cls_[c])
            << label << " class "
            << instrClassName(static_cast<InstrClass>(c));
    for (int o = 0; o < numOpClasses; ++o)
        EXPECT_EQ(a.ops_[o], b.ops_[o])
            << label << " op " << opClassSlug(static_cast<OpClass>(o));
}

/** Deterministic 32-bit pattern stream (xorshift), specials mixed in. */
std::vector<uint32_t>
bitPatterns32(size_t n, uint32_t seed)
{
    std::vector<uint32_t> v(n);
    uint32_t x = seed | 1u;
    for (size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        v[i] = x;
    }
    const uint32_t specials[] = {
        0x7fc00000u, 0x7f800000u, 0xff800000u, 0x00000000u,
        0x80000000u, 0x00000001u, 0x7f7fffffu, 0x00800000u,
    };
    for (size_t i = 0; i < std::min(v.size(), sizeof(specials) / 4);
         ++i)
        v[i] = specials[i];
    return v;
}

TEST(SoftfloatBatch, Binary32OpsMatchScalarBitwiseAndInCharges)
{
    // 1031: prime, so never a multiple of any SIMD lane width.
    const size_t n = 1031;
    std::vector<uint32_t> pa = bitPatterns32(n, 17);
    std::vector<uint32_t> pb = bitPatterns32(n, 29);
    std::vector<float> a(n), b(n);
    std::memcpy(a.data(), pa.data(), n * 4);
    std::memcpy(b.data(), pb.data(), n * 4);

    struct Op
    {
        const char* name;
        float (*scalar)(float, float, InstrSink*);
        void (*batchFn)(std::span<const float>,
                        std::span<const float>, std::span<float>,
                        InstrSink*);
    };
    const Op ops[] = {
        {"add", &sf::add, &sf::addN},
        {"sub", &sf::sub, &sf::subN},
        {"mul", &sf::mul, &sf::mulN},
        {"div", &sf::div, &sf::divN},
    };
    for (const Op& op : ops) {
        ClassSink ss, bs;
        std::vector<float> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = op.scalar(a[i], b[i], &ss);
        op.batchFn(a, b, got, &bs);
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * 4))
            << op.name;
        expectSinksEqual(ss, bs, op.name);
    }

    // sqrt (unary).
    {
        ClassSink ss, bs;
        std::vector<float> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = sf::sqrt(a[i], &ss);
        sf::sqrtN(a, got, &bs);
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * 4))
            << "sqrt";
        expectSinksEqual(ss, bs, "sqrt");
    }

    // Aliasing: out == a must behave like the scalar in-place update.
    {
        std::vector<float> inPlace = a;
        std::vector<float> want(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = sf::add(a[i], b[i], nullptr);
        sf::addN(inPlace, b, inPlace, nullptr);
        EXPECT_EQ(0, std::memcmp(want.data(), inPlace.data(), n * 4));
    }
}

TEST(SoftfloatBatch, ConversionsMatchScalarBitwiseAndInCharges)
{
    const size_t n = 517;
    std::vector<uint32_t> pa = bitPatterns32(n, 43);
    std::vector<float> a(n);
    std::memcpy(a.data(), pa.data(), n * 4);
    // Keep conversion inputs in i32 range where behavior is defined,
    // plus the specials kept verbatim up front.
    for (size_t i = 8; i < n; ++i) {
        uint32_t exp = (pa[i] >> 23) & 0xffu;
        if (exp > 157u) // |x| >= 2^30: clamp path, still defined
            a[i] = (pa[i] & 0x80000000u) ? -3.1e9f : 3.1e9f;
    }

    struct Conv
    {
        const char* name;
        int32_t (*scalar)(float, InstrSink*);
        void (*batchFn)(std::span<const float>, std::span<int32_t>,
                        InstrSink*);
    };
    const Conv convs[] = {
        {"toI32Trunc", &sf::toI32Trunc, &sf::toI32TruncN},
        {"toI32Floor", &sf::toI32Floor, &sf::toI32FloorN},
        {"toI32Round", &sf::toI32Round, &sf::toI32RoundN},
    };
    for (const Conv& conv : convs) {
        ClassSink ss, bs;
        std::vector<int32_t> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = conv.scalar(a[i], &ss);
        conv.batchFn(a, got, &bs);
        EXPECT_EQ(want, got) << conv.name;
        expectSinksEqual(ss, bs, conv.name);
    }

    {
        ClassSink ss, bs;
        std::vector<int32_t> ints(n);
        for (size_t i = 0; i < n; ++i)
            ints[i] = static_cast<int32_t>(pa[i]);
        std::vector<float> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = sf::fromI32(ints[i], &ss);
        sf::fromI32N(ints, got, &bs);
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * 4))
            << "fromI32";
        expectSinksEqual(ss, bs, "fromI32");
    }
}

TEST(SoftfloatBatch, Binary16TierMatchesScalarBitwiseAndInCharges)
{
    const size_t n = 773;
    std::vector<uint32_t> bits = bitPatterns32(n, 91);
    std::vector<sf::Half> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i].bits = static_cast<uint16_t>(bits[i]);
        b[i].bits = static_cast<uint16_t>(bits[i] >> 16);
    }

    struct Op16
    {
        const char* name;
        sf::Half (*scalar)(sf::Half, sf::Half, InstrSink*);
        void (*batchFn)(std::span<const sf::Half>,
                        std::span<const sf::Half>,
                        std::span<sf::Half>, InstrSink*);
    };
    const Op16 ops[] = {
        {"add16", &sf::add16, &sf::add16N},
        {"sub16", &sf::sub16, &sf::sub16N},
        {"mul16", &sf::mul16, &sf::mul16N},
        {"div16", &sf::div16, &sf::div16N},
    };
    for (const Op16& op : ops) {
        ClassSink ss, bs;
        std::vector<sf::Half> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = op.scalar(a[i], b[i], &ss);
        op.batchFn(a, b, got, &bs);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(want[i].bits, got[i].bits)
                << op.name << " at " << i;
        expectSinksEqual(ss, bs, op.name);
    }

    // f32 <-> f16 conversions.
    {
        ClassSink ss, bs;
        std::vector<float> fa(n);
        std::memcpy(fa.data(), bits.data(), n * 4);
        std::vector<sf::Half> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = sf::toF16(fa[i], &ss);
        sf::toF16N(fa, got, &bs);
        for (size_t i = 0; i < n; ++i)
            ASSERT_EQ(want[i].bits, got[i].bits) << "toF16 at " << i;
        expectSinksEqual(ss, bs, "toF16");
    }
    {
        ClassSink ss, bs;
        std::vector<float> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = sf::fromF16(a[i], &ss);
        sf::fromF16N(a, got, &bs);
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * 4))
            << "fromF16";
        expectSinksEqual(ss, bs, "fromF16");
    }
}

TEST(SoftfloatBatch, Binary64TierMatchesScalarBitwiseAndInCharges)
{
    const size_t n = 641;
    std::vector<uint32_t> lo = bitPatterns32(n, 5);
    std::vector<uint32_t> hi = bitPatterns32(n, 11);
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        uint64_t ba = (static_cast<uint64_t>(hi[i]) << 32) | lo[i];
        uint64_t bb =
            (static_cast<uint64_t>(lo[(i + 7) % n]) << 32) | hi[i];
        std::memcpy(&a[i], &ba, 8);
        std::memcpy(&b[i], &bb, 8);
    }

    struct Op64
    {
        const char* name;
        double (*scalar)(double, double, InstrSink*);
        void (*batchFn)(std::span<const double>,
                        std::span<const double>, std::span<double>,
                        InstrSink*);
    };
    const Op64 ops[] = {
        {"add64", &sf::add64, &sf::add64N},
        {"sub64", &sf::sub64, &sf::sub64N},
        {"mul64", &sf::mul64, &sf::mul64N},
        {"div64", &sf::div64, &sf::div64N},
    };
    for (const Op64& op : ops) {
        ClassSink ss, bs;
        std::vector<double> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = op.scalar(a[i], b[i], &ss);
        op.batchFn(a, b, got, &bs);
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * 8))
            << op.name;
        expectSinksEqual(ss, bs, op.name);
    }

    // f32 <-> f64 conversions.
    {
        ClassSink ss, bs;
        std::vector<float> fa(n);
        std::memcpy(fa.data(), lo.data(), n * 4);
        std::vector<double> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = sf::fromF32(fa[i], &ss);
        sf::fromF32N(fa, got, &bs);
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * 8))
            << "fromF32";
        expectSinksEqual(ss, bs, "fromF32");
    }
    {
        ClassSink ss, bs;
        std::vector<float> want(n), got(n);
        for (size_t i = 0; i < n; ++i)
            want[i] = sf::toF32(a[i], &ss);
        sf::toF32N(a, got, &bs);
        EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * 4))
            << "toF32";
        expectSinksEqual(ss, bs, "toF32");
    }
}

// ---------------------------------------------------------------------
// BatchStats plumbing.
// ---------------------------------------------------------------------

TEST(BatchStatsApi, AccumulatesElementsAndMirrorsSinkTotals)
{
    MethodSpec spec = smallSpec(Method::LLut, Placement::Wram);
    FunctionEvaluator ev =
        FunctionEvaluator::create(Function::Sin, spec);

    std::vector<float> in = uniformFloats(100, 0.0f, 6.28f, 5);
    std::vector<float> out(100);

    ClassSink sink;
    BatchStats stats;
    ev.evalBatch(std::span<const float>(in),
                 std::span<float>(out), &sink, &stats);
    const uint64_t onePassInstructions = stats.totalInstructions();
    ev.evalBatch(std::span<const float>(in).subspan(0, 28),
                 std::span<float>(out).subspan(0, 28), &sink, &stats);

    EXPECT_EQ(128u, stats.elements);
    uint64_t sinkTotal = 0;
    for (int c = 0; c < numInstrClasses; ++c) {
        EXPECT_EQ(stats.classInstructions[c], sink.cls_[c])
            << instrClassName(static_cast<InstrClass>(c));
        sinkTotal += sink.cls_[c];
    }
    EXPECT_EQ(sinkTotal, stats.totalInstructions());
    for (int o = 0; o < numOpClasses; ++o)
        EXPECT_EQ(stats.opCounts[o], sink.ops_[o])
            << opClassSlug(static_cast<OpClass>(o));

    // The stats-only overload charges exactly like the sink overload.
    BatchStats again;
    ev.evalBatch(std::span<const float>(in), std::span<float>(out),
                 again);
    EXPECT_EQ(100u, again.elements);
    EXPECT_EQ(onePassInstructions, again.totalInstructions());
}

} // namespace
} // namespace transpim
} // namespace tpl
