/**
 * @file
 * Tests for the exhaustive-equivalent tasklet-interleaving explorer
 * (interleave.h): publish-then-consume patterns with and without the
 * separating barrier, barrier deadlock from tid-conditional
 * rendezvous, the seeded race in the single-owner L-LUT kernel run
 * multi-tasklet, race-freedom certificates for the shipped
 * tid-partitioned kernels, MRAM conflicts through DMA, and the
 * explorer's refusal to stamp "race-free" when fuel runs out.
 */

#include <gtest/gtest.h>

#include "pimsim/analysis/interleave.h"
#include "pimsim/isa.h"

#include "isa_kernels.h"

namespace tpl {
namespace sim {
namespace {

using check::CheckKind;
using check::countOf;
using check::InterleaveExplorer;
using check::InterleaveOptions;
using check::InterleaveResult;
using check::InterleaveVerdict;
using testkernels::kCordicKernel;
using testkernels::kLLutKernel;
using testkernels::kLLutParKernel;
using testkernels::substConst;

InterleaveResult
explore(const std::string& src, uint32_t tasklets,
        InterleaveOptions opt = {})
{
    opt.tasklets = tasklets;
    InterleaveExplorer ex(assemble(src), opt);
    return ex.explore();
}

TEST(Interleave, VerdictNames)
{
    EXPECT_STREQ("race-free", toString(InterleaveVerdict::RaceFree));
    EXPECT_STREQ("race", toString(InterleaveVerdict::Race));
    EXPECT_STREQ("deadlock", toString(InterleaveVerdict::Deadlock));
    EXPECT_STREQ("inconclusive",
                 toString(InterleaveVerdict::Inconclusive));
}

TEST(Interleave, PublishThenConsumeWithBarrierIsRaceFree)
{
    // Tasklet 0 publishes at WRAM 128; everyone consumes after the
    // rendezvous. The barrier separates the write phase from the read
    // phase, so no interleaving races.
    InterleaveResult r = explore(R"(
        tid  r1
        movi r2, 0
        bne  r1, r2, wait
        movi r3, 42
        stw  r3, r2, 128
    wait:
        barrier
        ldw  r4, r2, 128
        halt
    )", 3);
    EXPECT_EQ(InterleaveVerdict::RaceFree, r.verdict) << r.note;
    EXPECT_TRUE(r.diags.empty());
    // Two phases: the publishing segment and the run-to-halt segment
    // after the rendezvous.
    EXPECT_EQ(2u, r.phases);
}

TEST(Interleave, PublishThenConsumeWithoutBarrierRaces)
{
    // Same program minus the barrier: the write and the other
    // tasklets' reads now share a phase, so some interleaving orders
    // them adjacently either way round — a race.
    InterleaveResult r = explore(R"(
        tid  r1
        movi r2, 0
        bne  r1, r2, read
        movi r3, 42
        stw  r3, r2, 128
    read:
        ldw  r4, r2, 128
        halt
    )", 2);
    EXPECT_EQ(InterleaveVerdict::Race, r.verdict);
    ASSERT_EQ(1u, countOf(r.diags, CheckKind::TaskletRace));
    // The diagnostic names both conflicting lines.
    EXPECT_NE(std::string::npos, r.diags[0].message.find("line"));
}

TEST(Interleave, TidConditionalBarrierDeadlocks)
{
    // Tasklet 0 halts while everyone else waits at the rendezvous.
    InterleaveResult r = explore(R"(
        tid  r1
        movi r2, 0
        beq  r1, r2, skip
        barrier
    skip:
        halt
    )", 2);
    EXPECT_EQ(InterleaveVerdict::Deadlock, r.verdict);
    EXPECT_EQ(1u, countOf(r.diags, CheckKind::BarrierDeadlock));
}

TEST(Interleave, DisjointTidIndexedStoresAreRaceFree)
{
    InterleaveResult r = explore(R"(
        tid  r1
        slli r2, r1, 2
        movi r3, 7
        stw  r3, r2, 256
        halt
    )", 4);
    EXPECT_EQ(InterleaveVerdict::RaceFree, r.verdict) << r.note;
}

TEST(Interleave, SingleOwnerLLutKernelRacesWhenRunMultiTasklet)
{
    // The plain L-LUT kernel assumes it owns the whole output range;
    // two tasklets running it write the same words. The explorer must
    // reproduce this seeded race.
    std::string src = kLLutKernel;
    src = substConst(src, "@N", 4);
    src = substConst(src, "@PRAW", 0);
    src = substConst(src, "@MASK", (1 << 17) - 1);
    src = substConst(src, "@SHIFTC", 32 - 17);
    src = substConst(src, "@SHIFT", 17);
    src = substConst(src, "@INP", 1024);
    src = substConst(src, "@TBLN", 4);
    src = substConst(src, "@TBL", 0);
    src = substConst(src, "@OUT", 2048);
    InterleaveResult r = explore(src, 2);
    EXPECT_EQ(InterleaveVerdict::Race, r.verdict);
    EXPECT_GE(countOf(r.diags, CheckKind::TaskletRace), 1u);
}

TEST(Interleave, PartitionedLLutKernelIsRaceFree)
{
    // The tid-partitioned variant keeps writes disjoint and
    // rendezvous once; 3 tasklets, 8 elements each.
    std::string src = kLLutParKernel;
    src = substConst(src, "@NPER", 8);
    src = substConst(src, "@PRAW", 0);
    src = substConst(src, "@MASK", (1 << 17) - 1);
    src = substConst(src, "@SHIFTC", 32 - 17);
    src = substConst(src, "@SHIFT", 17);
    src = substConst(src, "@INP", 1024);
    src = substConst(src, "@TBLN", 4);
    src = substConst(src, "@TBL", 0);
    src = substConst(src, "@OUT", 2048);
    InterleaveResult r = explore(src, 3);
    EXPECT_EQ(InterleaveVerdict::RaceFree, r.verdict) << r.note;
    EXPECT_EQ(2u, r.phases);
}

TEST(Interleave, CordicKernelSharesOnlyReads)
{
    std::string src = kCordicKernel;
    src = substConst(src, "@Z0", 0x1000000);
    src = substConst(src, "@INVGAIN", 0x26dd3b6a);
    src = substConst(src, "@NITER", 24);
    src = substConst(src, "@ATBL", 0);
    InterleaveResult r = explore(src, 2);
    EXPECT_EQ(InterleaveVerdict::RaceFree, r.verdict) << r.note;
}

TEST(Interleave, StagedInputSteersControlFlow)
{
    // Control flow depends on a staged WRAM word: when the word is
    // zero every tasklet writes its own slot (race-free); when
    // non-zero every tasklet writes slot 0 (race). The explorer must
    // honor the staged image, not assume zeros.
    const std::string src = R"(
        movi r1, 0
        ldw  r2, r1, 512
        beq  r2, r1, own
        movi r3, 1
        stw  r3, r1, 256
        halt
    own:
        tid  r4
        slli r5, r4, 2
        movi r3, 1
        stw  r3, r5, 256
        halt
    )";
    {
        InterleaveOptions opt;
        opt.tasklets = 2;
        InterleaveExplorer ex(assemble(src), opt);
        InterleaveResult r = ex.explore();
        EXPECT_EQ(InterleaveVerdict::RaceFree, r.verdict) << r.note;
    }
    {
        InterleaveOptions opt;
        opt.tasklets = 2;
        InterleaveExplorer ex(assemble(src), opt);
        uint32_t flag = 1;
        ex.stageWram(512, &flag, sizeof(flag));
        InterleaveResult r = ex.explore();
        EXPECT_EQ(InterleaveVerdict::Race, r.verdict);
    }
}

TEST(Interleave, OverlappingDmaWritesRaceThroughMram)
{
    // Both tasklets stream the same WRAM block to the same MRAM
    // range: the WRAM reads are compatible, but the MRAM writes
    // collide.
    InterleaveResult r = explore(R"(
        movi r1, 0
        movi r2, 4096
        movi r3, 64
        sdma r1, r2, r3
        halt
    )", 2);
    EXPECT_EQ(InterleaveVerdict::Race, r.verdict);
    EXPECT_GE(countOf(r.diags, CheckKind::TaskletRace), 1u);
}

TEST(Interleave, DisjointDmaWritesAreRaceFree)
{
    InterleaveResult r = explore(R"(
        tid  r1
        slli r2, r1, 6
        addi r2, r2, 4096
        movi r3, 0
        movi r4, 64
        sdma r3, r2, r4
        halt
    )", 4);
    EXPECT_EQ(InterleaveVerdict::RaceFree, r.verdict) << r.note;
}

TEST(Interleave, FuelExhaustionIsInconclusiveNeverRaceFree)
{
    InterleaveOptions opt;
    opt.maxSegmentInstructions = 1000;
    InterleaveResult r = explore("loop: jmp loop\n", 2, opt);
    EXPECT_EQ(InterleaveVerdict::Inconclusive, r.verdict);
    EXPECT_FALSE(r.note.empty());
}

TEST(Interleave, MramEventOverflowIsInconclusiveNeverRaceFree)
{
    // More than 65536 DMA transfers in one phase overflow the
    // per-segment event list. MRAM conflict checking and the phase
    // commit depend entirely on that list, so dropped events must
    // force an explicit refusal rather than a silently incomplete
    // race check.
    InterleaveResult r = explore(R"(
        movi r1, 0
        movi r2, 65600
        movi r3, 0
        movi r4, 0
        movi r5, 8
    loop:
        bge  r1, r2, done
        ldma r3, r4, r5
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )", 1);
    EXPECT_EQ(InterleaveVerdict::Inconclusive, r.verdict);
    EXPECT_NE(std::string::npos, r.note.find("DMA"));
}

TEST(Interleave, PhaseBudgetExhaustionIsInconclusive)
{
    const std::string src = R"(
        movi r1, 0
        movi r2, 10
    loop:
        bge  r1, r2, done
        barrier
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )";
    {
        InterleaveOptions opt;
        opt.maxPhases = 4;
        InterleaveResult r = explore(src, 2, opt);
        EXPECT_EQ(InterleaveVerdict::Inconclusive, r.verdict);
        EXPECT_FALSE(r.note.empty());
    }
    {
        // With enough budget the same program certifies clean, and
        // the phase count reflects every rendezvous explored.
        InterleaveResult r = explore(src, 2);
        EXPECT_EQ(InterleaveVerdict::RaceFree, r.verdict) << r.note;
        // 10 barrier phases plus the final run-to-halt segment.
        EXPECT_EQ(11u, r.phases);
    }
}

TEST(Interleave, RuntimeErrorIsInconclusive)
{
    // WRAM store far out of bounds aborts the segment.
    InterleaveOptions opt;
    opt.wramBytes = 256;
    InterleaveResult r = explore(R"(
        movi r1, 1024
        movi r2, 5
        stw  r2, r1, 0
        halt
    )", 2, opt);
    EXPECT_EQ(InterleaveVerdict::Inconclusive, r.verdict);
    EXPECT_FALSE(r.note.empty());
}

} // namespace
} // namespace sim
} // namespace tpl
