/**
 * @file
 * Targeted tests for the extension functions (beyond the broad
 * support-matrix sweep in evaluator_test): identities at special
 * points, the argument reductions behind the compositional
 * implementations, exactness properties of the base-2 paths, and
 * inverse-function round trips.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {
namespace {

MethodSpec
lutSpec()
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.interpolated = true;
    spec.placement = Placement::Host;
    spec.log2Entries = 14;
    return spec;
}

MethodSpec
polySpec()
{
    MethodSpec spec;
    spec.method = Method::Poly;
    spec.polyDegree = 13;
    spec.placement = Placement::Host;
    return spec;
}

MethodSpec
cordicSpec()
{
    MethodSpec spec;
    spec.method = Method::Cordic;
    spec.iterations = 26;
    spec.placement = Placement::Host;
    return spec;
}

TEST(Atan, SpecialPoints)
{
    for (const MethodSpec& spec : {lutSpec(), polySpec(), cordicSpec()}) {
        auto atanE = FunctionEvaluator::create(Function::Atan, spec);
        EXPECT_NEAR(0.0, atanE.eval(0.0f), 2e-4);
        EXPECT_NEAR(M_PI / 4, atanE.eval(1.0f), 2e-4);
        EXPECT_NEAR(-M_PI / 4, atanE.eval(-1.0f), 2e-4);
        EXPECT_NEAR(std::atan(7.5), atanE.eval(7.5f), 2e-4);
    }
}

TEST(Atan, PolyOctantReductionSeams)
{
    // The poly implementation folds at |x| = tan(pi/8) and |x| = 1;
    // check continuity right at the seams.
    auto atanE = FunctionEvaluator::create(Function::Atan, polySpec());
    for (float seam : {0.41421356f, 1.0f}) {
        float below = atanE.eval(std::nextafter(seam, 0.0f));
        float at = atanE.eval(seam);
        float above = atanE.eval(std::nextafter(seam, 10.0f));
        EXPECT_NEAR(below, at, 1e-5) << seam;
        EXPECT_NEAR(at, above, 1e-5) << seam;
    }
}

TEST(AsinAcos, ComplementaryIdentity)
{
    auto asinE = FunctionEvaluator::create(Function::Asin, polySpec());
    auto acosE = FunctionEvaluator::create(Function::Acos, polySpec());
    SplitMix64 rng(91);
    for (int i = 0; i < 500; ++i) {
        float x = rng.nextFloat(-0.98f, 0.98f);
        EXPECT_NEAR(M_PI / 2, asinE.eval(x) + acosE.eval(x), 1e-4) << x;
        EXPECT_NEAR(std::asin((double)x), asinE.eval(x), 5e-4) << x;
    }
}

TEST(Atanh, InverseOfTanh)
{
    auto atanhE = FunctionEvaluator::create(Function::Atanh, lutSpec());
    SplitMix64 rng(92);
    for (int i = 0; i < 500; ++i) {
        float x = rng.nextFloat(-3.0f, 3.0f);
        float t = std::tanh(x);
        if (std::abs(t) > 0.98f)
            continue;
        EXPECT_NEAR(x, atanhE.eval(t), 6e-3) << x;
    }
}

TEST(Atanh, CordicIdentityPathSeam)
{
    // The CORDIC implementation switches from direct vectoring to the
    // log identity at |x| = 0.75.
    auto atanhE = FunctionEvaluator::create(Function::Atanh,
                                            cordicSpec());
    for (float x : {0.70f, 0.74f, 0.76f, 0.90f, -0.74f, -0.76f}) {
        EXPECT_NEAR(std::atanh((double)x), atanhE.eval(x), 5e-5) << x;
    }
}

TEST(Log2, ExponentContributionIsExact)
{
    // log2(2^k) must be exactly k: the split contributes the exponent
    // as an integer and log2(m = 1) = 0 is a table endpoint.
    auto log2E = FunctionEvaluator::create(Function::Log2, lutSpec());
    for (int k = -10; k <= 10; ++k) {
        float x = std::ldexp(1.0f, k);
        EXPECT_NEAR((float)k, log2E.eval(x), 2e-5) << k;
    }
}

TEST(Log2Log10, ConsistentWithLog)
{
    auto logE = FunctionEvaluator::create(Function::Log, lutSpec());
    auto log2E = FunctionEvaluator::create(Function::Log2, lutSpec());
    auto log10E = FunctionEvaluator::create(Function::Log10, lutSpec());
    SplitMix64 rng(93);
    for (int i = 0; i < 500; ++i) {
        float x = rng.nextFloat(0.01f, 100.0f);
        double ln = logE.eval(x);
        EXPECT_NEAR(ln / std::log(2.0), log2E.eval(x), 2e-4) << x;
        EXPECT_NEAR(ln / std::log(10.0), log10E.eval(x), 2e-4) << x;
    }
}

TEST(Exp2, PowersOfTwoNearlyExact)
{
    auto exp2E = FunctionEvaluator::create(Function::Exp2, lutSpec());
    for (int k = -8; k <= 8; ++k) {
        float expect = std::ldexp(1.0f, k);
        EXPECT_NEAR(expect, exp2E.eval((float)k), expect * 2e-5) << k;
    }
}

TEST(Exp2, CheaperRangeExtensionThanExp)
{
    // 2^x splits with floor(x) alone; e^x needs two constant
    // multiplies. The full evaluation must reflect that.
    auto exp2E = FunctionEvaluator::create(Function::Exp2, lutSpec());
    auto expE = FunctionEvaluator::create(Function::Exp, lutSpec());
    CountingSink s2, se;
    exp2E.eval(3.7f, &s2);
    expE.eval(3.7f, &se);
    EXPECT_LT(s2.total(), se.total());
}

TEST(Rsqrt, MatchesReferenceAcrossDecades)
{
    for (const MethodSpec& spec : {lutSpec(), polySpec(), cordicSpec()}) {
        auto rsqrtE = FunctionEvaluator::create(Function::Rsqrt, spec);
        for (float x : {0.01f, 0.1f, 0.5f, 1.0f, 2.0f, 10.0f, 100.0f}) {
            double expect = 1.0 / std::sqrt((double)x);
            EXPECT_NEAR(expect, rsqrtE.eval(x), expect * 2e-3)
                << x << " " << methodLabel(spec);
        }
    }
}

TEST(Erf, OddSymmetryAndSaturation)
{
    auto erfE = FunctionEvaluator::create(Function::Erf, lutSpec());
    SplitMix64 rng(94);
    for (int i = 0; i < 500; ++i) {
        float x = rng.nextFloat(0.0f, 4.0f);
        EXPECT_NEAR(erfE.eval(x), -erfE.eval(-x), 2e-5) << x;
    }
    EXPECT_NEAR(1.0, erfE.eval(3.9f), 1e-4);
    EXPECT_NEAR(0.0, erfE.eval(0.0f), 1e-5);
}

TEST(Silu, RelatesToSigmoid)
{
    auto siluE = FunctionEvaluator::create(Function::Silu, lutSpec());
    auto sigE = FunctionEvaluator::create(Function::Sigmoid, lutSpec());
    SplitMix64 rng(95);
    for (int i = 0; i < 500; ++i) {
        float x = rng.nextFloat(-7.9f, 7.9f);
        EXPECT_NEAR(x * sigE.eval(x), siluE.eval(x), 5e-3) << x;
    }
}

TEST(Softplus, DerivativeRelationships)
{
    // softplus(x) - softplus(-x) == x (exact identity).
    auto spE = FunctionEvaluator::create(Function::Softplus, lutSpec());
    SplitMix64 rng(96);
    for (int i = 0; i < 500; ++i) {
        float x = rng.nextFloat(-9.0f, 9.0f);
        EXPECT_NEAR(x, spE.eval(x) - spE.eval(-x), 5e-4) << x;
    }
    EXPECT_NEAR(std::log(2.0), spE.eval(0.0f), 1e-4);
}

TEST(ExtendedSupport, FixedPointCells)
{
    MethodSpec fixed;
    fixed.method = Method::LLutFixed;
    EXPECT_TRUE(FunctionEvaluator::supports(Function::Atan, fixed));
    EXPECT_TRUE(FunctionEvaluator::supports(Function::Erf, fixed));
    EXPECT_TRUE(FunctionEvaluator::supports(Function::Exp2, fixed));
    EXPECT_TRUE(FunctionEvaluator::supports(Function::Silu, fixed));
    // Ranges that do not fit Q3.28 stay out.
    EXPECT_FALSE(FunctionEvaluator::supports(Function::Softplus, fixed));
    EXPECT_FALSE(FunctionEvaluator::supports(Function::Log2, fixed));
    EXPECT_FALSE(FunctionEvaluator::supports(Function::Rsqrt, fixed));
}

TEST(ExtendedSupport, CordicCells)
{
    MethodSpec cordic;
    cordic.method = Method::Cordic;
    EXPECT_TRUE(FunctionEvaluator::supports(Function::Atan, cordic));
    EXPECT_TRUE(FunctionEvaluator::supports(Function::Atanh, cordic));
    EXPECT_TRUE(FunctionEvaluator::supports(Function::Softplus, cordic));
    EXPECT_FALSE(FunctionEvaluator::supports(Function::Asin, cordic));
    EXPECT_FALSE(FunctionEvaluator::supports(Function::Erf, cordic));
}

} // namespace
} // namespace transpim
} // namespace tpl
