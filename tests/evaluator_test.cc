/**
 * @file
 * FunctionEvaluator tests: the full support matrix meets per-method
 * accuracy bounds (parameterized sweep over every supported pair),
 * unsupported pairs throw, range reduction composes, setup metadata is
 * populated, and the paper's qualitative cost orderings hold at the
 * evaluator level.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/evaluator.h"
#include "transpim/harness.h"

namespace tpl {
namespace transpim {
namespace {

const std::vector<Function> kAllFunctions{
    Function::Sin, Function::Cos, Function::Tan, Function::Sinh,
    Function::Cosh, Function::Tanh, Function::Exp, Function::Log,
    Function::Sqrt, Function::Gelu, Function::Sigmoid, Function::Cndf,
    Function::Atan, Function::Asin, Function::Acos, Function::Atanh,
    Function::Log2, Function::Log10, Function::Exp2, Function::Rsqrt,
    Function::Erf, Function::Silu, Function::Softplus};

const std::vector<Method> kAllMethods{
    Method::Cordic, Method::CordicFixed, Method::CordicLut,
    Method::MLut, Method::LLut, Method::LLutFixed, Method::DLut,
    Method::DlLut, Method::Poly};

MethodSpec
defaultSpec(Method m)
{
    MethodSpec spec;
    spec.method = m;
    spec.interpolated = true;
    spec.placement = Placement::Host;
    spec.log2Entries = 14;
    spec.iterations = 26;
    spec.gridBits = 8;
    spec.polyDegree = 13;
    spec.dlutMantBits = 8;
    return spec;
}

/**
 * Accuracy bound for a (function, method) pair with the default spec.
 * Relative bounds for functions with large outputs (exp/sinh/cosh).
 */
double
accuracyBound(Function f, Method m)
{
    // Base bound by method class.
    double base;
    switch (m) {
      case Method::Cordic:
      case Method::CordicLut:
        base = 5e-6;
        break;
      case Method::CordicFixed:
        base = 1e-6;
        break;
      case Method::MLut:
      case Method::LLut:
        base = 1e-6;
        break;
      case Method::LLutFixed:
        base = 5e-6;
        break;
      case Method::DLut:
      case Method::DlLut:
        base = 5e-5; // 8 mantissa bits -> coarser but relative-ish
        break;
      case Method::Poly:
        base = 5e-5;
        break;
      default:
        base = 1e-4;
    }
    // Functions whose outputs or derivatives are large are checked
    // with a relative error (see relativeCheck), so their bound is the
    // method base with headroom; tan gets absolute slack near poles.
    switch (f) {
      case Function::Exp:
      case Function::Exp2:
      case Function::Sinh:
      case Function::Cosh:
        return base * 60; // relative bound
      case Function::Tan:
        return 2e-2; // poles: bound checked away from them below
      case Function::Log:
      case Function::Log2:
      case Function::Log10:
        return base * 10;
      case Function::Sqrt:
        return base * 20;
      case Function::Rsqrt:
        return base * 40; // steep near the domain's low end
      case Function::Atanh:
        return base * 200; // derivative ~50 near +-0.99
      case Function::Asin:
      case Function::Acos:
        return base * 60; // derivative ~7 near +-0.99
      default:
        return base * 4;
    }
}

/** Functions whose error is judged relative to max(1, |reference|). */
bool
relativeCheck(Function f)
{
    return f == Function::Exp || f == Function::Exp2 ||
           f == Function::Sinh || f == Function::Cosh;
}

/** Inputs for accuracy checks; avoids tan poles. */
std::vector<float>
testInputs(Function f)
{
    Domain dom = functionDomain(f);
    auto v = uniformFloats(3000, (float)dom.lo, (float)dom.hi, 77);
    if (f == Function::Tan) {
        std::erase_if(v, [](float x) {
            double c = std::cos((double)x);
            return std::abs(c) < 0.1;
        });
    }
    if (f == Function::Log || f == Function::Log2 ||
        f == Function::Log10 || f == Function::Rsqrt) {
        std::erase_if(v, [](float x) { return x < 0.01f; });
    }
    return v;
}

using Combo = std::tuple<Function, Method>;

class SupportMatrixTest : public ::testing::TestWithParam<Combo>
{
};

TEST_P(SupportMatrixTest, MeetsAccuracyBound)
{
    auto [f, m] = GetParam();
    MethodSpec spec = defaultSpec(m);
    if (!FunctionEvaluator::supports(f, spec)) {
        EXPECT_THROW(FunctionEvaluator::create(f, spec),
                     UnsupportedCombination);
        return;
    }
    FunctionEvaluator eval = FunctionEvaluator::create(f, spec);
    double bound = accuracyBound(f, m);
    double worst = 0.0;
    float worstX = 0.0f;
    bool relative = relativeCheck(f);
    for (float x : testInputs(f)) {
        double y = eval.eval(x, nullptr);
        double ref = referenceValue(f, (double)x);
        double err = std::abs(y - ref);
        if (relative)
            err /= std::max(1.0, std::abs(ref));
        if (err > worst) {
            worst = err;
            worstX = x;
        }
    }
    EXPECT_LT(worst, bound)
        << functionName(f) << " via " << methodName(m) << " worst at x="
        << worstX;
}

std::string
comboName(const ::testing::TestParamInfo<Combo>& info)
{
    auto [f, m] = info.param;
    std::string name(functionName(f));
    name += "_";
    for (char c : methodName(m)) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            name += c;
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, SupportMatrixTest,
    ::testing::Combine(::testing::ValuesIn(kAllFunctions),
                       ::testing::ValuesIn(kAllMethods)),
    comboName);

// ---------------------------------------------------------------------
// Accuracy scaling sweeps (the backbone of Figure 5's x axis)
// ---------------------------------------------------------------------

class LutSizeSweepTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LutSizeSweepTest, LLutErrorTracksTableSize)
{
    uint32_t log2n = GetParam();
    MethodSpec spec = defaultSpec(Method::LLut);
    spec.log2Entries = log2n;
    auto eval = FunctionEvaluator::create(Function::Sin, spec);
    auto inputs = testInputs(Function::Sin);
    ErrorStats stats = evaluateAccuracy(eval, inputs);
    // Interpolated error ~ spacing^2/8; density is 2^(log2n-3) for
    // the [0, 2pi] sine table.
    double spacing = 6.2832 / (1 << (log2n - 1));
    EXPECT_LT(stats.rmse, spacing * spacing + 3e-8) << log2n;
    EXPECT_GT(stats.count, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LutSizeSweepTest,
                         ::testing::Values(8u, 10u, 12u, 14u, 16u));

class CordicIterSweepTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CordicIterSweepTest, ErrorHalvesPerIteration)
{
    uint32_t iters = GetParam();
    MethodSpec spec = defaultSpec(Method::Cordic);
    spec.iterations = iters;
    auto eval = FunctionEvaluator::create(Function::Sin, spec);
    auto inputs = testInputs(Function::Sin);
    ErrorStats stats = evaluateAccuracy(eval, inputs);
    EXPECT_LT(stats.rmse, std::ldexp(4.0, -(int)iters) + 1e-7) << iters;
}

INSTANTIATE_TEST_SUITE_P(Iters, CordicIterSweepTest,
                         ::testing::Values(8u, 12u, 16u, 20u, 24u));

// ---------------------------------------------------------------------
// Composition and metadata
// ---------------------------------------------------------------------

TEST(Evaluator, RangeReductionComposes)
{
    MethodSpec spec = defaultSpec(Method::LLut);
    spec.reduceRange = true;
    auto eval = FunctionEvaluator::create(Function::Sin, spec);
    SplitMix64 rng(78);
    for (int i = 0; i < 2000; ++i) {
        float x = rng.nextFloat(-50.0f, 50.0f);
        EXPECT_NEAR(std::sin((double)x), eval.eval(x), 3e-4) << x;
    }
}

TEST(Evaluator, SetupMetadataPopulated)
{
    MethodSpec spec = defaultSpec(Method::LLut);
    spec.log2Entries = 16;
    auto eval = FunctionEvaluator::create(Function::Sin, spec);
    EXPECT_GT(eval.memoryBytes(), 1u << 16);
    EXPECT_GT(eval.setupSeconds(), 0.0);
    EXPECT_TRUE(eval.valid());
}

TEST(Evaluator, SetupTimeGrowsWithTableSize)
{
    MethodSpec small = defaultSpec(Method::MLut);
    small.log2Entries = 8;
    MethodSpec large = defaultSpec(Method::MLut);
    large.log2Entries = 20;
    double smallT = 0.0;
    double largeT = 0.0;
    // Median of several runs to de-noise timer jitter.
    for (int i = 0; i < 3; ++i) {
        smallT +=
            FunctionEvaluator::create(Function::Sin, small).setupSeconds();
        largeT +=
            FunctionEvaluator::create(Function::Sin, large).setupSeconds();
    }
    EXPECT_GT(largeT, smallT);
}

TEST(Evaluator, CordicSetupFlat)
{
    // CORDIC's host setup is accuracy-independent (Key Takeaway 2).
    MethodSpec a = defaultSpec(Method::Cordic);
    a.iterations = 8;
    MethodSpec b = defaultSpec(Method::Cordic);
    b.iterations = 30;
    auto ea = FunctionEvaluator::create(Function::Sin, a);
    auto eb = FunctionEvaluator::create(Function::Sin, b);
    EXPECT_LT(eb.memoryBytes(), 1024u);
    EXPECT_LT(eb.memoryBytes() - ea.memoryBytes(), 512u);
}

TEST(Evaluator, TanCostsMoreThanSin)
{
    // Section 4.2.4: tangent = sine + cosine + float division.
    MethodSpec spec = defaultSpec(Method::LLut);
    auto sinE = FunctionEvaluator::create(Function::Sin, spec);
    auto tanE = FunctionEvaluator::create(Function::Tan, spec);
    CountingSink sSin, sTan;
    sinE.eval(1.0f, &sSin);
    tanE.eval(1.0f, &sTan);
    EXPECT_GT(sTan.total(), 1.8 * sSin.total());
    EXPECT_LT(sTan.total(), 6.0 * sSin.total());
}

TEST(Evaluator, FixedInterpolatedLLutFasterThanFloat)
{
    // Figure 5: the fixed-point interpolated L-LUT roughly doubles the
    // performance of the float interpolated L-LUT.
    MethodSpec fx = defaultSpec(Method::LLutFixed);
    MethodSpec fl = defaultSpec(Method::LLut);
    auto fixedE = FunctionEvaluator::create(Function::Sin, fx);
    auto floatE = FunctionEvaluator::create(Function::Sin, fl);
    CountingSink sFx, sFl;
    fixedE.eval(3.0f, &sFx);
    floatE.eval(3.0f, &sFl);
    EXPECT_LT(sFx.total(), 0.75 * sFl.total());
}

TEST(Evaluator, CordicMuchSlowerThanLLutAtHighAccuracy)
{
    // The Figure 5 headline: at comparable accuracy, float CORDIC
    // costs several times the interpolated L-LUT.
    MethodSpec cordic = defaultSpec(Method::Cordic);
    cordic.iterations = 28;
    MethodSpec llut = defaultSpec(Method::LLut);
    llut.log2Entries = 16;
    auto cE = FunctionEvaluator::create(Function::Sin, cordic);
    auto lE = FunctionEvaluator::create(Function::Sin, llut);
    CountingSink sC, sL;
    cE.eval(3.0f, &sC);
    lE.eval(3.0f, &sL);
    EXPECT_GT(sC.total(), 5 * sL.total());
}

TEST(Evaluator, DLutFastForActivationFunctions)
{
    // Key Takeaway 4: D-LUT beats interpolated L-LUT on tanh because
    // it needs no range handling and its query is pure bit surgery.
    MethodSpec dlut = defaultSpec(Method::DLut);
    dlut.interpolated = false;
    MethodSpec llut = defaultSpec(Method::LLut);
    auto dE = FunctionEvaluator::create(Function::Tanh, dlut);
    auto lE = FunctionEvaluator::create(Function::Tanh, llut);
    CountingSink sD, sL;
    dE.eval(1.5f, &sD);
    lE.eval(1.5f, &sL);
    EXPECT_LT(sD.total(), 0.5 * sL.total());
}

TEST(Evaluator, GeluViaDlLut)
{
    MethodSpec spec = defaultSpec(Method::DlLut);
    auto eval = FunctionEvaluator::create(Function::Gelu, spec);
    SplitMix64 rng(79);
    for (int i = 0; i < 2000; ++i) {
        float x = rng.nextFloat(-8.0f, 8.0f);
        EXPECT_NEAR(geluReference((double)x), eval.eval(x), 5e-3) << x;
    }
}

TEST(Evaluator, AttachPlacesAllTables)
{
    MethodSpec spec = defaultSpec(Method::LLut);
    spec.placement = Placement::Mram;
    auto eval = FunctionEvaluator::create(Function::Tan, spec);
    sim::DpuCore dpu;
    eval.attach(dpu);
    EXPECT_GE(dpu.mramAllocated(), eval.memoryBytes());
}

TEST(Evaluator, MethodLabels)
{
    MethodSpec spec = defaultSpec(Method::LLut);
    spec.placement = Placement::Wram;
    EXPECT_EQ("L-LUT interp. (WRAM)", methodLabel(spec));
    spec.interpolated = false;
    spec.method = Method::MLut;
    EXPECT_EQ("M-LUT (WRAM)", methodLabel(spec));
    spec.method = Method::Cordic;
    EXPECT_EQ("CORDIC", methodLabel(spec));
}

} // namespace
} // namespace transpim
} // namespace tpl
