/**
 * @file
 * Concurrency properties: FunctionEvaluator::eval is const and
 * stateless after construction, so independent host threads may share
 * one evaluator; separate DpuCore instances are fully independent.
 * (TaskletContext itself is single-threaded by design - the simulator
 * serializes tasklets and reconstructs their interleaving analytically.)
 *
 * Also the home of the parallel-engine guarantees: ThreadPool
 * correctness (full coverage, exception propagation, reentrancy) and
 * the determinism contract of PimSystem::launchAll — a multi-DPU
 * workload run with 1 simulation thread and with N threads must
 * produce bit-identical LaunchStats per DPU.
 */

#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pimsim/fault/fault.h"
#include "pimsim/obs/metrics.h"
#include "pimsim/obs/trace.h"
#include "pimsim/system.h"
#include "pimsim/thread_pool.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {
namespace {

TEST(Concurrency, SharedEvaluatorAcrossHostThreads)
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Host;
    spec.log2Entries = 12;
    auto eval = FunctionEvaluator::create(Function::Sin, spec);

    std::atomic<int> mismatches{0};
    auto worker = [&](uint32_t seed) {
        for (int i = 0; i < 5000; ++i) {
            float x = 6.28f * ((seed * 2654435761u + i * 40503u) %
                               10000u) /
                      10000.0f;
            float y = eval.eval(x, nullptr);
            if (std::abs(y - std::sin((double)x)) > 1e-5)
                ++mismatches;
        }
    };
    std::vector<std::thread> pool;
    for (uint32_t t = 0; t < 4; ++t)
        pool.emplace_back(worker, t + 1);
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(0, mismatches.load());
}

TEST(Concurrency, IndependentDpusOnSeparateThreads)
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Wram;
    spec.log2Entries = 10;

    std::atomic<int> failures{0};
    auto worker = [&]() {
        // Each thread owns its evaluator + core end to end.
        auto eval = FunctionEvaluator::create(Function::Tanh, spec);
        sim::DpuCore dpu;
        eval.attach(dpu);
        dpu.launch(4, [&](sim::TaskletContext& ctx) {
            for (int i = 0; i < 200; ++i) {
                float x = -4.0f + 8.0f * i / 200.0f;
                float y = eval.eval(x, &ctx);
                if (std::abs(y - std::tanh((double)x)) > 1e-3)
                    ++failures;
            }
        });
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t)
        pool.emplace_back(worker);
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(0, failures.load());
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    sim::ThreadPool pool(4);
    constexpr uint64_t n = 10007;
    std::vector<std::atomic<uint32_t>> hits(n);
    pool.parallelFor(n, [&](uint64_t i) { ++hits[i]; });
    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(1u, hits[i].load()) << "index " << i;
}

TEST(ThreadPool, PropagatesFirstException)
{
    sim::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(
                     100,
                     [&](uint64_t i) {
                         if (i == 42)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The pool survives a failed job and runs the next one.
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(100, [&](uint64_t i) { sum += i; });
    EXPECT_EQ(4950u, sum.load());
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    sim::ThreadPool pool(4);
    std::atomic<uint64_t> total{0};
    pool.parallelFor(8, [&](uint64_t) {
        // Reentrant call from a participant must not deadlock.
        pool.parallelFor(16, [&](uint64_t) { ++total; });
    });
    EXPECT_EQ(8u * 16u, total.load());
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    sim::ThreadPool pool(1);
    uint64_t sum = 0; // no atomics needed: single-threaded by contract
    pool.parallelFor(1000, [&](uint64_t i) { sum += i; });
    EXPECT_EQ(499500u, sum);
}

// ----------------------------------------------- launchAll determinism

namespace {

/**
 * Run the same multi-DPU streaming workload (scattered per-DPU inputs,
 * evaluator-driven kernel, gathered outputs) on @p sys and return the
 * gathered bytes. Per-DPU stats are left in each core's lastLaunch().
 */
std::vector<float>
runDeterminismWorkload(sim::PimSystem& sys, uint32_t perDpu)
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Wram;
    spec.log2Entries = 10;
    auto eval = FunctionEvaluator::create(Function::Sin, spec);

    uint32_t inAddr = 0, outAddr = 0;
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        eval.attach(sys.dpu(d));
        inAddr = sys.dpu(d).mramAlloc(perDpu * sizeof(float));
        outAddr = sys.dpu(d).mramAlloc(perDpu * sizeof(float));
    }

    // Distinct data per DPU: softfloat instruction counts are
    // data-dependent, so any cross-core state mixup shows up in the
    // per-DPU stats, not just in the bytes.
    auto inputs = uniformFloats(
        static_cast<uint64_t>(perDpu) * sys.numDpus(), 0.0f, 6.28f,
        0xdecaf);
    sys.scatterToMram(inAddr, inputs.data(), perDpu * sizeof(float));

    sys.launchAll(8, [&](sim::TaskletContext& ctx) {
        constexpr uint32_t chunk = 64;
        float buf[chunk];
        uint32_t chunks = (perDpu + chunk - 1) / chunk;
        for (uint32_t c = ctx.taskletId(); c < chunks;
             c += ctx.numTasklets()) {
            uint32_t beg = c * chunk;
            uint32_t cnt = std::min(chunk, perDpu - beg);
            ctx.mramRead(inAddr + beg * sizeof(float), buf,
                         cnt * sizeof(float));
            for (uint32_t i = 0; i < cnt; ++i) {
                ctx.charge(4);
                buf[i] = eval.eval(buf[i], &ctx);
            }
            ctx.mramWrite(outAddr + beg * sizeof(float), buf,
                          cnt * sizeof(float));
        }
    });

    std::vector<float> out(static_cast<uint64_t>(perDpu) *
                           sys.numDpus());
    sys.gatherFromMram(outAddr, out.data(), perDpu * sizeof(float));
    return out;
}

} // namespace

TEST(Determinism, ParallelLaunchMatchesSerialBitForBit)
{
    constexpr uint32_t numDpus = 6;
    constexpr uint32_t perDpu = 2048;

    sim::PimSystem serial(numDpus);
    serial.setSimThreads(1); // the serial reference path
    std::vector<float> serialOut = runDeterminismWorkload(serial, perDpu);

    // A dedicated 4-lane pool guarantees genuinely threaded execution
    // even on single-core hosts / under TPL_SIM_THREADS=1.
    sim::ThreadPool fourLanes(4);
    sim::PimSystem parallel(numDpus);
    parallel.setSimThreads(4);
    parallel.setThreadPool(&fourLanes);
    std::vector<float> parallelOut =
        runDeterminismWorkload(parallel, perDpu);

    ASSERT_EQ(serialOut.size(), parallelOut.size());
    EXPECT_EQ(0, std::memcmp(serialOut.data(), parallelOut.data(),
                             serialOut.size() * sizeof(float)));

    EXPECT_EQ(serial.lastMaxCycles(), parallel.lastMaxCycles());
    for (uint32_t d = 0; d < numDpus; ++d) {
        const sim::LaunchStats& a = serial.dpu(d).lastLaunch();
        const sim::LaunchStats& b = parallel.dpu(d).lastLaunch();
        EXPECT_EQ(a.cycles, b.cycles) << "dpu " << d;
        EXPECT_EQ(a.totalInstructions, b.totalInstructions)
            << "dpu " << d;
        EXPECT_EQ(a.maxTaskletWork, b.maxTaskletWork) << "dpu " << d;
        EXPECT_EQ(a.dmaEngineCycles, b.dmaEngineCycles) << "dpu " << d;
        EXPECT_EQ(a.dmaBytes, b.dmaBytes) << "dpu " << d;
        EXPECT_EQ(a.tasklets, b.tasklets) << "dpu " << d;
        // Bit-identical energy, not approximately-equal: the energy is
        // a pure per-core function, so parallelism must not change it.
        EXPECT_EQ(0, std::memcmp(&a.energyJoules, &b.energyJoules,
                                 sizeof(double)))
            << "dpu " << d;
    }

    // DPUs received distinct data, so the strongest form of the check
    // is available: at least two DPUs must differ from each other.
    bool anyDiffer = false;
    for (uint32_t d = 1; d < numDpus; ++d)
        anyDiffer |= serial.dpu(d).lastLaunch().totalInstructions !=
                     serial.dpu(0).lastLaunch().totalInstructions;
    EXPECT_TRUE(anyDiffer);
}

TEST(Determinism, ObservabilityDoesNotPerturbModeledStats)
{
    constexpr uint32_t numDpus = 6;
    constexpr uint32_t perDpu = 2048;

    // Reference run with the obs layer off. Force it off rather than
    // assume it (TPL_OBS_METRICS / TPL_OBS_TRACE may have armed the
    // globals at process start), and restore the prior state after.
    const bool regWasEnabled = obs::Registry::global().enabled();
    const bool trcWasEnabled = obs::Tracer::global().enabled();
    obs::Registry::global().setEnabled(false);
    obs::Tracer::global().setEnabled(false);
    sim::ThreadPool fourLanes(4);
    sim::PimSystem plain(numDpus);
    plain.setSimThreads(4);
    plain.setThreadPool(&fourLanes);
    std::vector<float> plainOut = runDeterminismWorkload(plain, perDpu);

    // Same workload with metrics AND tracing armed: instrumentation
    // is purely observational, so every modeled statistic — including
    // the per-class attribution — must stay bit-identical.
    obs::Registry::global().setEnabled(true);
    obs::Tracer::global().setEnabled(true);
    sim::PimSystem observed(numDpus);
    observed.setSimThreads(4);
    observed.setThreadPool(&fourLanes);
    std::vector<float> observedOut =
        runDeterminismWorkload(observed, perDpu);
    EXPECT_GT(obs::Tracer::global().eventCount(), 0u);
    if (!trcWasEnabled)
        obs::Tracer::global().clear();
    if (!regWasEnabled)
        obs::Registry::global().reset();
    obs::Tracer::global().setEnabled(trcWasEnabled);
    obs::Registry::global().setEnabled(regWasEnabled);

    ASSERT_EQ(plainOut.size(), observedOut.size());
    EXPECT_EQ(0, std::memcmp(plainOut.data(), observedOut.data(),
                             plainOut.size() * sizeof(float)));
    EXPECT_EQ(plain.lastMaxCycles(), observed.lastMaxCycles());
    for (uint32_t d = 0; d < numDpus; ++d) {
        const sim::LaunchStats& a = plain.dpu(d).lastLaunch();
        const sim::LaunchStats& b = observed.dpu(d).lastLaunch();
        EXPECT_EQ(a.cycles, b.cycles) << "dpu " << d;
        EXPECT_EQ(a.totalInstructions, b.totalInstructions)
            << "dpu " << d;
        EXPECT_EQ(a.maxTaskletWork, b.maxTaskletWork) << "dpu " << d;
        EXPECT_EQ(a.dmaEngineCycles, b.dmaEngineCycles) << "dpu " << d;
        EXPECT_EQ(a.dmaBytes, b.dmaBytes) << "dpu " << d;
        EXPECT_EQ(a.stallCycles, b.stallCycles) << "dpu " << d;
        EXPECT_EQ(a.classInstructions, b.classInstructions)
            << "dpu " << d;
        EXPECT_EQ(a.opCounts, b.opCounts) << "dpu " << d;
        ASSERT_EQ(a.perTasklet.size(), b.perTasklet.size())
            << "dpu " << d;
        for (size_t t = 0; t < a.perTasklet.size(); ++t) {
            EXPECT_EQ(a.perTasklet[t].instructions,
                      b.perTasklet[t].instructions)
                << "dpu " << d << " tasklet " << t;
            EXPECT_EQ(a.perTasklet[t].classInstructions,
                      b.perTasklet[t].classInstructions)
                << "dpu " << d << " tasklet " << t;
        }
        EXPECT_EQ(0, std::memcmp(&a.energyJoules, &b.energyJoules,
                                 sizeof(double)))
            << "dpu " << d;
    }
}

// ------------------------------------------------ fault determinism

namespace {

/**
 * Every integer fault counter the injection layer maintains. The
 * backoff RealAccum is deliberately absent: double accumulation order
 * is thread-dependent, which is exactly why the determinism contract
 * is stated over event counts and modeled stats, not wall-side sums.
 */
const char* const kFaultCounters[] = {
    "fault/mem/stuck_asserts",    "fault/mem/bit_flips",
    "fault/dpu/hard_fail",        "fault/dpu/straggler",
    "fault/dma/corrupt",          "fault/dma/timeout",
    "fault/dma/timeout_stall_cycles", "fault/transfer/timeout",
    "fault/transfer/corrupt",     "fault/transfer/retries",
    "fault/transfer/failures",    "fault/launch/failed",
    "fault/launch/timeout",       "fault/launch/masked_skips",
};

std::vector<uint64_t>
snapshotFaultCounters()
{
    std::vector<uint64_t> values;
    for (const char* name : kFaultCounters)
        values.push_back(
            obs::Registry::global().counter(name).value());
    return values;
}

/** A plan touching every probabilistic hook: launch, DMA, memory and
 * host-transfer faults all drawing from the same seeded streams. */
sim::fault::FaultPlan
mixedFaultPlan()
{
    sim::fault::FaultPlan plan;
    plan.seed = 0xfab;
    sim::fault::FaultSpec straggler;
    straggler.kind = sim::fault::FaultKind::DpuStraggler;
    straggler.probability = 0.5;
    straggler.slowdown = 2.0;
    plan.faults.push_back(straggler);
    sim::fault::FaultSpec hardFail;
    hardFail.kind = sim::fault::FaultKind::DpuHardFail;
    hardFail.probability = 0.2;
    plan.faults.push_back(hardFail);
    sim::fault::FaultSpec dmaTimeout;
    dmaTimeout.kind = sim::fault::FaultKind::DmaTimeout;
    dmaTimeout.probability = 0.01;
    dmaTimeout.extraStallCycles = 700;
    plan.faults.push_back(dmaTimeout);
    sim::fault::FaultSpec xferTimeout;
    xferTimeout.kind = sim::fault::FaultKind::TransferTimeout;
    xferTimeout.probability = 0.1;
    plan.faults.push_back(xferTimeout);
    sim::fault::FaultSpec stuck;
    stuck.kind = sim::fault::FaultKind::MramStuckBit;
    stuck.dpu = 1;
    stuck.addr = 64;
    stuck.bit = 3;
    plan.faults.push_back(stuck);
    return plan;
}

} // namespace

TEST(Determinism, FaultPlanIsThreadCountIndependent)
{
    constexpr uint32_t numDpus = 8;
    constexpr uint32_t perDpu = 1024;
    const sim::fault::FaultPlan plan = mixedFaultPlan();

    const bool regWasEnabled = obs::Registry::global().enabled();
    obs::Registry::global().setEnabled(true);

    // Serial reference: the fault draws are pure hashes of
    // (seed, spec, dpu, event counter), so the thread schedule must
    // not be able to change which faults fire.
    obs::Registry::global().reset();
    sim::PimSystem serial(numDpus);
    serial.setSimThreads(1);
    serial.armFaults(plan);
    std::vector<float> serialOut =
        runDeterminismWorkload(serial, perDpu);
    std::vector<uint64_t> serialCounters = snapshotFaultCounters();

    obs::Registry::global().reset();
    sim::ThreadPool fourLanes(4);
    sim::PimSystem parallel(numDpus);
    parallel.setSimThreads(4);
    parallel.setThreadPool(&fourLanes);
    parallel.armFaults(plan);
    std::vector<float> parallelOut =
        runDeterminismWorkload(parallel, perDpu);
    std::vector<uint64_t> parallelCounters = snapshotFaultCounters();

    if (!regWasEnabled)
        obs::Registry::global().reset();
    obs::Registry::global().setEnabled(regWasEnabled);

    // The plan must actually have fired, or the test is vacuous.
    uint64_t fired = 0;
    for (uint64_t v : serialCounters)
        fired += v;
    ASSERT_GT(fired, 0u);

    // Identical fault/* counters, event for event.
    for (size_t i = 0; i < std::size(kFaultCounters); ++i)
        EXPECT_EQ(serialCounters[i], parallelCounters[i])
            << kFaultCounters[i];

    // Bit-identical gathered bytes (including zeros from masked
    // cores) and per-DPU modeled stats.
    ASSERT_EQ(serialOut.size(), parallelOut.size());
    EXPECT_EQ(0, std::memcmp(serialOut.data(), parallelOut.data(),
                             serialOut.size() * sizeof(float)));
    EXPECT_EQ(serial.lastMaxCycles(), parallel.lastMaxCycles());
    for (uint32_t d = 0; d < numDpus; ++d) {
        const sim::LaunchStats& a = serial.dpu(d).lastLaunch();
        const sim::LaunchStats& b = parallel.dpu(d).lastLaunch();
        EXPECT_EQ(a.cycles, b.cycles) << "dpu " << d;
        EXPECT_EQ(a.totalInstructions, b.totalInstructions)
            << "dpu " << d;
        EXPECT_EQ(a.stallCycles, b.stallCycles) << "dpu " << d;
        EXPECT_EQ(a.dmaEngineCycles, b.dmaEngineCycles) << "dpu " << d;
        EXPECT_EQ(a.failed, b.failed) << "dpu " << d;
        EXPECT_EQ(a.faultEvents, b.faultEvents) << "dpu " << d;
        EXPECT_EQ(a.classInstructions, b.classInstructions)
            << "dpu " << d;
        EXPECT_EQ(0, std::memcmp(&a.energyJoules, &b.energyJoules,
                                 sizeof(double)))
            << "dpu " << d;
        EXPECT_EQ(serial.isMasked(d), parallel.isMasked(d))
            << "dpu " << d;
    }

    // The launch report — degraded-mode bookkeeping — matches too.
    const sim::LaunchReport& ra = serial.lastLaunchReport();
    const sim::LaunchReport& rb = parallel.lastLaunchReport();
    EXPECT_EQ(ra.attempted, rb.attempted);
    EXPECT_EQ(ra.masked, rb.masked);
    EXPECT_EQ(ra.failedDpus, rb.failedDpus);
    EXPECT_EQ(ra.maxCycles, rb.maxCycles);
    EXPECT_EQ(ra.faultEvents, rb.faultEvents);
}

} // namespace
} // namespace transpim
} // namespace tpl
