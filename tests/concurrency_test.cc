/**
 * @file
 * Concurrency properties: FunctionEvaluator::eval is const and
 * stateless after construction, so independent host threads may share
 * one evaluator; separate DpuCore instances are fully independent.
 * (TaskletContext itself is single-threaded by design - the simulator
 * serializes tasklets and reconstructs their interleaving analytically.)
 */

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {
namespace {

TEST(Concurrency, SharedEvaluatorAcrossHostThreads)
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Host;
    spec.log2Entries = 12;
    auto eval = FunctionEvaluator::create(Function::Sin, spec);

    std::atomic<int> mismatches{0};
    auto worker = [&](uint32_t seed) {
        for (int i = 0; i < 5000; ++i) {
            float x = 6.28f * ((seed * 2654435761u + i * 40503u) %
                               10000u) /
                      10000.0f;
            float y = eval.eval(x, nullptr);
            if (std::abs(y - std::sin((double)x)) > 1e-5)
                ++mismatches;
        }
    };
    std::vector<std::thread> pool;
    for (uint32_t t = 0; t < 4; ++t)
        pool.emplace_back(worker, t + 1);
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(0, mismatches.load());
}

TEST(Concurrency, IndependentDpusOnSeparateThreads)
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Wram;
    spec.log2Entries = 10;

    std::atomic<int> failures{0};
    auto worker = [&]() {
        // Each thread owns its evaluator + core end to end.
        auto eval = FunctionEvaluator::create(Function::Tanh, spec);
        sim::DpuCore dpu;
        eval.attach(dpu);
        dpu.launch(4, [&](sim::TaskletContext& ctx) {
            for (int i = 0; i < 200; ++i) {
                float x = -4.0f + 8.0f * i / 200.0f;
                float y = eval.eval(x, &ctx);
                if (std::abs(y - std::tanh((double)x)) > 1e-3)
                    ++failures;
            }
        });
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t)
        pool.emplace_back(worker);
    for (auto& th : pool)
        th.join();
    EXPECT_EQ(0, failures.load());
}

} // namespace
} // namespace transpim
} // namespace tpl
