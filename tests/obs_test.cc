/**
 * @file
 * Observability layer tests: the exact cycle-attribution partition of
 * LaunchStats, the Chrome trace export's structural invariants, the
 * metrics registry and its JSON dump, the per-direction x per-mode
 * transfer split, and the sanitizer-to-registry wiring.
 *
 * The JSON consumers use a deliberately small recursive-descent parser
 * (no external dependency): strict enough to reject the malformations
 * that would break Perfetto or `python -m json.tool`, small enough to
 * audit.
 */

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/emu_int.h"
#include "pimsim/analysis/sanitizer.h"
#include "pimsim/obs/metrics.h"
#include "pimsim/obs/trace.h"
#include "pimsim/system.h"
#include "softfloat/softfloat.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace {

// ------------------------------------------------ mini JSON parser

struct Json
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    bool has(const std::string& key) const
    {
        return type == Type::Object && object.count(key) > 0;
    }

    const Json& at(const std::string& key) const
    {
        return object.at(key);
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    /** Parse the full document; fails the test on any malformation. */
    Json parse()
    {
        Json v = parseValue();
        skipWs();
        EXPECT_EQ(pos_, text_.size())
            << "trailing garbage after JSON document";
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            ADD_FAILURE() << "unexpected end of JSON at " << pos_;
            return '\0';
        }
        return text_[pos_];
    }

    void expect(char c)
    {
        char got = peek();
        ASSERT_EQ(c, got) << "at offset " << pos_;
        ++pos_;
    }

    Json parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default:  return parseNumber();
        }
    }

    Json parseObject()
    {
        Json v;
        v.type = Json::Type::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            Json key = parseString();
            expect(':');
            v.object[key.str] = parseValue();
            char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',') {
                ADD_FAILURE() << "expected ',' at offset " << pos_;
                return v;
            }
        }
    }

    Json parseArray()
    {
        Json v;
        v.type = Json::Type::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',') {
                ADD_FAILURE() << "expected ',' at offset " << pos_;
                return v;
            }
        }
    }

    Json parseString()
    {
        Json v;
        v.type = Json::Type::String;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    ADD_FAILURE() << "dangling escape";
                    return v;
                }
                char e = text_[pos_++];
                switch (e) {
                  case '"':  v.str += '"';  break;
                  case '\\': v.str += '\\'; break;
                  case '/':  v.str += '/';  break;
                  case 'b':  v.str += '\b'; break;
                  case 'f':  v.str += '\f'; break;
                  case 'n':  v.str += '\n'; break;
                  case 'r':  v.str += '\r'; break;
                  case 't':  v.str += '\t'; break;
                  case 'u': {
                      if (pos_ + 4 > text_.size()) {
                          ADD_FAILURE() << "truncated \\u escape";
                          return v;
                      }
                      v.str += text_.substr(pos_, 4); // opaque
                      pos_ += 4;
                      break;
                  }
                  default:
                      ADD_FAILURE()
                          << "bad escape '\\" << e << "'";
                }
            } else {
                EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
                    << "unescaped control character in string";
                v.str += c;
            }
        }
        expect('"');
        return v;
    }

    Json parseBool()
    {
        Json v;
        v.type = Json::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            ADD_FAILURE() << "bad literal at " << pos_;
        }
        return v;
    }

    Json parseNull()
    {
        Json v;
        EXPECT_EQ(0, text_.compare(pos_, 4, "null")) << "at " << pos_;
        pos_ += 4;
        return v;
    }

    Json parseNumber()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        Json v;
        v.type = Json::Type::Number;
        if (pos_ == start) {
            ADD_FAILURE() << "expected a number at offset " << start;
            return v;
        }
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    const std::string& text_;
    size_t pos_ = 0;
};

Json
parseJson(const std::string& text)
{
    return JsonParser(text).parse();
}

// ------------------------------------- LaunchStats cycle attribution

/**
 * A kernel touching every InstrClass: IntAlu (charge), IntMulDiv
 * (emuMul32/emuDiv32), SoftFloat (sf::add/mul), WramAccess
 * (chargeWramAccess), DmaIssue (mramRead/mramWrite) and Barrier.
 */
sim::LaunchStats
runAllClassKernel(sim::DpuCore& dpu, uint32_t tasklets,
                  uint32_t elements)
{
    uint32_t bytes = elements * sizeof(float);
    uint32_t inAddr = dpu.mramAlloc(bytes);
    uint32_t outAddr = dpu.mramAlloc(bytes);
    std::vector<float> init(elements);
    for (uint32_t i = 0; i < elements; ++i)
        init[i] = 0.25f * static_cast<float>(i % 97);
    dpu.hostWriteMram(inAddr, init.data(), bytes);

    return dpu.launch(tasklets, [&](sim::TaskletContext& ctx) {
        constexpr uint32_t chunk = 64;
        float buf[chunk];
        uint32_t chunks = (elements + chunk - 1) / chunk;
        for (uint32_t c = ctx.taskletId(); c < chunks;
             c += ctx.numTasklets()) {
            uint32_t beg = c * chunk;
            uint32_t cnt = std::min(chunk, elements - beg);
            ctx.mramRead(inAddr + beg * sizeof(float), buf,
                         cnt * sizeof(float));
            for (uint32_t i = 0; i < cnt; ++i) {
                ctx.charge(3);
                ctx.chargeWramAccess(2);
                uint32_t scaled = static_cast<uint32_t>(
                    emuMul32(beg + i, 2654435761u, &ctx));
                (void)emuDiv32(scaled | 1u, 97u, &ctx);
                buf[i] = sf::mul(sf::add(buf[i], 0.5f, &ctx), 1.5f,
                                 &ctx);
            }
            ctx.mramWrite(outAddr + beg * sizeof(float), buf,
                          cnt * sizeof(float));
        }
        ctx.barrier();
    });
}

class LaunchBreakdown : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(LaunchBreakdown, ClassPartitionSumsExactlyToCycles)
{
    const uint32_t tasklets = GetParam();
    sim::DpuCore dpu;
    sim::LaunchStats stats = runAllClassKernel(dpu, tasklets, 1024);

    // Every class the kernel exercises shows up.
    using C = InstrClass;
    EXPECT_GT(stats.classInstructions[static_cast<int>(C::IntAlu)], 0u);
    EXPECT_GT(stats.classInstructions[static_cast<int>(C::IntMulDiv)],
              0u);
    EXPECT_GT(stats.classInstructions[static_cast<int>(C::SoftFloat)],
              0u);
    EXPECT_GT(stats.classInstructions[static_cast<int>(C::WramAccess)],
              0u);
    EXPECT_GT(stats.classInstructions[static_cast<int>(C::DmaIssue)],
              0u);

    // Exactly one barrier instruction per tasklet.
    EXPECT_EQ(tasklets,
              stats.classInstructions[static_cast<int>(C::Barrier)]);

    // The partition is exact: classes sum to the instruction total,
    // and adding the stall residual reaches the cycle total with no
    // cycle double-counted or lost.
    uint64_t classSum = std::accumulate(
        stats.classInstructions.begin(), stats.classInstructions.end(),
        uint64_t{0});
    EXPECT_EQ(stats.totalInstructions, classSum);
    EXPECT_EQ(stats.cycles, classSum + stats.stallCycles);

    // Per-tasklet attribution: right shape, same partition per
    // tasklet, and tasklet slices sum to the launch totals.
    ASSERT_EQ(tasklets, stats.perTasklet.size());
    uint64_t taskletInstrSum = 0;
    std::array<uint64_t, numInstrClasses> classFromTasklets{};
    for (const sim::TaskletStats& ts : stats.perTasklet) {
        uint64_t perClassSum = std::accumulate(
            ts.classInstructions.begin(), ts.classInstructions.end(),
            uint64_t{0});
        EXPECT_EQ(ts.instructions, perClassSum);
        taskletInstrSum += ts.instructions;
        for (int c = 0; c < numInstrClasses; ++c)
            classFromTasklets[c] += ts.classInstructions[c];
    }
    EXPECT_EQ(stats.totalInstructions, taskletInstrSum);
    EXPECT_EQ(stats.classInstructions, classFromTasklets);

    // Operation tallies flow through: the softfloat helpers noted
    // one FloatAdd and one FloatMul per element.
    EXPECT_EQ(1024u,
              stats.opCounts[static_cast<int>(OpClass::FloatAdd)]);
    EXPECT_EQ(1024u,
              stats.opCounts[static_cast<int>(OpClass::FloatMul)]);
}

INSTANTIATE_TEST_SUITE_P(TaskletCounts, LaunchBreakdown,
                         ::testing::Values(1u, 2u, 11u, 16u));

// ----------------------------------------------------- metrics registry

TEST(Metrics, RegistryAccumulatesAndDumpsValidJson)
{
    obs::Registry reg;
    reg.setEnabled(true);

    reg.counter("pimsim/dpu/cycles").add(100);
    reg.counter("pimsim/dpu/cycles").add(23);
    reg.counter("pimsim/dpu/launches").add(1);
    reg.real("pimsim/system/modeled_seconds").add(0.5);
    reg.real("pimsim/system/modeled_seconds").add(0.25);
    reg.histogram("pimsim/dpu/cycles_per_launch").observe(0);
    reg.histogram("pimsim/dpu/cycles_per_launch").observe(7);
    reg.histogram("pimsim/dpu/cycles_per_launch").observe(1u << 20);

    EXPECT_EQ(123u, reg.counter("pimsim/dpu/cycles").value());

    Json doc = parseJson(reg.toJson());
    ASSERT_EQ(Json::Type::Object, doc.type);
    ASSERT_TRUE(doc.has("counters"));
    ASSERT_TRUE(doc.has("reals"));
    ASSERT_TRUE(doc.has("histograms"));

    EXPECT_EQ(123.0,
              doc.at("counters").at("pimsim/dpu/cycles").number);
    EXPECT_EQ(1.0,
              doc.at("counters").at("pimsim/dpu/launches").number);
    EXPECT_DOUBLE_EQ(
        0.75,
        doc.at("reals").at("pimsim/system/modeled_seconds").number);

    const Json& hist =
        doc.at("histograms").at("pimsim/dpu/cycles_per_launch");
    EXPECT_EQ(3.0, hist.at("count").number);
    EXPECT_EQ(0.0 + 7.0 + (1u << 20), hist.at("sum").number);
    EXPECT_EQ(0.0, hist.at("min").number);
    EXPECT_EQ(static_cast<double>(1u << 20), hist.at("max").number);
    EXPECT_EQ(static_cast<double>(
                  obs::Histogram::kDefaultSubBucketBits),
              hist.at("sub_bucket_bits").number);
    // Quantile keys ride along for any non-empty histogram.
    EXPECT_TRUE(hist.has("p50"));
    EXPECT_TRUE(hist.has("p99"));
    // Log-linear buckets: small samples land exactly, large ones in
    // the sub-bucket the index math names.
    const uint32_t bits = obs::Histogram::kDefaultSubBucketBits;
    const Json& buckets = hist.at("buckets");
    ASSERT_EQ(Json::Type::Array, buckets.type);
    EXPECT_EQ(1.0,
              buckets.array.at(obs::Histogram::bucketIndex(0, bits))
                  .number);
    EXPECT_EQ(1.0,
              buckets.array.at(obs::Histogram::bucketIndex(7, bits))
                  .number);
    EXPECT_EQ(
        1.0,
        buckets.array
            .at(obs::Histogram::bucketIndex(uint64_t{1} << 20, bits))
            .number);

    // reset() zeroes values but keeps the registrations.
    reg.reset();
    EXPECT_EQ(0u, reg.counter("pimsim/dpu/cycles").value());
    Json cleared = parseJson(reg.toJson());
    EXPECT_TRUE(cleared.at("counters").has("pimsim/dpu/cycles"));
}

TEST(Metrics, DisabledRegistryStillSafeToUse)
{
    obs::Registry reg;
    EXPECT_FALSE(reg.enabled());
    // Report sites check enabled() themselves; direct use must still
    // be safe (handles are real regardless of the gate).
    reg.counter("x").add(1);
    EXPECT_EQ(1u, reg.counter("x").value());
}

TEST(Metrics, NamesAreSanitizedIntoValidJson)
{
    obs::Registry reg;
    reg.setEnabled(true);
    reg.counter("weird\"name\\with\nstuff").add(1);
    reg.histogram("hist\"with\\escapes").observe(42);
    Json doc = parseJson(reg.toJson()); // must not blow up the parser
    ASSERT_EQ(1u, doc.at("counters").object.size());
    // The sanitized name round-trips: what toJson emitted is the key
    // the consumer reads back, with no quote/backslash survivors.
    const std::string key = doc.at("counters").object.begin()->first;
    EXPECT_EQ(std::string::npos, key.find('"'));
    EXPECT_EQ(std::string::npos, key.find('\\'));
    EXPECT_EQ(1.0, doc.at("counters").at(key).number);
    ASSERT_EQ(1u, doc.at("histograms").object.size());
    EXPECT_EQ(
        1.0,
        doc.at("histograms").object.begin()->second.at("count").number);
}

TEST(Metrics, HistogramEdgeSamples)
{
    obs::Histogram h;
    h.observe(0);
    h.observe(1);
    h.observe(UINT64_MAX);

    EXPECT_EQ(3u, h.count());
    EXPECT_EQ(0u, h.minValue());
    EXPECT_EQ(UINT64_MAX, h.maxValue());
    // sum wraps mod 2^64: 0 + 1 + (2^64 - 1) == 0.
    EXPECT_EQ(0u, h.sum());

    const uint32_t bits = h.subBucketBits();
    EXPECT_EQ(0u, obs::Histogram::bucketIndex(0, bits));
    EXPECT_EQ(1u, obs::Histogram::bucketIndex(1, bits));
    // UINT64_MAX lands in the very last bucket, whose upper edge is
    // exactly UINT64_MAX — no sample can overflow the array.
    const uint32_t last = h.numBuckets() - 1;
    EXPECT_EQ(last, obs::Histogram::bucketIndex(UINT64_MAX, bits));
    EXPECT_EQ(UINT64_MAX, h.bucketHigh(last));
    EXPECT_EQ(1u, h.bucket(0));
    EXPECT_EQ(1u, h.bucket(1));
    EXPECT_EQ(1u, h.bucket(last));

    // Quantiles: exact at the small end, clamped to max at the top.
    EXPECT_EQ(0u, h.quantile(0.0));
    EXPECT_EQ(1u, h.quantile(0.5));
    EXPECT_EQ(UINT64_MAX, h.quantile(1.0));
}

TEST(Metrics, HistogramBucketEdgesTileTheDomain)
{
    obs::Histogram h(4);
    // Every bucket's range is [low, high], high(i) + 1 == low(i + 1),
    // and the index math maps both edges back to the bucket.
    for (uint32_t i = 0; i < h.numBuckets(); ++i) {
        const uint64_t lo = h.bucketLow(i);
        const uint64_t hi = h.bucketHigh(i);
        ASSERT_LE(lo, hi);
        ASSERT_EQ(i, obs::Histogram::bucketIndex(lo, 4));
        ASSERT_EQ(i, obs::Histogram::bucketIndex(hi, 4));
        if (i + 1 < h.numBuckets()) {
            ASSERT_EQ(hi + 1, h.bucketLow(i + 1));
        }
    }
}

TEST(Metrics, HistogramQuantileRelativeErrorBound)
{
    // Property test against the documented guarantee: for any sample
    // multiset, quantile(q) >= the true nearest-rank quantile and
    // <= true * (1 + 2^-B); exact below 2^(B+1).
    const uint32_t bits = obs::Histogram::kDefaultSubBucketBits;
    obs::Histogram h(bits);
    std::vector<uint64_t> samples;
    uint64_t x = 0x9e3779b97f4a7c15ull; // deterministic xorshift
    for (int i = 0; i < 5000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Mix magnitudes: spread samples across ~48 octaves.
        uint64_t s = x >> (x % 48);
        samples.push_back(s);
        h.observe(s);
    }
    std::sort(samples.begin(), samples.end());
    const double relBound = 1.0 / static_cast<double>(1u << bits);
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
        uint64_t rank = static_cast<uint64_t>(
            std::ceil(q * static_cast<double>(samples.size())));
        rank = std::max<uint64_t>(1, std::min<uint64_t>(
                                         rank, samples.size()));
        const uint64_t exact = samples[rank - 1];
        const uint64_t approx = h.quantile(q);
        ASSERT_GE(approx, exact) << "q=" << q;
        if (exact < (uint64_t{1} << (bits + 1)))
            ASSERT_EQ(approx, exact) << "q=" << q;
        else
            ASSERT_LE(static_cast<double>(approx),
                      static_cast<double>(exact) * (1.0 + relBound))
                << "q=" << q;
    }
}

TEST(Metrics, HistogramMergeFrom)
{
    obs::Histogram a, b, whole;
    for (uint64_t s : {uint64_t{1}, uint64_t{5}, uint64_t{100},
                       uint64_t{1} << 30}) {
        a.observe(s);
        whole.observe(s);
    }
    for (uint64_t s : {uint64_t{0}, uint64_t{7}, uint64_t{9000},
                       UINT64_MAX}) {
        b.observe(s);
        whole.observe(s);
    }
    ASSERT_TRUE(a.mergeFrom(b));
    EXPECT_EQ(whole.count(), a.count());
    EXPECT_EQ(whole.sum(), a.sum());
    EXPECT_EQ(whole.minValue(), a.minValue());
    EXPECT_EQ(whole.maxValue(), a.maxValue());
    for (uint32_t i = 0; i < whole.numBuckets(); ++i)
        ASSERT_EQ(whole.bucket(i), a.bucket(i)) << "bucket " << i;
    for (double q : {0.25, 0.5, 0.99})
        EXPECT_EQ(whole.quantile(q), a.quantile(q));

    // Mismatched resolutions refuse to merge (and change nothing).
    obs::Histogram coarse(2);
    const uint64_t before = a.count();
    EXPECT_FALSE(a.mergeFrom(coarse));
    EXPECT_FALSE(coarse.mergeFrom(a));
    EXPECT_EQ(before, a.count());
    EXPECT_EQ(0u, coarse.count());
}

TEST(Metrics, RegistryMergeFromAggregatesWithoutDoubleCounting)
{
    obs::Registry shardA, shardB, total;
    shardA.counter("serve/waves").add(3);
    shardA.real("serve/seconds").add(0.5);
    shardA.histogram("serve/latency").observe(100);
    shardB.counter("serve/waves").add(4);
    shardB.counter("serve/only_b").add(1);
    shardB.real("serve/seconds").add(0.25);
    shardB.histogram("serve/latency").observe(900);

    EXPECT_EQ(0u, total.mergeFrom(shardA));
    EXPECT_EQ(0u, total.mergeFrom(shardB));
    EXPECT_EQ(7u, total.counter("serve/waves").value());
    EXPECT_EQ(1u, total.counter("serve/only_b").value());
    EXPECT_DOUBLE_EQ(0.75, total.real("serve/seconds").value());
    EXPECT_EQ(2u, total.histogram("serve/latency").count());
    EXPECT_EQ(100u, total.histogram("serve/latency").minValue());
    EXPECT_EQ(900u, total.histogram("serve/latency").maxValue());

    // Self-merge is a no-op, not a double count.
    EXPECT_EQ(0u, total.mergeFrom(total));
    EXPECT_EQ(7u, total.counter("serve/waves").value());

    // Resolution conflicts are skipped and counted, not merged.
    obs::Registry coarse;
    coarse.histogram("serve/latency", 2).observe(5);
    EXPECT_EQ(1u, total.mergeFrom(coarse));
    EXPECT_EQ(2u, total.histogram("serve/latency").count());

    // histogramNames covers every registered family, sorted.
    const std::vector<std::string> names = total.histogramNames();
    ASSERT_EQ(1u, names.size());
    EXPECT_EQ("serve/latency", names[0]);
    EXPECT_NE(nullptr, total.findHistogram("serve/latency"));
    EXPECT_EQ(nullptr, total.findHistogram("no/such/family"));
}

TEST(Metrics, ResetUnderConcurrentObserveIsSafe)
{
    // reset() racing observe() must stay memory-safe (ASan/TSan
    // clean): counts may land on either side of the reset, but no
    // torn state and no out-of-bounds bucket writes.
    obs::Registry reg;
    reg.setEnabled(true);
    obs::Histogram& h = reg.histogram("race/hist");
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t)
        writers.emplace_back([&h, &stop, t] {
            uint64_t x = 0x243f6a8885a308d3ull + t;
            while (!stop.load(std::memory_order_relaxed)) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.observe(x >> (x % 60));
            }
        });
    for (int i = 0; i < 200; ++i) {
        reg.reset();
        (void)h.quantile(0.99);
        (void)reg.toJson();
    }
    stop.store(true);
    for (std::thread& w : writers)
        w.join();
    SUCCEED();
}

// -------------------------------------------------------- trace export

TEST(Trace, ChromeExportIsWellFormedAndProperlyNested)
{
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.setEnabled(true);

    {
        // A real multi-DPU workload: transfers + launchAll, with the
        // thread pool emitting per-DPU and per-tasklet events from
        // worker threads.
        sim::PimSystem sys(3);
        uint32_t perDpu = 512;
        uint32_t addr = 0;
        for (uint32_t d = 0; d < sys.numDpus(); ++d)
            addr = sys.dpu(d).mramAlloc(perDpu * sizeof(float));
        std::vector<float> data(perDpu * sys.numDpus(), 1.0f);
        sys.scatterToMram(addr, data.data(), perDpu * sizeof(float));
        sys.launchAll(4, [&](sim::TaskletContext& ctx) {
            float buf[64];
            ctx.mramRead(addr, buf, sizeof buf);
            for (int i = 0; i < 64; ++i) {
                ctx.charge(2);
                buf[i] = sf::add(buf[i], 1.0f, &ctx);
            }
            ctx.mramWrite(addr, buf, sizeof buf);
            ctx.barrier();
        });
        sys.gatherFromMram(addr, data.data(), perDpu * sizeof(float));
    }

    tracer.setEnabled(false);
    ASSERT_GT(tracer.eventCount(), 0u);
    std::string json = tracer.toChromeJson();
    tracer.clear();

    Json doc = parseJson(json);
    ASSERT_EQ(Json::Type::Object, doc.type);
    ASSERT_TRUE(doc.has("traceEvents"));
    const std::vector<Json>& events = doc.at("traceEvents").array;
    ASSERT_GT(events.size(), 0u);

    std::map<double, std::vector<std::string>> stacks; // tid -> names
    std::vector<std::string> seenCats;
    double lastTs = -1.0;
    for (const Json& ev : events) {
        ASSERT_EQ(Json::Type::Object, ev.type);
        ASSERT_TRUE(ev.has("ph"));
        ASSERT_TRUE(ev.has("ts"));
        ASSERT_TRUE(ev.has("pid"));
        ASSERT_TRUE(ev.has("tid"));
        const std::string& ph = ev.at("ph").str;
        double ts = ev.at("ts").number;
        double tid = ev.at("tid").number;

        // The export contract: globally sorted by timestamp.
        EXPECT_GE(ts, lastTs);
        lastTs = ts;

        if (ph == "B") {
            ASSERT_TRUE(ev.has("name"));
            EXPECT_FALSE(ev.at("name").str.empty());
            seenCats.push_back(ev.at("cat").str);
            stacks[tid].push_back(ev.at("name").str);
        } else if (ph == "E") {
            // E must close an open B on the same thread: stack-
            // disciplined nesting per tid.
            ASSERT_FALSE(stacks[tid].empty())
                << "E event with no open span on tid " << tid;
            stacks[tid].pop_back();
        } else if (ph == "X") {
            ASSERT_TRUE(ev.has("dur"));
            EXPECT_GE(ev.at("dur").number, 0.0);
            ASSERT_TRUE(ev.has("name"));
            seenCats.push_back(ev.at("cat").str);
        } else {
            ASSERT_EQ("i", ph) << "unexpected phase " << ph;
        }
    }
    // Every span opened was closed.
    for (const auto& [tid, stack] : stacks)
        EXPECT_TRUE(stack.empty())
            << "unclosed span '" << stack.back() << "' on tid " << tid;

    // The taxonomy made it through: transfers, the launchAll phase,
    // per-DPU slices and per-tasklet slices are all present.
    auto sawCat = [&](const char* cat) {
        return std::find(seenCats.begin(), seenCats.end(), cat) !=
               seenCats.end();
    };
    EXPECT_TRUE(sawCat("xfer"));
    EXPECT_TRUE(sawCat("sim"));
    EXPECT_TRUE(sawCat("dpu"));
    EXPECT_TRUE(sawCat("tasklet"));
}

TEST(Trace, DisabledTracerRecordsNothing)
{
    obs::Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.begin("nope", "host");
    tracer.end();
    tracer.instant("nope", "host");
    tracer.flowBegin("nope", "serve", 1);
    EXPECT_EQ(0u, tracer.eventCount());
    Json doc = parseJson(tracer.toChromeJson());
    EXPECT_EQ(0u, doc.at("traceEvents").array.size());
}

TEST(Trace, FlowEventsCarryIdAndBindingPoint)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    tracer.begin("wave 0", "serve");
    tracer.flowBegin("req 17", "serve", 17);
    tracer.end();
    tracer.begin("wave 1", "serve");
    tracer.flowStep("req 17", "serve", 17);
    tracer.flowEnd("req 17", "serve", 17);
    tracer.end();

    Json doc = parseJson(tracer.toChromeJson());
    const auto& events = doc.at("traceEvents").array;
    int sSeen = 0, tSeen = 0, fSeen = 0;
    for (const Json& ev : events) {
        const std::string& ph = ev.at("ph").str;
        if (ph != "s" && ph != "t" && ph != "f")
            continue;
        ASSERT_TRUE(ev.has("id"));
        EXPECT_EQ(17.0, ev.at("id").number);
        EXPECT_EQ("req 17", ev.at("name").str);
        if (ph == "s")
            ++sSeen;
        if (ph == "t")
            ++tSeen;
        if (ph == "f") {
            ++fSeen;
            // Terminal flow points bind to the enclosing slice's end.
            ASSERT_TRUE(ev.has("bp"));
            EXPECT_EQ("e", ev.at("bp").str);
        }
    }
    EXPECT_EQ(1, sSeen);
    EXPECT_EQ(1, tSeen);
    EXPECT_EQ(1, fSeen);
}

// ------------------------------------------------ transfer-split lock

TEST(TransferSplit, CellsMatchTheOldCombinedTotals)
{
    sim::PimSystem sys(4);
    constexpr uint32_t kBytes = 64 * 1024;
    std::vector<uint8_t> buf(kBytes * sys.numDpus(), 0x5a);
    uint32_t addr = 0;
    for (uint32_t d = 0; d < sys.numDpus(); ++d)
        addr = sys.dpu(d).mramAlloc(kBytes);

    using M = sim::TransferMode;
    double bPar = sys.broadcastToMram(addr, buf.data(), kBytes);
    double bSer =
        sys.broadcastToMram(addr, buf.data(), kBytes, M::Serial);
    double sPar = sys.scatterToMram(addr, buf.data(), kBytes);
    double gSer =
        sys.gatherFromMram(addr, buf.data(), kBytes, M::Serial);

    // Returned values reproduce the pre-split single-number model:
    // a parallel broadcast streams the buffer once (overlapped), a
    // serial one streams it per DPU; scatter/gather always move the
    // full aggregate.
    uint64_t aggregate = uint64_t{kBytes} * sys.numDpus();
    EXPECT_DOUBLE_EQ(sys.parallelTransferSeconds(kBytes), bPar);
    EXPECT_DOUBLE_EQ(sys.serialTransferSeconds(aggregate), bSer);
    EXPECT_DOUBLE_EQ(sys.parallelTransferSeconds(aggregate), sPar);
    EXPECT_DOUBLE_EQ(sys.serialTransferSeconds(aggregate), gSer);

    // The per-cell accounting carries the same numbers, one cell per
    // (direction, mode), with nothing leaking across cells.
    const sim::TransferStats& ts = sys.transferStats();
    const int par = static_cast<int>(M::Parallel);
    const int ser = static_cast<int>(M::Serial);

    EXPECT_EQ(1u, ts.broadcast[par].transfers);
    EXPECT_EQ(uint64_t{kBytes}, ts.broadcast[par].bytes);
    EXPECT_DOUBLE_EQ(bPar, ts.broadcast[par].seconds);

    EXPECT_EQ(1u, ts.broadcast[ser].transfers);
    EXPECT_EQ(aggregate, ts.broadcast[ser].bytes);
    EXPECT_DOUBLE_EQ(bSer, ts.broadcast[ser].seconds);

    EXPECT_EQ(1u, ts.scatter[par].transfers);
    EXPECT_EQ(aggregate, ts.scatter[par].bytes);
    EXPECT_DOUBLE_EQ(sPar, ts.scatter[par].seconds);
    EXPECT_EQ(0u, ts.scatter[ser].transfers);

    EXPECT_EQ(1u, ts.gather[ser].transfers);
    EXPECT_EQ(aggregate, ts.gather[ser].bytes);
    EXPECT_DOUBLE_EQ(gSer, ts.gather[ser].seconds);
    EXPECT_EQ(0u, ts.gather[par].transfers);

    // And the cells sum exactly to the combined view.
    EXPECT_DOUBLE_EQ(bPar + bSer + sPar + gSer, ts.totalSeconds());
    EXPECT_EQ(uint64_t{kBytes} + 3 * aggregate, ts.totalBytes());
}

TEST(TransferSplit, DefaultModePreservesPreSplitBehavior)
{
    // Call sites that predate the split pass no mode; they must keep
    // getting the parallel numbers they always got.
    sim::PimSystem sys(2);
    uint32_t addr = sys.dpu(0).mramAlloc(8192);
    sys.dpu(1).mramAlloc(8192);
    std::vector<uint8_t> buf(8192 * 2, 1);
    EXPECT_DOUBLE_EQ(sys.parallelTransferSeconds(8192),
                     sys.broadcastToMram(addr, buf.data(), 8192));
    EXPECT_DOUBLE_EQ(sys.parallelTransferSeconds(8192 * 2),
                     sys.scatterToMram(addr, buf.data(), 8192));
}

// ------------------------------------------- sanitizer-to-registry

TEST(SanitizerMetrics, DiagnosticCountsReachTheRegistry)
{
    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    reg.setEnabled(true);

    sim::check::Sanitizer san(1024, 1u << 20);
    san.beginLaunch(2);
    // One bad-size DMA (12 bytes, not a multiple of 8) and one WRAM
    // bounds violation.
    san.onDma(0, 0, 0, 12, 1);
    san.onWramLoad(0, 2048, 8, 2);

    reg.setEnabled(false);

    using sim::check::CheckKind;
    EXPECT_EQ(
        countOf(san.diagnostics(), CheckKind::DmaBadSize),
        reg.counter(std::string("pimcheck/sanitizer/") +
                    toString(CheckKind::DmaBadSize))
            .value());
    EXPECT_EQ(
        countOf(san.diagnostics(), CheckKind::WramOutOfBounds),
        reg.counter(std::string("pimcheck/sanitizer/") +
                    toString(CheckKind::WramOutOfBounds))
            .value());
    EXPECT_GT(san.diagnostics().size(), 0u);
    reg.reset();
}

TEST(SanitizerMetrics, DisabledRegistryCostsNothing)
{
    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    ASSERT_FALSE(reg.enabled());

    sim::check::Sanitizer san(1024, 1u << 20);
    san.beginLaunch(1);
    san.onDma(0, 0, 0, 12, 1);

    // The diagnostic fires either way; the counter stays untouched.
    EXPECT_EQ(1u, san.diagnostics().size());
    EXPECT_EQ(0u, reg.counter("pimcheck/sanitizer/dma-bad-size")
                      .value());
}

// ------------------------------------- registry wiring from the DPU

TEST(DpuMetrics, LaunchReportsIntoTheGlobalRegistry)
{
    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    reg.setEnabled(true);

    sim::DpuCore dpu;
    sim::LaunchStats stats = runAllClassKernel(dpu, 4, 512);

    reg.setEnabled(false);

    EXPECT_EQ(1u, reg.counter("pimsim/dpu/launches").value());
    EXPECT_EQ(stats.cycles, reg.counter("pimsim/dpu/cycles").value());
    EXPECT_EQ(stats.totalInstructions,
              reg.counter("pimsim/dpu/instructions").value());
    EXPECT_EQ(stats.dmaBytes,
              reg.counter("pimsim/dpu/dma/bytes").value());
    for (int c = 0; c < numInstrClasses; ++c) {
        EXPECT_EQ(stats.classInstructions[c],
                  reg.counter(std::string("pimsim/dpu/instr/") +
                              instrClassName(
                                  static_cast<InstrClass>(c)))
                      .value())
            << instrClassName(static_cast<InstrClass>(c));
    }
    EXPECT_EQ(1u,
              reg.histogram("pimsim/dpu/cycles_per_launch").count());
    reg.reset();
}

TEST(DpuMetrics, CachedCounterHandlesMatchPerLaunchLookups)
{
    // The launch report site resolves its metric handles once and
    // reuses them; the registry totals must stay exactly what
    // per-launch name lookups would have produced, across repeated
    // launches (first launch builds the cache, second reuses it).
    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    reg.setEnabled(true);

    sim::DpuCore dpu;
    sim::LaunchStats a = runAllClassKernel(dpu, 4, 512);
    dpu.resetAllocators();
    sim::LaunchStats b = runAllClassKernel(dpu, 8, 512);

    reg.setEnabled(false);

    EXPECT_EQ(2u, reg.counter("pimsim/dpu/launches").value());
    EXPECT_EQ(a.cycles + b.cycles,
              reg.counter("pimsim/dpu/cycles").value());
    EXPECT_EQ(a.totalInstructions + b.totalInstructions,
              reg.counter("pimsim/dpu/instructions").value());
    EXPECT_EQ(a.stallCycles + b.stallCycles,
              reg.counter("pimsim/dpu/stall_cycles").value());
    EXPECT_EQ(a.dmaBytes + b.dmaBytes,
              reg.counter("pimsim/dpu/dma/bytes").value());
    EXPECT_EQ(a.dmaEngineCycles + b.dmaEngineCycles,
              reg.counter("pimsim/dpu/dma/engine_cycles").value());
    for (int c = 0; c < numInstrClasses; ++c) {
        EXPECT_EQ(a.classInstructions[c] + b.classInstructions[c],
                  reg.counter(std::string("pimsim/dpu/instr/") +
                              instrClassName(
                                  static_cast<InstrClass>(c)))
                      .value())
            << instrClassName(static_cast<InstrClass>(c));
    }
    for (int o = 0; o < numOpClasses; ++o) {
        EXPECT_EQ(a.opCounts[o] + b.opCounts[o],
                  reg.counter(std::string("pimsim/dpu/ops/") +
                              opClassSlug(static_cast<OpClass>(o)))
                      .value())
            << opClassSlug(static_cast<OpClass>(o));
    }
    EXPECT_EQ(2u,
              reg.histogram("pimsim/dpu/cycles_per_launch").count());
    reg.reset();
}

} // namespace
} // namespace tpl
