/**
 * @file
 * PimProgram tests: multi-evaluator deployment, budget enforcement,
 * aggregate reporting, and end-to-end use inside a kernel.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "transpim/program.h"

namespace tpl {
namespace transpim {
namespace {

MethodSpec
smallLut()
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = 10;
    return spec;
}

TEST(PimProgram, AddAndLookup)
{
    PimProgram prog;
    prog.add("log", Function::Log, smallLut());
    prog.add("exp", Function::Exp, smallLut());
    EXPECT_EQ(2u, prog.size());
    EXPECT_EQ(Function::Log, prog.get("log").function());
    EXPECT_EQ(Function::Exp, prog["exp"].function());
    EXPECT_THROW(prog.get("sqrt"), std::out_of_range);
}

TEST(PimProgram, DuplicateNamesRejected)
{
    PimProgram prog;
    prog.add("f", Function::Sin, smallLut());
    EXPECT_THROW(prog.add("f", Function::Cos, smallLut()),
                 std::invalid_argument);
}

TEST(PimProgram, WramBudgetEnforced)
{
    PimProgram prog(8 * 1024); // 8 KB budget
    MethodSpec big = smallLut();
    big.log2Entries = 14; // ~49 KB sine table
    EXPECT_THROW(prog.add("sin", Function::Sin, big),
                 std::length_error);
    // MRAM placement does not count against the WRAM budget.
    big.placement = Placement::Mram;
    EXPECT_NO_THROW(prog.add("sin", Function::Sin, big));
}

TEST(PimProgram, BudgetOverflowMessageIsActionable)
{
    PimProgram prog(8 * 1024);
    prog.add("warm", Function::Exp, smallLut()); // commits some WRAM
    uint32_t committed = prog.wramTableBytes();
    MethodSpec big = smallLut();
    big.log2Entries = 14;
    try {
        prog.add("sin", Function::Sin, big);
        FAIL() << "expected std::length_error";
    } catch (const std::length_error& e) {
        std::string msg = e.what();
        // Names the offending evaluator, the requested size, and what
        // remains of the budget.
        EXPECT_NE(std::string::npos, msg.find("'sin'")) << msg;
        EXPECT_NE(std::string::npos,
                  msg.find(std::to_string(8 * 1024 - committed)))
            << msg;
        EXPECT_NE(std::string::npos, msg.find("requested")) << msg;
        EXPECT_NE(std::string::npos,
                  msg.find(std::to_string(committed)))
            << msg;
    }
}

TEST(PimProgram, AggregateReporting)
{
    PimProgram prog;
    prog.add("log", Function::Log, smallLut());
    prog.add("exp", Function::Exp, smallLut());
    MethodSpec mram = smallLut();
    mram.placement = Placement::Mram;
    prog.add("cndf", Function::Cndf, mram);

    EXPECT_EQ(prog.get("log").memoryBytes() +
                  prog.get("exp").memoryBytes() +
                  prog.get("cndf").memoryBytes(),
              prog.totalTableBytes());
    EXPECT_EQ(prog.get("log").memoryBytes() +
                  prog.get("exp").memoryBytes(),
              prog.wramTableBytes());
    EXPECT_GT(prog.totalSetupSeconds(), 0.0);
}

TEST(PimProgram, AttachAndRunKernel)
{
    PimProgram prog;
    prog.add("log", Function::Log, smallLut());
    prog.add("sqrt", Function::Sqrt, smallLut());

    sim::DpuCore dpu;
    prog.attach(dpu);
    EXPECT_GE(dpu.wramAllocated(), prog.wramTableBytes());

    float result = 0.0f;
    dpu.launch(1, [&](sim::TaskletContext& ctx) {
        // Geometric mean of 4 and 9 via log/sqrt: sqrt(4*9) = 6.
        float l = prog["log"].eval(36.0f, &ctx);
        (void)l;
        result = prog["sqrt"].eval(36.0f, &ctx);
    });
    EXPECT_NEAR(6.0f, result, 1e-3);
}

TEST(PimProgram, AttachAllBroadcasts)
{
    PimProgram prog;
    prog.add("tanh", Function::Tanh, smallLut());
    sim::PimSystem sys(3);
    double secs = prog.attachAll(sys);
    EXPECT_GT(secs, 0.0);
    // Every core can evaluate against its own copy.
    for (uint32_t d = 0; d < sys.numDpus(); ++d)
        EXPECT_GE(sys.dpu(d).wramAllocated(), prog.wramTableBytes());
}

} // namespace
} // namespace transpim
} // namespace tpl
