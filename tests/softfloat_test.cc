/**
 * @file
 * Bit-exactness tests for the instrumented soft-float implementation.
 *
 * The reproduction's accuracy results are only trustworthy if the
 * emulated float arithmetic matches host IEEE-754 binary32 (round to
 * nearest even) bit for bit, so these tests compare against the host
 * FPU over directed edge cases and large randomized sweeps covering
 * normals, subnormals, massive cancellation, overflow and underflow.
 */

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/rng.h"
#include "softfloat/softfloat.h"

namespace tpl {
namespace {

/** Compare two floats bitwise, canonicalizing NaNs. */
::testing::AssertionResult
bitEqual(float expected, float actual)
{
    uint32_t be = floatBits(expected);
    uint32_t ba = floatBits(actual);
    bool nanE = std::isnan(expected);
    bool nanA = std::isnan(actual);
    if (nanE && nanA)
        return ::testing::AssertionSuccess();
    if (be == ba)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "expected " << expected << " (0x" << std::hex << be
           << ") got " << actual << " (0x" << ba << ")";
}

float
randomFloatBits(SplitMix64& rng)
{
    // Random bit patterns: covers all exponents including specials.
    return bitsToFloat(static_cast<uint32_t>(rng.next()));
}

float
randomFiniteFloat(SplitMix64& rng)
{
    for (;;) {
        float f = randomFloatBits(rng);
        if (std::isfinite(f))
            return f;
    }
}

constexpr int sweepIters = 200000;

TEST(SoftFloatAdd, DirectedEdgeCases)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float maxN = std::numeric_limits<float>::max();
    const float minN = std::numeric_limits<float>::min();
    const float den = std::numeric_limits<float>::denorm_min();

    EXPECT_TRUE(bitEqual(0.0f + 0.0f, sf::add(0.0f, 0.0f)));
    EXPECT_TRUE(bitEqual(0.0f + -0.0f, sf::add(0.0f, -0.0f)));
    EXPECT_TRUE(bitEqual(-0.0f + -0.0f, sf::add(-0.0f, -0.0f)));
    EXPECT_TRUE(bitEqual(1.0f + 1.0f, sf::add(1.0f, 1.0f)));
    EXPECT_TRUE(bitEqual(1.0f + -1.0f, sf::add(1.0f, -1.0f)));
    EXPECT_TRUE(bitEqual(inf + 1.0f, sf::add(inf, 1.0f)));
    EXPECT_TRUE(bitEqual(inf + inf, sf::add(inf, inf)));
    EXPECT_TRUE(std::isnan(sf::add(inf, -inf)));
    EXPECT_TRUE(std::isnan(sf::add(nan, 1.0f)));
    EXPECT_TRUE(bitEqual(maxN + maxN, sf::add(maxN, maxN))); // -> inf
    EXPECT_TRUE(bitEqual(den + den, sf::add(den, den)));
    EXPECT_TRUE(bitEqual(minN + den, sf::add(minN, den)));
    EXPECT_TRUE(bitEqual(minN + -den, sf::add(minN, -den)));
    EXPECT_TRUE(bitEqual(1.0f + den, sf::add(1.0f, den)));
    // Massive cancellation: adjacent values.
    float a = 1.0f;
    float b = -std::nextafter(1.0f, 2.0f);
    EXPECT_TRUE(bitEqual(a + b, sf::add(a, b)));
}

TEST(SoftFloatAdd, RandomBitPatternSweep)
{
    SplitMix64 rng(1);
    for (int i = 0; i < sweepIters; ++i) {
        float a = randomFloatBits(rng);
        float b = randomFloatBits(rng);
        ASSERT_TRUE(bitEqual(a + b, sf::add(a, b)))
            << "a=" << std::hexfloat << a << " b=" << b;
    }
}

TEST(SoftFloatAdd, CancellationSweep)
{
    // Same-exponent and near-exponent opposite-sign pairs stress the
    // subtract path's normalization.
    SplitMix64 rng(2);
    for (int i = 0; i < sweepIters; ++i) {
        float a = randomFiniteFloat(rng);
        int nudge = static_cast<int>(rng.next() % 5) - 2;
        uint32_t bits = floatBits(a);
        int exp = static_cast<int>(ieeeExponent(bits)) + nudge;
        if (exp < 0 || exp > 0xfe)
            continue;
        uint32_t mant = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        float b = bitsToFloat(
            ieeePack(ieeeSign(bits) ^ 1u, static_cast<uint32_t>(exp), mant));
        ASSERT_TRUE(bitEqual(a + b, sf::add(a, b)))
            << "a=" << std::hexfloat << a << " b=" << b;
    }
}

TEST(SoftFloatAdd, SubnormalSweep)
{
    SplitMix64 rng(3);
    for (int i = 0; i < sweepIters; ++i) {
        uint32_t ba = static_cast<uint32_t>(rng.next()) & 0x807fffffu;
        uint32_t bb = static_cast<uint32_t>(rng.next()) & 0x80ffffffu;
        float a = bitsToFloat(ba);
        float b = bitsToFloat(bb);
        ASSERT_TRUE(bitEqual(a + b, sf::add(a, b)))
            << "a=" << std::hexfloat << a << " b=" << b;
    }
}

TEST(SoftFloatAdd, Commutativity)
{
    SplitMix64 rng(4);
    for (int i = 0; i < 10000; ++i) {
        float a = randomFiniteFloat(rng);
        float b = randomFiniteFloat(rng);
        EXPECT_TRUE(bitEqual(sf::add(a, b), sf::add(b, a)));
    }
}

TEST(SoftFloatSub, MatchesHost)
{
    SplitMix64 rng(5);
    for (int i = 0; i < sweepIters; ++i) {
        float a = randomFloatBits(rng);
        float b = randomFloatBits(rng);
        ASSERT_TRUE(bitEqual(a - b, sf::sub(a, b)))
            << "a=" << std::hexfloat << a << " b=" << b;
    }
}

TEST(SoftFloatMul, DirectedEdgeCases)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float maxN = std::numeric_limits<float>::max();
    const float minN = std::numeric_limits<float>::min();
    const float den = std::numeric_limits<float>::denorm_min();

    EXPECT_TRUE(bitEqual(0.0f * 0.0f, sf::mul(0.0f, 0.0f)));
    EXPECT_TRUE(bitEqual(-0.0f * 0.0f, sf::mul(-0.0f, 0.0f)));
    EXPECT_TRUE(bitEqual(2.0f * 3.0f, sf::mul(2.0f, 3.0f)));
    EXPECT_TRUE(bitEqual(maxN * 2.0f, sf::mul(maxN, 2.0f))); // overflow
    EXPECT_TRUE(bitEqual(minN * 0.5f, sf::mul(minN, 0.5f))); // subnormal
    EXPECT_TRUE(bitEqual(den * 0.5f, sf::mul(den, 0.5f)));   // underflow
    EXPECT_TRUE(std::isnan(sf::mul(inf, 0.0f)));
    EXPECT_TRUE(std::isnan(sf::mul(nan, 1.0f)));
    EXPECT_TRUE(bitEqual(inf * -2.0f, sf::mul(inf, -2.0f)));
}

TEST(SoftFloatMul, RandomBitPatternSweep)
{
    SplitMix64 rng(6);
    for (int i = 0; i < sweepIters; ++i) {
        float a = randomFloatBits(rng);
        float b = randomFloatBits(rng);
        ASSERT_TRUE(bitEqual(a * b, sf::mul(a, b)))
            << "a=" << std::hexfloat << a << " b=" << b;
    }
}

TEST(SoftFloatMul, SubnormalResultSweep)
{
    // Products that land in or near the subnormal range.
    SplitMix64 rng(7);
    for (int i = 0; i < sweepIters; ++i) {
        uint32_t ea = 1 + static_cast<uint32_t>(rng.next() % 80);
        uint32_t eb = 1 + static_cast<uint32_t>(rng.next() % 80);
        float a = bitsToFloat(ieeePack(rng.next() & 1, ea,
                              static_cast<uint32_t>(rng.next()) & 0x7fffffu));
        float b = bitsToFloat(ieeePack(rng.next() & 1, eb,
                              static_cast<uint32_t>(rng.next()) & 0x7fffffu));
        ASSERT_TRUE(bitEqual(a * b, sf::mul(a, b)))
            << "a=" << std::hexfloat << a << " b=" << b;
    }
}

TEST(SoftFloatDiv, DirectedEdgeCases)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();

    EXPECT_TRUE(bitEqual(1.0f / 3.0f, sf::div(1.0f, 3.0f)));
    EXPECT_TRUE(bitEqual(1.0f / 0.0f, sf::div(1.0f, 0.0f)));
    EXPECT_TRUE(bitEqual(-1.0f / 0.0f, sf::div(-1.0f, 0.0f)));
    EXPECT_TRUE(bitEqual(0.0f / 5.0f, sf::div(0.0f, 5.0f)));
    EXPECT_TRUE(std::isnan(sf::div(0.0f, 0.0f)));
    EXPECT_TRUE(std::isnan(sf::div(inf, inf)));
    EXPECT_TRUE(std::isnan(sf::div(nan, 1.0f)));
    EXPECT_TRUE(bitEqual(inf / 2.0f, sf::div(inf, 2.0f)));
    EXPECT_TRUE(bitEqual(2.0f / inf, sf::div(2.0f, inf)));
}

TEST(SoftFloatDiv, RandomBitPatternSweep)
{
    SplitMix64 rng(8);
    for (int i = 0; i < sweepIters; ++i) {
        float a = randomFloatBits(rng);
        float b = randomFloatBits(rng);
        ASSERT_TRUE(bitEqual(a / b, sf::div(a, b)))
            << "a=" << std::hexfloat << a << " b=" << b;
    }
}

TEST(SoftFloatSqrt, DirectedEdgeCases)
{
    const float inf = std::numeric_limits<float>::infinity();

    EXPECT_TRUE(bitEqual(std::sqrt(0.0f), sf::sqrt(0.0f)));
    EXPECT_TRUE(bitEqual(-0.0f, sf::sqrt(-0.0f)));
    EXPECT_TRUE(bitEqual(std::sqrt(4.0f), sf::sqrt(4.0f)));
    EXPECT_TRUE(bitEqual(std::sqrt(2.0f), sf::sqrt(2.0f)));
    EXPECT_TRUE(bitEqual(inf, sf::sqrt(inf)));
    EXPECT_TRUE(std::isnan(sf::sqrt(-1.0f)));
    EXPECT_TRUE(bitEqual(
        std::sqrt(std::numeric_limits<float>::denorm_min()),
        sf::sqrt(std::numeric_limits<float>::denorm_min())));
}

TEST(SoftFloatSqrt, RandomSweep)
{
    SplitMix64 rng(9);
    for (int i = 0; i < sweepIters; ++i) {
        float a = sf::abs(randomFiniteFloat(rng));
        ASSERT_TRUE(bitEqual(std::sqrt(a), sf::sqrt(a)))
            << "a=" << std::hexfloat << a;
    }
}

TEST(SoftFloatCompare, MatchesHost)
{
    SplitMix64 rng(10);
    for (int i = 0; i < sweepIters; ++i) {
        float a = randomFloatBits(rng);
        float b = randomFloatBits(rng);
        ASSERT_EQ(a < b, sf::lt(a, b)) << a << " " << b;
        ASSERT_EQ(a <= b, sf::le(a, b)) << a << " " << b;
        ASSERT_EQ(a == b, sf::eq(a, b)) << a << " " << b;
    }
    EXPECT_TRUE(sf::eq(0.0f, -0.0f));
    EXPECT_FALSE(sf::lt(0.0f, -0.0f));
    EXPECT_TRUE(sf::le(-0.0f, 0.0f));
}

TEST(SoftFloatConvert, ToI32Trunc)
{
    SplitMix64 rng(11);
    EXPECT_EQ(0, sf::toI32Trunc(0.5f));
    EXPECT_EQ(0, sf::toI32Trunc(-0.5f));
    EXPECT_EQ(3, sf::toI32Trunc(3.99f));
    EXPECT_EQ(-3, sf::toI32Trunc(-3.99f));
    EXPECT_EQ(INT32_MAX, sf::toI32Trunc(3e9f));
    EXPECT_EQ(INT32_MIN, sf::toI32Trunc(-3e9f));
    for (int i = 0; i < sweepIters; ++i) {
        float a = rng.nextFloat(-2.1e9f, 2.1e9f);
        if (a <= -2147483648.0f || a >= 2147483648.0f)
            continue;
        ASSERT_EQ(static_cast<int32_t>(a), sf::toI32Trunc(a))
            << std::hexfloat << a;
    }
}

TEST(SoftFloatConvert, ToI32Floor)
{
    SplitMix64 rng(12);
    EXPECT_EQ(0, sf::toI32Floor(0.5f));
    EXPECT_EQ(-1, sf::toI32Floor(-0.5f));
    EXPECT_EQ(3, sf::toI32Floor(3.0f));
    EXPECT_EQ(-4, sf::toI32Floor(-3.5f));
    for (int i = 0; i < sweepIters; ++i) {
        float a = rng.nextFloat(-1e6f, 1e6f);
        ASSERT_EQ(static_cast<int32_t>(std::floor(a)), sf::toI32Floor(a))
            << std::hexfloat << a;
    }
}

TEST(SoftFloatConvert, ToI32Round)
{
    SplitMix64 rng(13);
    EXPECT_EQ(1, sf::toI32Round(0.5f));
    EXPECT_EQ(-1, sf::toI32Round(-0.5f));
    EXPECT_EQ(0, sf::toI32Round(0.49f));
    EXPECT_EQ(2, sf::toI32Round(1.5f));
    for (int i = 0; i < sweepIters; ++i) {
        float a = rng.nextFloat(-1e6f, 1e6f);
        ASSERT_EQ(static_cast<int32_t>(std::llround(a)), sf::toI32Round(a))
            << std::hexfloat << a;
    }
}

TEST(SoftFloatConvert, FromI32)
{
    SplitMix64 rng(14);
    EXPECT_TRUE(bitEqual(0.0f, sf::fromI32(0)));
    EXPECT_TRUE(bitEqual(static_cast<float>(INT32_MIN),
                         sf::fromI32(INT32_MIN)));
    EXPECT_TRUE(bitEqual(static_cast<float>(INT32_MAX),
                         sf::fromI32(INT32_MAX)));
    for (int i = 0; i < sweepIters; ++i) {
        int32_t v = static_cast<int32_t>(rng.next());
        ASSERT_TRUE(bitEqual(static_cast<float>(v), sf::fromI32(v))) << v;
    }
}

TEST(SoftFloatConvert, FixedRoundTrip)
{
    SplitMix64 rng(15);
    for (int i = 0; i < sweepIters; ++i) {
        float a = rng.nextFloat(-7.9f, 7.9f);
        Fixed f = sf::toFixed(a);
        Fixed ref = Fixed::fromFloat(a);
        ASSERT_EQ(ref.raw(), f.raw()) << std::hexfloat << a;
        float back = sf::fromFixed(f);
        ASSERT_TRUE(bitEqual(f.toFloat(), back)) << std::hexfloat << a;
    }
}

TEST(SoftFloatCost, RelativeCostsMatchUpmemShape)
{
    // The defining property of the UPMEM cost landscape exploited by
    // the paper: div >> mul > add >> native integer add.
    CountingSink addSink, mulSink, divSink, sqrtSink;
    SplitMix64 rng(16);
    for (int i = 0; i < 1000; ++i) {
        float a = rng.nextFloat(0.1f, 100.0f);
        float b = rng.nextFloat(0.1f, 100.0f);
        sf::add(a, b, &addSink);
        sf::mul(a, b, &mulSink);
        sf::div(a, b, &divSink);
        sf::sqrt(a, &sqrtSink);
    }
    EXPECT_GT(mulSink.total(), 2.0 * addSink.total());
    EXPECT_GT(divSink.total(), 1.5 * mulSink.total());
    EXPECT_GT(sqrtSink.total(), mulSink.total());
    // Sanity bands (instructions per op), tracking the published UPMEM
    // single-DPU throughput of emulated float add/mul/div.
    EXPECT_GT(addSink.total() / 1000, 40u);
    EXPECT_LT(addSink.total() / 1000, 120u);
    EXPECT_GT(mulSink.total() / 1000, 120u);
    EXPECT_LT(mulSink.total() / 1000, 250u);
    EXPECT_GT(divSink.total() / 1000, 250u);
    EXPECT_LT(divSink.total() / 1000, 450u);
}

} // namespace
} // namespace tpl
