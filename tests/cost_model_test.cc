/**
 * @file
 * CostModel parameter-sweep tests: the simulator must respond to every
 * exposed knob in the physically sensible direction - frequency scales
 * time but not cycles, pipeline interval moves the saturation point,
 * DMA parameters shift only DMA-bound kernels, memory sizes gate
 * allocation, and the energy parameters scale energy linearly.
 */

#include <gtest/gtest.h>

#include "pimsim/system.h"

namespace tpl {
namespace sim {
namespace {

Kernel
computeKernel(uint32_t work)
{
    return [work](TaskletContext& ctx) { ctx.charge(work); };
}

TEST(CostModelSweep, FrequencyScalesTimeNotCycles)
{
    CostModel slow;
    slow.frequencyHz = 350e6;
    CostModel fast = slow;
    fast.frequencyHz = 700e6;

    PimSystem sysSlow(1, slow);
    PimSystem sysFast(1, fast);
    double tSlow = sysSlow.launchAll(16, computeKernel(10000));
    double tFast = sysFast.launchAll(16, computeKernel(10000));
    EXPECT_EQ(sysSlow.lastMaxCycles(), sysFast.lastMaxCycles());
    EXPECT_NEAR(2.0, tSlow / tFast, 1e-9);
}

TEST(CostModelSweep, PipelineIntervalMovesSaturation)
{
    CostModel shallow;
    shallow.pipelineInterval = 4;
    DpuCore dpu(shallow);
    // With a 4-cycle interval, 4 tasklets already saturate: adding
    // more only raises total issue cycles linearly.
    LaunchStats at4 = dpu.launch(4, computeKernel(1000));
    EXPECT_EQ(4000u, at4.cycles); // issue-bound at 4 tasklets
    LaunchStats at2 = dpu.launch(2, computeKernel(1000));
    EXPECT_EQ(4000u, at2.cycles); // latency-bound: 1000 * 4
}

TEST(CostModelSweep, DmaParametersShiftDmaBoundKernels)
{
    CostModel fastDma;
    CostModel slowDma;
    slowDma.dmaCyclesPerByte = 4.0; // 8x slower streaming

    std::vector<uint8_t> buf(2048);
    auto streamKernel = [&](TaskletContext& ctx) {
        for (int i = 0; i < 64; ++i)
            ctx.mramRead(i * 2048, buf.data(), 2048);
    };
    DpuCore a(fastDma), b(slowDma);
    LaunchStats fast = a.launch(16, streamKernel);
    LaunchStats slow = b.launch(16, streamKernel);
    EXPECT_GT(slow.cycles, 4 * fast.cycles);
    // A compute kernel is unaffected.
    LaunchStats ca = a.launch(16, computeKernel(5000));
    LaunchStats cb = b.launch(16, computeKernel(5000));
    EXPECT_EQ(ca.cycles, cb.cycles);
}

TEST(CostModelSweep, MemorySizesGateAllocation)
{
    CostModel tiny;
    tiny.wramBytes = 1024;
    tiny.mramBytes = 8192;
    DpuCore dpu(tiny);
    EXPECT_NO_THROW(dpu.wramAlloc(1024));
    EXPECT_THROW(dpu.wramAlloc(8), std::bad_alloc);
    EXPECT_NO_THROW(dpu.mramAlloc(8192));
    EXPECT_THROW(dpu.mramAlloc(8), std::bad_alloc);
}

TEST(CostModelSweep, EnergyParametersScaleLinearly)
{
    CostModel base;
    CostModel doubled = base;
    doubled.instrEnergyPj *= 2.0;
    DpuCore a(base), b(doubled);
    LaunchStats ea = a.launch(1, computeKernel(1000));
    LaunchStats eb = b.launch(1, computeKernel(1000));
    EXPECT_NEAR(2.0, eb.energyJoules / ea.energyJoules, 1e-9);
}

TEST(CostModelSweep, TransferBandwidthKnobs)
{
    CostModel narrow;
    narrow.hostParallelBandwidth = 1e9;
    narrow.hostAggregateBandwidthCap = 4e9;
    narrow.mramBytes = 64 * 1024; // keep 256 simulated banks small
    narrow.wramBytes = 4 * 1024;
    PimSystem sys(256, narrow); // 4 ranks
    // 4 ranks x 1 GB/s = 4 GB/s, exactly at the cap.
    EXPECT_NEAR(1.0 / 4.0, sys.parallelTransferSeconds(1'000'000'000),
                1e-6);
    CostModel capped = narrow;
    capped.hostAggregateBandwidthCap = 2e9;
    PimSystem sysCapped(256, capped);
    EXPECT_NEAR(1.0 / 2.0,
                sysCapped.parallelTransferSeconds(1'000'000'000),
                1e-6);
}

} // namespace
} // namespace sim
} // namespace tpl
