/**
 * @file
 * Auto-tuner tests: recommendations meet the accuracy target, respect
 * memory budgets, and reproduce the paper's Key Takeaways (CORDIC for
 * tight memory, LUT families for streaming kernels, setup dominating
 * for tiny evaluation counts).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/harness.h"
#include "transpim/tuner.h"

namespace tpl {
namespace transpim {
namespace {

TEST(Tuner, RecommendationMeetsTarget)
{
    for (double target : {1e-3, 1e-5, 1e-7}) {
        auto rec = recommendSpec(Function::Sin, target);
        ASSERT_TRUE(rec.has_value()) << target;
        EXPECT_LE(rec->best.rmse, target);
        // Independently validate with a fresh evaluator and inputs.
        auto eval = FunctionEvaluator::create(Function::Sin,
                                              rec->best.spec);
        auto inputs = uniformFloats(3000, 0.0f, 6.2831853f, 555);
        ErrorStats stats = evaluateAccuracy(eval, inputs);
        EXPECT_LE(stats.rmse, target * 1.5) << methodLabel(rec->best.spec);
    }
}

TEST(Tuner, CandidatesSortedByScore)
{
    auto rec = recommendSpec(Function::Sin, 1e-5);
    ASSERT_TRUE(rec.has_value());
    ASSERT_GE(rec->candidates.size(), 2u);
    for (size_t i = 1; i < rec->candidates.size(); ++i) {
        EXPECT_LE(rec->candidates[i - 1].secondsPerEval,
                  rec->candidates[i].secondsPerEval);
    }
    EXPECT_EQ(rec->best.secondsPerEval,
              rec->candidates.front().secondsPerEval);
}

TEST(Tuner, TightMemoryPrefersCordicFamily)
{
    // Key Takeaway 3: with the bank needed for data, only the flat-
    // memory CORDIC methods reach high accuracy.
    TunerConstraints tight;
    tight.maxTableBytes = 512;
    auto rec = recommendSpec(Function::Sin, 1e-7, tight);
    ASSERT_TRUE(rec.has_value());
    Method m = rec->best.spec.method;
    EXPECT_TRUE(m == Method::Cordic || m == Method::CordicFixed ||
                m == Method::CordicLut)
        << methodLabel(rec->best.spec);
    EXPECT_LE(rec->best.tableBytes, 512u);
}

TEST(Tuner, RoomyMemoryPrefersLutFamily)
{
    // Key Takeaway 1: with table room, an L-LUT variant wins the
    // streaming case.
    TunerConstraints roomy;
    roomy.maxTableBytes = 1u << 20;
    roomy.expectedEvaluations = 100'000'000;
    auto rec = recommendSpec(Function::Sin, 1e-5, roomy);
    ASSERT_TRUE(rec.has_value());
    Method m = rec->best.spec.method;
    EXPECT_TRUE(m == Method::LLut || m == Method::LLutFixed ||
                m == Method::DlLut || m == Method::DLut)
        << methodLabel(rec->best.spec);
}

TEST(Tuner, FixedPointCanBeDisabled)
{
    TunerConstraints c;
    c.allowFixedPoint = false;
    auto rec = recommendSpec(Function::Sin, 1e-5, c);
    ASSERT_TRUE(rec.has_value());
    EXPECT_NE(Method::LLutFixed, rec->best.spec.method);
    for (const auto& cand : rec->candidates)
        EXPECT_NE(Method::LLutFixed, cand.spec.method);
}

TEST(Tuner, MethodFilterRespected)
{
    TunerConstraints c;
    c.methods = {Method::Cordic, Method::Poly};
    auto rec = recommendSpec(Function::Sin, 1e-4, c);
    ASSERT_TRUE(rec.has_value());
    for (const auto& cand : rec->candidates) {
        EXPECT_TRUE(cand.spec.method == Method::Cordic ||
                    cand.spec.method == Method::Poly);
    }
}

TEST(Tuner, SetupAmortizationShiftsScore)
{
    // With very few evaluations the setup share dominates the score,
    // so the chosen candidate's setup must be no worse than what the
    // streaming case picks.
    TunerConstraints fewEvals;
    fewEvals.expectedEvaluations = 10;
    TunerConstraints manyEvals;
    manyEvals.expectedEvaluations = 1'000'000'000;
    auto few = recommendSpec(Function::Sin, 1e-6, fewEvals);
    auto many = recommendSpec(Function::Sin, 1e-6, manyEvals);
    ASSERT_TRUE(few.has_value());
    ASSERT_TRUE(many.has_value());
    EXPECT_LE(few->best.setupSeconds, many->best.setupSeconds * 1.01);
    EXPECT_LE(many->best.instructionsPerEval,
              few->best.instructionsPerEval * 1.01);
}

TEST(Tuner, UnreachableTargetReturnsNothing)
{
    TunerConstraints c;
    c.maxTableBytes = 64; // essentially no tables
    c.methods = {Method::MLut, Method::LLut};
    auto rec = recommendSpec(Function::Sin, 1e-9, c);
    EXPECT_FALSE(rec.has_value());
}

TEST(Tuner, WorksAcrossFunctions)
{
    for (Function f : {Function::Tanh, Function::Exp, Function::Log,
                       Function::Gelu}) {
        auto rec = recommendSpec(f, 1e-4);
        ASSERT_TRUE(rec.has_value()) << functionName(f);
        EXPECT_LE(rec->best.rmse, 1e-4) << functionName(f);
    }
}

} // namespace
} // namespace transpim
} // namespace tpl
