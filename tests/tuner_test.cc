/**
 * @file
 * Auto-tuner tests: recommendations meet the accuracy target, respect
 * memory budgets, and reproduce the paper's Key Takeaways (CORDIC for
 * tight memory, LUT families for streaming kernels, setup dominating
 * for tiny evaluation counts).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/harness.h"
#include "transpim/tuner.h"

namespace tpl {
namespace transpim {
namespace {

TEST(Tuner, RecommendationMeetsTarget)
{
    for (double target : {1e-3, 1e-5, 1e-7}) {
        auto rec = recommendSpec(Function::Sin, target);
        ASSERT_TRUE(rec.has_value()) << target;
        EXPECT_LE(rec->best.rmse, target);
        // Independently validate with a fresh evaluator and inputs.
        auto eval = FunctionEvaluator::create(Function::Sin,
                                              rec->best.spec);
        auto inputs = uniformFloats(3000, 0.0f, 6.2831853f, 555);
        ErrorStats stats = evaluateAccuracy(eval, inputs);
        EXPECT_LE(stats.rmse, target * 1.5) << methodLabel(rec->best.spec);
    }
}

TEST(Tuner, CandidatesSortedByScore)
{
    auto rec = recommendSpec(Function::Sin, 1e-5);
    ASSERT_TRUE(rec.has_value());
    ASSERT_GE(rec->candidates.size(), 2u);
    for (size_t i = 1; i < rec->candidates.size(); ++i) {
        EXPECT_LE(rec->candidates[i - 1].secondsPerEval,
                  rec->candidates[i].secondsPerEval);
    }
    EXPECT_EQ(rec->best.secondsPerEval,
              rec->candidates.front().secondsPerEval);
}

TEST(Tuner, TightMemoryPrefersCordicFamily)
{
    // Key Takeaway 3: with the bank needed for data, only the flat-
    // memory CORDIC methods reach high accuracy.
    TunerConstraints tight;
    tight.maxTableBytes = 512;
    auto rec = recommendSpec(Function::Sin, 1e-7, tight);
    ASSERT_TRUE(rec.has_value());
    Method m = rec->best.spec.method;
    EXPECT_TRUE(m == Method::Cordic || m == Method::CordicFixed ||
                m == Method::CordicLut)
        << methodLabel(rec->best.spec);
    EXPECT_LE(rec->best.tableBytes, 512u);
}

TEST(Tuner, RoomyMemoryPrefersLutFamily)
{
    // Key Takeaway 1: with table room, an L-LUT variant wins the
    // streaming case.
    TunerConstraints roomy;
    roomy.maxTableBytes = 1u << 20;
    roomy.expectedEvaluations = 100'000'000;
    auto rec = recommendSpec(Function::Sin, 1e-5, roomy);
    ASSERT_TRUE(rec.has_value());
    Method m = rec->best.spec.method;
    EXPECT_TRUE(m == Method::LLut || m == Method::LLutFixed ||
                m == Method::DlLut || m == Method::DLut)
        << methodLabel(rec->best.spec);
}

TEST(Tuner, FixedPointCanBeDisabled)
{
    TunerConstraints c;
    c.allowFixedPoint = false;
    auto rec = recommendSpec(Function::Sin, 1e-5, c);
    ASSERT_TRUE(rec.has_value());
    EXPECT_NE(Method::LLutFixed, rec->best.spec.method);
    for (const auto& cand : rec->candidates)
        EXPECT_NE(Method::LLutFixed, cand.spec.method);
}

TEST(Tuner, MethodFilterRespected)
{
    TunerConstraints c;
    c.methods = {Method::Cordic, Method::Poly};
    auto rec = recommendSpec(Function::Sin, 1e-4, c);
    ASSERT_TRUE(rec.has_value());
    for (const auto& cand : rec->candidates) {
        EXPECT_TRUE(cand.spec.method == Method::Cordic ||
                    cand.spec.method == Method::Poly);
    }
}

TEST(Tuner, SetupAmortizationShiftsScore)
{
    // With very few evaluations the setup share dominates the score,
    // so the chosen candidate's setup must be no worse than what the
    // streaming case picks.
    TunerConstraints fewEvals;
    fewEvals.expectedEvaluations = 10;
    TunerConstraints manyEvals;
    manyEvals.expectedEvaluations = 1'000'000'000;
    auto few = recommendSpec(Function::Sin, 1e-6, fewEvals);
    auto many = recommendSpec(Function::Sin, 1e-6, manyEvals);
    ASSERT_TRUE(few.has_value());
    ASSERT_TRUE(many.has_value());
    EXPECT_LE(few->best.setupSeconds, many->best.setupSeconds * 1.01);
    EXPECT_LE(many->best.instructionsPerEval,
              few->best.instructionsPerEval * 1.01);
}

TEST(Tuner, UnreachableTargetReturnsNothing)
{
    TunerConstraints c;
    c.maxTableBytes = 64; // essentially no tables
    c.methods = {Method::MLut, Method::LLut};
    auto rec = recommendSpec(Function::Sin, 1e-9, c);
    EXPECT_FALSE(rec.has_value());
}

TEST(Tuner, WorksAcrossFunctions)
{
    for (Function f : {Function::Tanh, Function::Exp, Function::Log,
                       Function::Gelu}) {
        auto rec = recommendSpec(f, 1e-4);
        ASSERT_TRUE(rec.has_value()) << functionName(f);
        EXPECT_LE(rec->best.rmse, 1e-4) << functionName(f);
    }
}

TEST(Tuner, EmptyMethodListMeansEveryMethod)
{
    // An empty candidate-method list is "no filter", not "no
    // candidates": the search must behave exactly like the default
    // constraints.
    TunerConstraints empty;
    empty.methods = {};
    auto open = recommendSpec(Function::Sin, 1e-5, empty);
    auto deflt = recommendSpec(Function::Sin, 1e-5);
    ASSERT_TRUE(open.has_value());
    ASSERT_TRUE(deflt.has_value());
    EXPECT_EQ(open->best.spec.method, deflt->best.spec.method);
    EXPECT_EQ(open->candidates.size(), deflt->candidates.size());
    // And it genuinely spans method families, not one survivor.
    bool sawCordicFamily = false;
    bool sawLutFamily = false;
    for (const auto& cand : open->candidates) {
        switch (cand.spec.method) {
        case Method::Cordic:
        case Method::CordicFixed:
        case Method::CordicLut:
            sawCordicFamily = true;
            break;
        default:
            sawLutFamily = true;
            break;
        }
    }
    EXPECT_TRUE(sawCordicFamily);
    EXPECT_TRUE(sawLutFamily);
}

TEST(Tuner, TableBudgetBelowAnyViableTableReturnsNothing)
{
    // LUT-only search with a budget smaller than the smallest table
    // any LUT method can build: there is no feasible candidate at
    // all, so the result must be empty rather than a best-effort
    // over-budget pick.
    TunerConstraints c;
    c.methods = {Method::MLut, Method::LLut, Method::LLutFixed,
                 Method::DLut, Method::DlLut};
    c.maxTableBytes = 8; // two float entries
    auto rec = recommendSpec(Function::Sin, 1e-2, c);
    EXPECT_FALSE(rec.has_value());
}

TEST(Tuner, AutoMetricClassificationCoversEveryFunction)
{
    // ErrorMetric::Auto resolves to Relative exactly for the
    // functions with large output ranges; everything else is
    // Absolute. This is the classification the online AutoTuner
    // scores SLAs against, so lock it for the whole catalog.
    for (Function f :
         {Function::Sin,   Function::Cos,     Function::Tan,
          Function::Sinh,  Function::Cosh,    Function::Tanh,
          Function::Exp,   Function::Log,     Function::Sqrt,
          Function::Gelu,  Function::Sigmoid, Function::Cndf,
          Function::Atan,  Function::Asin,    Function::Acos,
          Function::Atanh, Function::Log2,    Function::Log10,
          Function::Exp2,  Function::Rsqrt,   Function::Erf,
          Function::Silu,  Function::Softplus}) {
        const bool largeRange =
            f == Function::Exp || f == Function::Exp2 ||
            f == Function::Sinh || f == Function::Cosh;
        EXPECT_EQ(resolveMetric(f), largeRange
                                        ? ErrorMetric::Relative
                                        : ErrorMetric::Absolute)
            << functionName(f);
        // Explicit metrics pass through unchanged.
        EXPECT_EQ(resolveMetric(f, ErrorMetric::Absolute),
                  ErrorMetric::Absolute)
            << functionName(f);
        EXPECT_EQ(resolveMetric(f, ErrorMetric::Relative),
                  ErrorMetric::Relative)
            << functionName(f);
    }
}

} // namespace
} // namespace transpim
} // namespace tpl
