/**
 * @file
 * Workload tests: correctness of the Blackscholes / Sigmoid / Softmax
 * kernels across CPU and PIM variants (results vs double oracle,
 * put-call parity, softmax normalization), plus the Figure 9
 * qualitative orderings (LUT variants beat the polynomial PIM
 * baseline).
 */

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "workloads/activations.h"
#include "workloads/blackscholes.h"
#include "workloads/logistic.h"
#include "workloads/raytrace.h"

namespace tpl {
namespace work {
namespace {

WorkloadConfig
smallConfig()
{
    WorkloadConfig cfg;
    cfg.totalElements = 1'000'000;
    cfg.elementsPerSimDpu = 1024;
    cfg.simulatedDpus = 2;
    cfg.cpuSampleElements = 100'000;
    cfg.log2Entries = 12;
    return cfg;
}

TEST(BlackscholesInputs, DeterministicAndInRange)
{
    OptionBatch a = generateOptions(1000, 7);
    OptionBatch b = generateOptions(1000, 7);
    EXPECT_EQ(a.spot, b.spot);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_GT(a.spot[i], 0.0f);
        EXPECT_GT(a.strike[i], 0.0f);
        EXPECT_GE(a.spot[i] / a.strike[i], 0.75f);
        EXPECT_LE(a.spot[i] / a.strike[i], 1.30f);
        EXPECT_GT(a.vol[i], 0.0f);
        EXPECT_GT(a.expiry[i], 0.0f);
    }
}

TEST(BlackscholesReference, PutCallParity)
{
    OptionBatch batch = generateOptions(2000, 9);
    OptionPrices p = priceReference(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
        double ke = batch.strike[i] *
                    std::exp(-(double)batch.rate[i] * batch.expiry[i]);
        EXPECT_NEAR(p.call[i] - p.put[i], batch.spot[i] - ke,
                    1e-2 * batch.spot[i])
            << i;
        EXPECT_GE(p.call[i], -1e-3);
        EXPECT_GE(p.put[i], -1e-3);
    }
}

class BsVariantTest : public ::testing::TestWithParam<BsVariant>
{
};

TEST_P(BsVariantTest, AccurateAgainstOracle)
{
    WorkloadConfig cfg = smallConfig();
    WorkloadResult res = runBlackscholes(GetParam(), cfg);
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_EQ(cfg.totalElements, res.elements);
    // Option prices are tens of dollars; all variants should price
    // within cents except the coarser poly/CNDF path.
    EXPECT_LT(res.maxAbsError, 0.25) << res.variant;
    EXPECT_LT(res.rmse, 0.05) << res.variant;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, BsVariantTest,
    ::testing::Values(BsVariant::CpuSingle, BsVariant::CpuMulti,
                      BsVariant::PimPoly, BsVariant::PimMLut,
                      BsVariant::PimLLut, BsVariant::PimFixedLLut),
    [](const ::testing::TestParamInfo<BsVariant>& info) {
        switch (info.param) {
          case BsVariant::CpuSingle: return "CpuSingle";
          case BsVariant::CpuMulti: return "CpuMulti";
          case BsVariant::PimPoly: return "PimPoly";
          case BsVariant::PimMLut: return "PimMLut";
          case BsVariant::PimLLut: return "PimLLut";
          default: return "PimFixedLLut";
        }
    });

TEST(BlackscholesOrdering, LutVariantsBeatPolyBaseline)
{
    // Figure 9: TransPimLib LUT versions reduce execution time vs the
    // polynomial-approximation PIM baseline; the fixed-point L-LUT is
    // the fastest PIM variant.
    WorkloadConfig cfg = smallConfig();
    auto poly = runBlackscholes(BsVariant::PimPoly, cfg);
    auto mlut = runBlackscholes(BsVariant::PimMLut, cfg);
    auto llut = runBlackscholes(BsVariant::PimLLut, cfg);
    auto fixed = runBlackscholes(BsVariant::PimFixedLLut, cfg);
    EXPECT_LT(mlut.pimKernelSeconds, poly.pimKernelSeconds);
    EXPECT_LT(llut.pimKernelSeconds, mlut.pimKernelSeconds);
    EXPECT_LT(fixed.pimKernelSeconds, llut.pimKernelSeconds);
    // The paper reports 5-10x for poly -> LUT; require at least 2x.
    EXPECT_GT(poly.pimKernelSeconds, 2.0 * llut.pimKernelSeconds);
}

TEST(Sigmoid, PimVariantsAccurate)
{
    WorkloadConfig cfg = smallConfig();
    for (ActVariant v : {ActVariant::PimPoly, ActVariant::PimMLut,
                         ActVariant::PimLLut}) {
        WorkloadResult res = runSigmoid(v, cfg);
        EXPECT_LT(res.maxAbsError, 1e-3) << res.variant;
        EXPECT_GT(res.seconds, 0.0);
    }
}

TEST(Sigmoid, CpuBaselines)
{
    WorkloadConfig cfg = smallConfig();
    auto one = runSigmoid(ActVariant::CpuSingle, cfg);
    auto many = runSigmoid(ActVariant::CpuMulti, cfg);
    EXPECT_LT(one.maxAbsError, 1e-6);
    EXPECT_GT(one.seconds, 0.0);
    // The multithreaded baseline must be modeled/measured faster.
    EXPECT_LT(many.seconds, one.seconds);
}

TEST(Sigmoid, LutBeatsPoly)
{
    WorkloadConfig cfg = smallConfig();
    auto poly = runSigmoid(ActVariant::PimPoly, cfg);
    auto llut = runSigmoid(ActVariant::PimLLut, cfg);
    auto mlut = runSigmoid(ActVariant::PimMLut, cfg);
    EXPECT_LT(llut.pimKernelSeconds, poly.pimKernelSeconds);
    EXPECT_LT(mlut.pimKernelSeconds, poly.pimKernelSeconds);
    EXPECT_LT(llut.pimKernelSeconds, mlut.pimKernelSeconds);
}

TEST(Softmax, OutputsSumToOne)
{
    WorkloadConfig cfg = smallConfig();
    WorkloadResult res = runSoftmax(ActVariant::PimLLut, cfg);
    // The per-element error against the exact softmax of the simulated
    // subset must be small; outputs are ~1/N so compare against that
    // scale.
    double scale =
        1.0 / (cfg.elementsPerSimDpu * cfg.simulatedDpus);
    EXPECT_LT(res.maxAbsError, 20 * scale) << res.variant;
}

TEST(Softmax, StableVariantHandlesWideInputs)
{
    // Inputs beyond float exp's range: the naive formulation
    // overflows (exp(90) = inf in binary32) while the max-subtracted
    // variant stays accurate. Softmax is shift-invariant, so both are
    // checked against the same double reference.
    WorkloadConfig cfg = smallConfig();
    cfg.inputLo = 60.0f;
    cfg.inputHi = 95.0f;

    cfg.stableSoftmax = true;
    auto stable = runSoftmax(ActVariant::PimLLut, cfg);
    double scale =
        1.0 / (cfg.elementsPerSimDpu * cfg.simulatedDpus);
    EXPECT_LT(stable.maxAbsError, 50 * scale);

    cfg.stableSoftmax = false;
    auto naive = runSoftmax(ActVariant::PimLLut, cfg);
    // The naive run degrades badly (inf/NaN propagate into errors).
    EXPECT_GT(naive.maxAbsError + (std::isnan(naive.maxAbsError) ? 1 : 0),
              stable.maxAbsError * 100);
}

TEST(Softmax, StableMatchesNaiveOnModestInputs)
{
    WorkloadConfig cfg = smallConfig();
    cfg.stableSoftmax = true;
    auto stable = runSoftmax(ActVariant::PimLLut, cfg);
    cfg.stableSoftmax = false;
    auto naive = runSoftmax(ActVariant::PimLLut, cfg);
    double scale =
        1.0 / (cfg.elementsPerSimDpu * cfg.simulatedDpus);
    EXPECT_LT(stable.maxAbsError, 20 * scale);
    EXPECT_LT(naive.maxAbsError, 20 * scale);
    // The stability pass costs an extra streaming pass.
    EXPECT_GT(stable.pimKernelSeconds, naive.pimKernelSeconds);
}

TEST(Softmax, AllVariantsRun)
{
    WorkloadConfig cfg = smallConfig();
    auto rows = runSoftmaxAll(cfg);
    EXPECT_EQ(5u, rows.size());
    for (const auto& r : rows) {
        EXPECT_GT(r.seconds, 0.0) << r.variant;
        EXPECT_EQ("Softmax", r.workload);
    }
}

TEST(Softmax, ReductionAddsTransferTraffic)
{
    // Softmax's host-mediated reduction adds transfers beyond
    // sigmoid's stream-in/stream-out (partial sums out, 1/sum back).
    // Its kernel can be cheaper per element (pass 2 is one multiply
    // while sigmoid pays a float divide) - the structural difference
    // is the communication.
    WorkloadConfig cfg = smallConfig();
    auto sig = runSigmoid(ActVariant::PimLLut, cfg);
    auto soft = runSoftmax(ActVariant::PimLLut, cfg);
    EXPECT_GT(soft.hostToPimSeconds + soft.pimToHostSeconds,
              sig.hostToPimSeconds + sig.pimToHostSeconds);
    EXPECT_GT(soft.pimKernelSeconds, 0.0);
}

LogisticConfig
smallLogistic()
{
    LogisticConfig cfg;
    cfg.totalElements = 500'000;
    cfg.elementsPerSimDpu = 256;
    cfg.simulatedDpus = 2;
    cfg.features = 8;
    cfg.cpuSampleElements = 50'000;
    return cfg;
}

TEST(Logistic, PimVariantsMatchReference)
{
    LogisticConfig cfg = smallLogistic();
    for (LogisticVariant v :
         {LogisticVariant::PimPoly, LogisticVariant::PimLLut,
          LogisticVariant::PimDlLut}) {
        WorkloadResult res = runLogistic(v, cfg);
        EXPECT_LT(res.maxAbsError, 5e-3) << res.variant;
        EXPECT_GT(res.seconds, 0.0);
        EXPECT_EQ("Logistic", res.workload);
    }
}

TEST(Logistic, CpuBaselineAccurate)
{
    LogisticConfig cfg = smallLogistic();
    auto res = runLogistic(LogisticVariant::CpuSingle, cfg);
    EXPECT_LT(res.maxAbsError, 1e-5);
}

TEST(Logistic, LutBeatsPolyAtLowDimension)
{
    LogisticConfig cfg = smallLogistic();
    cfg.features = 2;
    auto poly = runLogistic(LogisticVariant::PimPoly, cfg);
    auto llut = runLogistic(LogisticVariant::PimLLut, cfg);
    EXPECT_GT(poly.pimKernelSeconds, 1.5 * llut.pimKernelSeconds);
}

TEST(Logistic, GapShrinksWithFeatureDimension)
{
    // The amortization effect: more MACs per activation dilute the
    // transcendental's share of the kernel.
    LogisticConfig lo = smallLogistic();
    lo.features = 2;
    LogisticConfig hi = smallLogistic();
    hi.features = 64;
    double gapLo =
        runLogistic(LogisticVariant::PimPoly, lo).pimKernelSeconds /
        runLogistic(LogisticVariant::PimLLut, lo).pimKernelSeconds;
    double gapHi =
        runLogistic(LogisticVariant::PimPoly, hi).pimKernelSeconds /
        runLogistic(LogisticVariant::PimLLut, hi).pimKernelSeconds;
    EXPECT_GT(gapLo, gapHi);
    EXPECT_LT(gapHi, 1.6);
}

TEST(Logistic, AllVariantsRun)
{
    auto rows = runLogisticAll(smallLogistic());
    EXPECT_EQ(5u, rows.size());
}

TEST(Raytrace, PimVariantsMatchReference)
{
    WorkloadConfig cfg = smallConfig();
    for (RayVariant v : {RayVariant::PimPoly, RayVariant::PimLLut}) {
        WorkloadResult res = runRaytrace(v, cfg);
        // Intensities are O(1); the specular pow amplifies method
        // error by the exponent (16), hence the looser bound.
        EXPECT_LT(res.maxAbsError, 0.05) << res.variant;
        EXPECT_LT(res.rmse, 0.01) << res.variant;
        EXPECT_GT(res.seconds, 0.0);
    }
}

TEST(Raytrace, CpuBaselineAccurate)
{
    WorkloadConfig cfg = smallConfig();
    auto res = runRaytrace(RayVariant::CpuSingle, cfg);
    EXPECT_LT(res.maxAbsError, 1e-4);
}

TEST(Raytrace, LutBeatsPoly)
{
    WorkloadConfig cfg = smallConfig();
    auto poly = runRaytrace(RayVariant::PimPoly, cfg);
    auto llut = runRaytrace(RayVariant::PimLLut, cfg);
    EXPECT_LT(llut.pimKernelSeconds, poly.pimKernelSeconds);
}

TEST(Raytrace, AllVariantsRun)
{
    auto rows = runRaytraceAll(smallConfig());
    EXPECT_EQ(4u, rows.size());
    for (const auto& r : rows)
        EXPECT_EQ("Raytrace", r.workload);
}

TEST(WorkloadInfra, CpuBaselineScalesLinearly)
{
    WorkloadConfig cfg = smallConfig();
    cfg.cpuSampleElements = 50'000;
    double t1 = timeCpuBaseline(cfg, 1, [](uint64_t b, uint64_t e) {
        volatile double acc = 0;
        for (uint64_t i = b; i < e; ++i)
            acc = acc + std::sqrt((double)i);
    });
    cfg.totalElements *= 2;
    double t2 = timeCpuBaseline(cfg, 1, [](uint64_t b, uint64_t e) {
        volatile double acc = 0;
        for (uint64_t i = b; i < e; ++i)
            acc = acc + std::sqrt((double)i);
    });
    EXPECT_GT(t2, 1.2 * t1);
}

TEST(WorkloadInfra, ProjectionMath)
{
    WorkloadConfig cfg;
    cfg.totalElements = 2545000;
    cfg.elementsPerSimDpu = 1000;
    cfg.systemDpus = 2545;
    sim::CostModel model;
    // 100 cycles/element, 1000 elements/system-DPU.
    double secs = projectPimSeconds(cfg, model, 100000);
    EXPECT_NEAR(100.0 * 1000.0 / model.frequencyHz, secs, 1e-12);
}

} // namespace
} // namespace work
} // namespace tpl
