/**
 * @file
 * Cost-certificate tests: the fitWaveCost envelope math, calibration
 * of evaluator methods (transpim/certify.h) with containment of the
 * measured cycles over a sweep of element counts, and cost-aware
 * wave sizing in the serve pipeline — bit-identical modeled stats
 * when the CostBook kill switch is off, never slower when it is on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "pimsim/serve/cost_book.h"
#include "pimsim/serve/pipeline.h"
#include "transpim/certify.h"
#include "transpim/serve_glue.h"

using namespace tpl;
using namespace tpl::sim;
using namespace tpl::transpim;

namespace {

serve::Request
makeRequest(const serve::TableKey& key, const float* in, float* out,
            uint64_t elements)
{
    serve::Request r;
    r.table = key;
    r.input = in;
    r.output = out;
    r.elements = elements;
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// Envelope math
// ---------------------------------------------------------------------

TEST(WaveCostFit, LinearFitWithMarginBracketsThePoints)
{
    // cycles = 1000 + 10 * n measured exactly at n = 100 and 200.
    serve::WaveCost w =
        serve::fitWaveCost(100, 2000, 200, 3000, 0.25, 50.0);
    EXPECT_NEAR(w.cyclesPerElement, 12.5, 1e-9); // 10 * 1.25
    EXPECT_NEAR(w.fixedCycles, 1300.0, 1e-9);    // 1000 * 1.25 + 50
    EXPECT_EQ(100u, w.minElements);
    // Both calibration points sit below the envelope.
    EXPECT_GE(w.sliceCycles(100), 2000u);
    EXPECT_GE(w.sliceCycles(200), 3000u);
    // Below the validity floor the envelope clamps, staying an upper
    // bound for monotone cycle counts.
    EXPECT_EQ(w.sliceCycles(10), w.sliceCycles(100));
}

TEST(WaveCostFit, DegenerateMeasurementsYieldFlatEnvelope)
{
    // Equal cycles at both points (sub-linear regime): slope 0, the
    // whole cost lands in the intercept.
    serve::WaveCost w =
        serve::fitWaveCost(100, 5000, 200, 5000, 0.0, 0.0);
    EXPECT_EQ(0.0, w.cyclesPerElement);
    EXPECT_GE(w.sliceCycles(1000), 5000u);
}

TEST(CostBook, FindIsKeyedOnTheHash)
{
    serve::CostBook book;
    serve::TableKey key;
    key.hash = 42;
    key.label = "a";
    serve::WaveCost w;
    w.fixedCycles = 7;
    book.set(key, w);
    serve::TableKey sameHash;
    sameHash.hash = 42;
    sameHash.label = "different label";
    ASSERT_NE(nullptr, book.find(sameHash));
    EXPECT_EQ(7.0, book.find(sameHash)->fixedCycles);
    serve::TableKey other;
    other.hash = 43;
    EXPECT_EQ(nullptr, book.find(other));
    EXPECT_EQ(1u, book.size());
}

// ---------------------------------------------------------------------
// Calibration containment
// ---------------------------------------------------------------------

TEST(Certify, EnvelopeContainsMeasuredCyclesAcrossSizes)
{
    MethodSpec spec; // interpolated L-LUT, WRAM, 2^12
    CertifyOptions copts;
    copts.tasklets = 8;
    copts.chunkElements = 32;
    MethodCostCertificate cert =
        certifyMethodCost(Function::Sin, spec, copts);
    ASSERT_TRUE(cert.feasible);
    EXPECT_EQ(cert.key.hash, batchTableKey(Function::Sin, spec).hash);
    EXPECT_GT(cert.cost.cyclesPerElement, 0.0);

    // Re-run the exact serving kernel at other element counts (and a
    // different input seed) and check the margined envelope contains
    // every measurement — including sizes below the calibration floor
    // where the envelope clamps.
    FunctionEvaluator ev = FunctionEvaluator::create(Function::Sin,
                                                     spec);
    Domain dom = functionDomain(Function::Sin);
    for (uint32_t n : {128u, 256u, 512u, 2048u, 4096u}) {
        DpuCore dpu;
        ev.attach(dpu);
        std::vector<float> inputs = uniformFloats(
            n, static_cast<float>(dom.lo), static_cast<float>(dom.hi),
            0x0ddba11 + n);
        uint32_t bytes = n * static_cast<uint32_t>(sizeof(float));
        uint32_t inAddr = dpu.mramAlloc(bytes);
        uint32_t outAddr = dpu.mramAlloc(bytes);
        dpu.hostWriteMram(inAddr, inputs.data(), bytes);
        ShardTask task;
        task.dpu = 0;
        task.inAddr = inAddr;
        task.outAddr = outAddr;
        task.elements = n;
        Kernel k = makeStreamingKernel(ev, task, copts.chunkElements);
        uint64_t cycles = dpu.launch(copts.tasklets, k).cycles;
        EXPECT_LE(cycles, cert.cost.sliceCycles(n)) << "n=" << n;
        // The envelope is a bound, not a wild overestimate: within
        // the margin plus slack of the measurement for calibrated
        // sizes.
        if (n >= 512) {
            EXPECT_LE(cert.cost.sliceCycles(n),
                      static_cast<uint64_t>(
                          static_cast<double>(cycles) * 1.8 + 3000))
                << "n=" << n;
        }
    }
}

TEST(Certify, InfeasibleConfigurationsComeBackUncertified)
{
    // Unsupported combination: fixed-point CORDIC is trig-only.
    MethodSpec fixedCordic;
    fixedCordic.method = Method::CordicFixed;
    MethodCostCertificate unsupported =
        certifyMethodCost(Function::Exp, fixedCordic);
    EXPECT_FALSE(unsupported.feasible);

    // Tables exceeding the scratchpad: 2^20 floats in WRAM.
    MethodSpec huge;
    huge.log2Entries = 20;
    huge.placement = Placement::Wram;
    MethodCostCertificate toobig =
        certifyMethodCost(Function::Sin, huge);
    EXPECT_FALSE(toobig.feasible);
}

// ---------------------------------------------------------------------
// Cost-aware wave sizing in the pipeline
// ---------------------------------------------------------------------

namespace {

/** One full pipeline run of `elements` sine elements over `dpus`
 * cores; returns the report and leaves outputs in @p out. */
serve::ServeReport
runSinPipeline(uint32_t dpus, uint32_t elements,
               const std::vector<float>& in, std::vector<float>& out,
               const serve::CostBook* book)
{
    PimSystem sys(dpus);
    EvaluatorCatalog catalog;
    MethodSpec spec;
    serve::TableKey key = catalog.add(Function::Sin, spec);
    serve::BatchQueue queue;
    queue.push(makeRequest(key, in.data(), out.data(), elements));
    queue.close();
    serve::PipelineOptions popts;
    popts.numTasklets = 16;
    popts.perDpuElements = 512;
    popts.costBook = book;
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);
    return pipeline.run(queue);
}

} // namespace

TEST(CostAwarePipeline, EmptyBookIsBitIdenticalToNullBook)
{
    const uint32_t elements = 2048;
    std::vector<float> in(elements);
    for (uint32_t i = 0; i < elements; ++i)
        in[i] = 6.28f * static_cast<float>(i) / elements;
    std::vector<float> outNull(elements, 0.0f);
    std::vector<float> outEmpty(elements, 0.0f);

    serve::ServeReport a =
        runSinPipeline(4, elements, in, outNull, nullptr);
    serve::CostBook empty;
    serve::ServeReport b =
        runSinPipeline(4, elements, in, outEmpty, &empty);

    ASSERT_TRUE(a.complete);
    ASSERT_TRUE(b.complete);
    EXPECT_EQ(a.waves, b.waves);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.modeledSeconds, b.modeledSeconds);
    EXPECT_EQ(a.syncSeconds, b.syncSeconds);
    EXPECT_EQ(outNull, outEmpty);
}

TEST(CostAwarePipeline, CertifiedBookIsNeverSlowerAndSameOutputs)
{
    const uint32_t elements = 2048;
    std::vector<float> in(elements);
    for (uint32_t i = 0; i < elements; ++i)
        in[i] = 6.28f * static_cast<float>(i) / elements;
    std::vector<float> outOff(elements, 0.0f);
    std::vector<float> outOn(elements, 0.0f);

    serve::ServeReport off =
        runSinPipeline(4, elements, in, outOff, nullptr);

    MethodSpec spec;
    CertifyOptions copts;
    copts.tasklets = 16;
    copts.chunkElements = 32;
    MethodCostCertificate cert =
        certifyMethodCost(Function::Sin, spec, copts);
    ASSERT_TRUE(cert.feasible);
    serve::CostBook book;
    book.set(cert.key, cert.cost);
    serve::ServeReport on =
        runSinPipeline(4, elements, in, outOn, &book);

    ASSERT_TRUE(off.complete);
    ASSERT_TRUE(on.complete);
    EXPECT_EQ(outOff, outOn); // results never depend on the book
    EXPECT_LE(on.modeledSeconds,
              off.modeledSeconds * (1.0 + 1e-9));
}

TEST(CostAwarePipeline, BalancedWaveIsSplitAndFaster)
{
    // A synthetic kernel charging 16 instructions per element makes
    // the compute leg comparable to one transfer leg (16 cycles at
    // 350 MHz ≈ 4 bytes at 0.35 GB/s), the regime where splitting
    // pays: sub-wave compute overlaps the other sub-wave's transfers.
    // The predictor must split the single full wave and the actual
    // timeline must get strictly shorter.
    const uint32_t elements = 2048;
    std::vector<float> in(elements, 1.0f);
    serve::TableKey key;
    key.hash = 7;
    key.label = "charge16";
    serve::TableProvider provider =
        [](const serve::TableKey&, PimSystem&) {
            serve::TableBinding b;
            b.valid = true;
            b.tableBytes = 0;
            b.makeKernel = [](const ShardTask& t) -> Kernel {
                uint64_t work = t.elements * 16u;
                return [work](TaskletContext& ctx) {
                    if (ctx.taskletId() == 0)
                        ctx.charge(static_cast<uint32_t>(work));
                };
            };
            return b;
        };
    auto runOnce = [&](const serve::CostBook* book,
                       std::vector<float>& out) {
        PimSystem sys(4);
        serve::BatchQueue queue;
        queue.push(
            makeRequest(key, in.data(), out.data(), elements));
        queue.close();
        serve::PipelineOptions popts;
        popts.perDpuElements = 512;
        popts.costBook = book;
        serve::ServePipeline pipeline(sys, provider, popts);
        return pipeline.run(queue);
    };

    std::vector<float> outOff(elements, 0.0f);
    serve::ServeReport off = runOnce(nullptr, outOff);
    ASSERT_TRUE(off.complete);
    EXPECT_EQ(1u, off.waves);

    serve::CostBook book;
    serve::WaveCost exact;
    exact.cyclesPerElement = 16.0;
    exact.fixedCycles = 100.0;
    exact.minElements = 1;
    book.set(key, exact);
    std::vector<float> outOn(elements, 0.0f);
    serve::ServeReport on = runOnce(&book, outOn);
    ASSERT_TRUE(on.complete);
    EXPECT_GT(on.waves, 1u); // the wave was split
    EXPECT_EQ(outOff, outOn);
    EXPECT_LT(on.modeledSeconds, off.modeledSeconds);
}
