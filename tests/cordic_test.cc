/**
 * @file
 * CORDIC engine tests: convergence of every mode, iteration/accuracy
 * scaling, gain correctness, the hyperbolic repeat schedule, the
 * fixed-point ablation engine, and the CORDIC+LUT combination.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/cordic.h"
#include "transpim/cordic_lut.h"

namespace tpl {
namespace transpim {
namespace {

TEST(CordicSchedule, CircularIsSequential)
{
    auto s = cordicSchedule(CordicMode::Circular, 8);
    std::vector<uint32_t> expect{0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(expect, s);
}

TEST(CordicSchedule, HyperbolicRepeats)
{
    auto s = cordicSchedule(CordicMode::Hyperbolic, 16);
    // Starts at 1; index 4 repeats; 13 repeats.
    std::vector<uint32_t> expect{1, 2, 3, 4, 4, 5, 6, 7,
                                 8, 9, 10, 11, 12, 13, 13, 14};
    EXPECT_EQ(expect, s);
}

TEST(CordicEngine, CircularRotationComputesSinCos)
{
    CordicEngine eng(CordicMode::Circular, 24, Placement::Host);
    SplitMix64 rng(41);
    for (int i = 0; i < 2000; ++i) {
        float z = rng.nextFloat(-1.5707f, 1.5707f);
        auto r = eng.rotate(z, nullptr);
        EXPECT_NEAR(std::cos(z), r.x, 2e-6) << z;
        EXPECT_NEAR(std::sin(z), r.y, 2e-6) << z;
    }
}

TEST(CordicEngine, AccuracyImprovesWithIterations)
{
    double prevErr = 1.0;
    for (uint32_t n : {6u, 10u, 14u, 18u}) {
        CordicEngine eng(CordicMode::Circular, n, Placement::Host);
        double maxErr = 0.0;
        SplitMix64 rng(42);
        for (int i = 0; i < 500; ++i) {
            float z = rng.nextFloat(0.0f, 1.5707f);
            auto r = eng.rotate(z, nullptr);
            maxErr = std::max(maxErr,
                              std::abs(std::sin(z) - (double)r.y));
        }
        EXPECT_LT(maxErr, prevErr) << n;
        // Error shrinks roughly one bit per iteration.
        EXPECT_LT(maxErr, std::ldexp(4.0, -static_cast<int>(n))) << n;
        prevErr = maxErr;
    }
}

TEST(CordicEngine, HyperbolicRotationComputesSinhCosh)
{
    CordicEngine eng(CordicMode::Hyperbolic, 24, Placement::Host);
    SplitMix64 rng(43);
    for (int i = 0; i < 2000; ++i) {
        float z = rng.nextFloat(-1.1f, 1.1f);
        auto r = eng.rotate(z, nullptr);
        EXPECT_NEAR(std::cosh(z), r.x, 4e-6) << z;
        EXPECT_NEAR(std::sinh(z), r.y, 4e-6) << z;
    }
}

TEST(CordicEngine, HyperbolicVectoringComputesAtanh)
{
    CordicEngine eng(CordicMode::Hyperbolic, 28, Placement::Host);
    SplitMix64 rng(44);
    for (int i = 0; i < 2000; ++i) {
        // log-style inputs: x0 = m+1, y0 = m-1, m in [1, 2).
        float m = rng.nextFloat(1.0f, 2.0f);
        auto r = eng.vector(m + 1.0f, m - 1.0f, nullptr);
        double expect = std::atanh((m - 1.0) / (m + 1.0));
        EXPECT_NEAR(expect, r.z, 4e-6) << m;
    }
}

TEST(CordicEngine, HyperbolicVectoringMagnitudeGain)
{
    CordicEngine eng(CordicMode::Hyperbolic, 28, Placement::Host);
    SplitMix64 rng(45);
    for (int i = 0; i < 2000; ++i) {
        // sqrt-style inputs: m in [0.5, 2).
        float m = rng.nextFloat(0.5f, 2.0f);
        auto r = eng.vector(m + 0.25f, m - 0.25f, nullptr);
        double expect = std::sqrt((double)m);
        EXPECT_NEAR(expect, (double)r.x * eng.invGain(), 6e-6) << m;
    }
}

TEST(CordicEngine, GainConstants)
{
    CordicEngine circ(CordicMode::Circular, 24, Placement::Host);
    // The classic circular CORDIC gain.
    EXPECT_NEAR(1.6467602, circ.gain(), 1e-5);
    EXPECT_NEAR(0.6072529, circ.invGain(), 1e-5);
    CordicEngine hyp(CordicMode::Hyperbolic, 24, Placement::Host);
    EXPECT_LT(hyp.gain(), 1.0);
    EXPECT_NEAR(1.0, hyp.gain() * hyp.invGain(), 1e-6);
}

TEST(CordicEngine, CostScalesWithIterations)
{
    CountingSink s8, s24;
    CordicEngine e8(CordicMode::Circular, 8, Placement::Host);
    CordicEngine e24(CordicMode::Circular, 24, Placement::Host);
    e8.rotate(1.0f, &s8);
    e24.rotate(1.0f, &s24);
    EXPECT_GT(s24.total(), 2.5 * s8.total());
    // Each float iteration costs ~3 emulated adds + 2 ldexp (~200).
    double perIter = (double)(s24.total() - s8.total()) / 16.0;
    EXPECT_GT(perIter, 120.0);
    EXPECT_LT(perIter, 320.0);
}

TEST(CordicFixedEngine, RotationMatchesLibm)
{
    CordicFixedEngine eng(CordicMode::Circular, 28, Placement::Host);
    SplitMix64 rng(46);
    for (int i = 0; i < 2000; ++i) {
        double z = rng.nextFloat(0.0f, 1.5707f);
        auto r = eng.rotate(Fixed::fromDouble(z), nullptr);
        EXPECT_NEAR(std::cos(z), r.x.toDouble(), 1e-7) << z;
        EXPECT_NEAR(std::sin(z), r.y.toDouble(), 1e-7) << z;
    }
}

TEST(CordicFixedEngine, MuchCheaperPerIterationThanFloat)
{
    CountingSink fixedSink, floatSink;
    CordicFixedEngine fixedEng(CordicMode::Circular, 24,
                               Placement::Host);
    CordicEngine floatEng(CordicMode::Circular, 24, Placement::Host);
    fixedEng.rotate(Fixed::fromDouble(1.0), &fixedSink);
    floatEng.rotate(1.0f, &floatSink);
    EXPECT_GT(floatSink.total(), 10 * fixedSink.total());
}

TEST(CordicFixedEngine, HyperbolicVectoring)
{
    CordicFixedEngine eng(CordicMode::Hyperbolic, 28, Placement::Host);
    auto r = eng.vector(Fixed::fromDouble(1.5 + 1.0),
                        Fixed::fromDouble(1.5 - 1.0), nullptr);
    EXPECT_NEAR(std::atanh(0.5 / 2.5), r.z.toDouble(), 1e-7);
}

TEST(CordicLutEngine, MatchesFullCordicAccuracy)
{
    CordicLutEngine lutEng(CordicMode::Circular, 24, 8, 0.0,
                           1.5707963267948966, Placement::Host);
    SplitMix64 rng(47);
    for (int i = 0; i < 2000; ++i) {
        float z = rng.nextFloat(0.0f, 1.5707f);
        auto r = lutEng.rotate(z, nullptr);
        EXPECT_NEAR(std::sin(z), r.y, 4e-6) << z;
        EXPECT_NEAR(std::cos(z), r.x, 4e-6) << z;
    }
}

TEST(CordicLutEngine, FasterThanPureCordic)
{
    CordicEngine pure(CordicMode::Circular, 24, Placement::Host);
    CordicLutEngine comb(CordicMode::Circular, 24, 8, 0.0,
                         1.5707963267948966, Placement::Host);
    CountingSink pureSink, combSink;
    pure.rotate(1.0f, &pureSink);
    comb.rotate(1.0f, &combSink);
    EXPECT_LT(combSink.total(), 0.8 * pureSink.total());
    EXPECT_EQ(24u - 8u, comb.tailIterations());
}

TEST(CordicLutEngine, HyperbolicMode)
{
    CordicLutEngine eng(CordicMode::Hyperbolic, 24, 7, -1.12, 1.12,
                        Placement::Host);
    SplitMix64 rng(48);
    for (int i = 0; i < 1000; ++i) {
        float z = rng.nextFloat(-1.1f, 1.1f);
        auto r = eng.rotate(z, nullptr);
        EXPECT_NEAR(std::cosh(z), r.x, 1e-5) << z;
        EXPECT_NEAR(std::sinh(z), r.y, 1e-5) << z;
    }
}

TEST(CordicEngine, TablePlacementOnDpu)
{
    sim::DpuCore dpu;
    CordicEngine eng(CordicMode::Circular, 20, Placement::Wram);
    eng.attach(dpu);
    EXPECT_EQ(20u * 4u, eng.memoryBytes());
    EXPECT_GE(dpu.wramAllocated(), eng.memoryBytes());
    // Rotation still works against the attached table.
    sim::LaunchStats stats = dpu.launch(1, [&](sim::TaskletContext& ctx) {
        auto r = eng.rotate(0.5f, &ctx);
        EXPECT_NEAR(std::sin(0.5), r.y, 1e-5);
    });
    EXPECT_GT(stats.totalInstructions, 0u);
}

} // namespace
} // namespace transpim
} // namespace tpl
