/**
 * @file
 * pimjournal tests: per-request causal spans through the serve
 * pipeline, the exact latency-decomposition identity, byte-identity
 * of the journal across simulation thread counts, statistics
 * neutrality, exact percentile extraction, SLO spec grammar and
 * accounting, and straggler-anomaly cross-validation against
 * pimfault-injected stragglers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "pimsim/obs/journal.h"
#include "pimsim/serve/pipeline.h"
#include "transpim/serve_glue.h"

using namespace tpl;
using namespace tpl::sim;
using namespace tpl::transpim;

namespace {

serve::Request
makeRequest(const serve::TableKey& key, const float* in, float* out,
            uint64_t elements, double arrival = 0.0)
{
    serve::Request r;
    r.table = key;
    r.input = in;
    r.output = out;
    r.elements = elements;
    r.arrivalSeconds = arrival;
    return r;
}

/** One pipelined serve run of three sin requests (one multi-wave, two
 * coalescing) with an optional journal attached. */
struct RunResult
{
    serve::ServeReport rep;
    std::string jsonl;
    std::vector<obs::RequestLatency> latencies;
    std::vector<obs::JournalEvent> events;
    std::vector<float> out;
    double makespan = 0.0;
};

RunResult
runServe(uint32_t simThreads, bool withJournal,
         const char* faultPlanText = nullptr)
{
    PimSystem sys(4);
    sys.setSimThreads(simThreads);
    if (faultPlanText) {
        auto plan = fault::FaultPlan::parse(faultPlanText);
        EXPECT_TRUE(plan.has_value());
        sys.armFaults(*plan);
    }
    EvaluatorCatalog catalog;
    MethodSpec spec;
    serve::TableKey key = catalog.add(Function::Sin, spec);

    const uint32_t big = 4096, small = 512;
    std::vector<float> in(big + 2 * small), out(big + 2 * small, 0.0f);
    for (uint32_t i = 0; i < in.size(); ++i)
        in[i] = 6.28f * static_cast<float>(i) /
                static_cast<float>(in.size());

    obs::Journal journal;
    serve::BatchQueue queue;
    if (withJournal)
        queue.setJournal(&journal);
    queue.push(makeRequest(key, in.data(), out.data(), big, 0.0));
    queue.push(makeRequest(key, in.data() + big, out.data() + big,
                           small, 1e-6));
    queue.push(makeRequest(key, in.data() + big + small,
                           out.data() + big + small, small, 2e-6));
    queue.close();

    serve::PipelineOptions popts;
    popts.numTasklets = 8;
    popts.perDpuElements = 256; // 4 DPUs -> 1024-element waves
    if (withJournal)
        popts.journal = &journal;
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);

    RunResult res;
    res.rep = pipeline.run(queue);
    res.jsonl = journal.toJsonl();
    res.latencies = journal.latencies();
    res.events = journal.events();
    res.out = out;
    res.makespan = res.rep.modeledSeconds;
    return res;
}

uint64_t
countEvents(const std::vector<obs::JournalEvent>& evs,
            const std::string& kind, uint64_t request)
{
    uint64_t n = 0;
    for (const auto& ev : evs)
        if (ev.kind == kind && ev.request == request)
            ++n;
    return n;
}

} // namespace

// ---------------------------------------------------------------------
// Causal spans.

TEST(Journal, RequestSpansCoverEveryStage)
{
    RunResult res = runServe(1, true);
    ASSERT_TRUE(res.rep.complete);
    EXPECT_EQ(res.rep.waves, 5u); // 4 waves of req 1 + 1 coalesced

    // Request 1 (4096 elements) rides 4 waves; requests 2 and 3
    // coalesce into the final wave.
    EXPECT_EQ(countEvents(res.events, "enqueue", 1), 1u);
    EXPECT_EQ(countEvents(res.events, "coalesce", 1), 4u);
    EXPECT_EQ(countEvents(res.events, "scatter", 1), 4u);
    EXPECT_EQ(countEvents(res.events, "compute", 1), 4u);
    EXPECT_EQ(countEvents(res.events, "gather", 1), 4u);
    EXPECT_EQ(countEvents(res.events, "done", 1), 1u);
    for (uint64_t r : {2u, 3u}) {
        EXPECT_EQ(countEvents(res.events, "enqueue", r), 1u);
        EXPECT_EQ(countEvents(res.events, "coalesce", r), 1u);
        EXPECT_EQ(countEvents(res.events, "done", r), 1u);
    }
    EXPECT_EQ(countEvents(res.events, "anomaly", 0), 0u);

    ASSERT_EQ(res.latencies.size(), 3u);
    for (const obs::RequestLatency& lat : res.latencies) {
        EXPECT_TRUE(lat.complete);
        EXPECT_NE(lat.table.find("sin"), std::string::npos) << lat.table;
        EXPECT_GT(lat.latencySeconds(), 0.0);
        EXPECT_GE(lat.queueWaitSeconds, 0.0);
        EXPECT_GT(lat.transferSeconds, 0.0);
        EXPECT_GT(lat.computeSeconds, 0.0);
    }
    EXPECT_EQ(res.latencies[0].waves, 4u);
    EXPECT_EQ(res.latencies[0].elements, 4096u);
    EXPECT_EQ(res.latencies[1].waves, 1u);
    EXPECT_EQ(res.latencies[2].waves, 1u);
}

TEST(Journal, DecompositionIdentityIsExact)
{
    RunResult res = runServe(1, true);
    ASSERT_TRUE(res.rep.complete);
    ASSERT_EQ(res.latencies.size(), 3u);
    for (const obs::RequestLatency& lat : res.latencies) {
        const double sum = lat.queueWaitSeconds + lat.transferSeconds +
                           lat.computeSeconds + lat.stallSeconds;
        const double latency = lat.latencySeconds();
        // stall is the residual, so the identity holds to rounding.
        EXPECT_NEAR(latency, sum, 1e-12 + 1e-9 * latency)
            << "request " << lat.request;
        EXPECT_DOUBLE_EQ(lat.queueWaitSeconds,
                         lat.firstScatterSeconds - lat.arrivalSeconds);
    }
    // The multi-wave request overlaps its own waves in the double-
    // buffered schedule: its legs sum past the span, so the residual
    // goes negative — that is the documented signature of overlap.
    EXPECT_LT(res.latencies[0].stallSeconds, 0.0);
}

TEST(Journal, ByteIdenticalAcrossSimThreadCounts)
{
    RunResult ref = runServe(1, true);
    ASSERT_FALSE(ref.jsonl.empty());
    for (uint32_t threads : {4u, 16u}) {
        RunResult res = runServe(threads, true);
        EXPECT_EQ(ref.jsonl, res.jsonl) << "threads=" << threads;
    }
}

TEST(Journal, StatisticsNeutralWhenAttached)
{
    RunResult off = runServe(4, false);
    RunResult on = runServe(4, true);
    ASSERT_TRUE(off.rep.complete);
    ASSERT_TRUE(on.rep.complete);
    // Modeled statistics are bit-identical with the journal on/off.
    EXPECT_EQ(off.rep.modeledSeconds, on.rep.modeledSeconds);
    EXPECT_EQ(off.rep.syncSeconds, on.rep.syncSeconds);
    EXPECT_EQ(off.rep.computeCycles, on.rep.computeCycles);
    EXPECT_EQ(off.rep.waves, on.rep.waves);
    EXPECT_EQ(off.rep.anomalousWaves, on.rep.anomalousWaves);
    ASSERT_EQ(off.out.size(), on.out.size());
    EXPECT_EQ(0, std::memcmp(off.out.data(), on.out.data(),
                             off.out.size() * sizeof(float)));
    // And the off run really recorded nothing.
    EXPECT_TRUE(off.jsonl.empty());
    EXPECT_FALSE(on.jsonl.empty());
}

// ---------------------------------------------------------------------
// Straggler anomaly detection, cross-validated against pimfault.

TEST(Journal, InjectedStragglerWaveIsFlagged)
{
    // DPU 3 runs 8x slow on every launch (pure slowdown, no launch
    // timeout armed, so it is never masked — exactly the anomaly the
    // detector exists for).
    RunResult res = runServe(
        1, true, "seed 1\nfault kind=dpu-straggler dpu=3 prob=1 slowdown=8\n");
    ASSERT_TRUE(res.rep.complete);
    EXPECT_GT(res.rep.anomalousWaves, 0u);
    EXPECT_EQ(res.rep.anomalousWaves, res.rep.waves);
    uint64_t anomalies = 0;
    for (const auto& ev : res.events)
        if (ev.kind == "anomaly") {
            ++anomalies;
            EXPECT_NE(ev.wave, obs::JournalEvent::kNoWave);
            EXPECT_GT(ev.cycles, 0u);
            EXPECT_NE(ev.note.find("median"), std::string::npos);
        }
    EXPECT_EQ(anomalies, res.rep.anomalousWaves);
    for (const serve::WaveStats& ws : res.rep.waveStats) {
        EXPECT_EQ(ws.stragglerDpus, 1u);
        EXPECT_GT(ws.medianCycles, 0u);
        EXPECT_GT(static_cast<double>(ws.maxCycles),
                  4.0 * static_cast<double>(ws.medianCycles));
    }

    // Control: the fault-free run flags nothing (see
    // RequestSpansCoverEveryStage) and a uniform system never
    // trips the detector spuriously.
    RunResult clean = runServe(1, true);
    EXPECT_EQ(clean.rep.anomalousWaves, 0u);
}

// ---------------------------------------------------------------------
// Exact percentiles.

TEST(Journal, SummarizeComputesExactNearestRankPercentiles)
{
    obs::Journal j;
    // 100 completed requests with latencies 1ms..100ms, plus one
    // incomplete straggler that must not pollute the percentiles.
    for (uint64_t i = 1; i <= 100; ++i) {
        obs::RequestLatency lat;
        lat.request = i;
        lat.table = "t";
        lat.complete = true;
        lat.arrivalSeconds = 0.0;
        lat.completedSeconds = static_cast<double>(i) * 1e-3;
        j.recordLatency(lat);
    }
    obs::RequestLatency bad;
    bad.request = 101;
    bad.complete = false;
    j.recordLatency(bad);

    obs::LatencySummary s = j.summarize(2.0);
    EXPECT_EQ(s.requests, 100u);
    EXPECT_EQ(s.incomplete, 1u);
    EXPECT_DOUBLE_EQ(s.p50, 0.050);
    EXPECT_DOUBLE_EQ(s.p90, 0.090);
    EXPECT_DOUBLE_EQ(s.p99, 0.099);
    EXPECT_DOUBLE_EQ(s.p999, 0.100);
    EXPECT_DOUBLE_EQ(s.max, 0.100);
    EXPECT_NEAR(s.mean, 0.0505, 1e-12);
    EXPECT_DOUBLE_EQ(s.requestsPerSecond, 50.0);
}

TEST(Journal, JsonlIsCanonicalAndSorted)
{
    RunResult res = runServe(1, true);
    ASSERT_FALSE(res.jsonl.empty());
    // Every line is one JSON object; event lines come time-sorted,
    // then latency lines sorted by request id.
    double lastT = -1.0;
    bool inLatencies = false;
    size_t lines = 0;
    size_t pos = 0;
    while (pos < res.jsonl.size()) {
        size_t eol = res.jsonl.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        const std::string line = res.jsonl.substr(pos, eol - pos);
        pos = eol + 1;
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        if (line.find("\"kind\": \"latency\"") != std::string::npos) {
            inLatencies = true;
            continue;
        }
        EXPECT_FALSE(inLatencies)
            << "event line after latency lines: " << line;
        const size_t tKey = line.find("\"t\": ");
        ASSERT_NE(tKey, std::string::npos);
        const double t = std::strtod(line.c_str() + tKey + 5, nullptr);
        EXPECT_GE(t, lastT);
        lastT = t;
    }
    EXPECT_GT(lines, 10u);
}

// ---------------------------------------------------------------------
// SLO spec grammar + accounting.

TEST(Slo, SpecGrammarParses)
{
    obs::SloSpec s;
    ASSERT_TRUE(obs::SloSpec::parse("p99<2ms", s));
    EXPECT_DOUBLE_EQ(s.percentile, 99.0);
    EXPECT_DOUBLE_EQ(s.targetSeconds, 2e-3);

    ASSERT_TRUE(obs::SloSpec::parse("p50:150us", s));
    EXPECT_DOUBLE_EQ(s.percentile, 50.0);
    EXPECT_DOUBLE_EQ(s.targetSeconds, 150e-6);

    ASSERT_TRUE(obs::SloSpec::parse("p99.9<1s", s));
    EXPECT_DOUBLE_EQ(s.percentile, 99.9);
    EXPECT_DOUBLE_EQ(s.targetSeconds, 1.0);

    ASSERT_TRUE(obs::SloSpec::parse("p90<500ns", s));
    EXPECT_DOUBLE_EQ(s.targetSeconds, 500e-9);

    // Malformed specs are rejected and leave the spec untouched.
    obs::SloSpec keep;
    keep.percentile = 42.0;
    keep.targetSeconds = 0.042;
    for (const char* bad :
         {"", "99<2ms", "p0<1ms", "p100<1ms", "p99<", "p99<5",
          "p99<5m", "p99>5ms", "p99<5msx", "p<5ms", "p99<-5ms"}) {
        EXPECT_FALSE(obs::SloSpec::parse(bad, keep)) << bad;
        EXPECT_DOUBLE_EQ(keep.percentile, 42.0) << bad;
        EXPECT_DOUBLE_EQ(keep.targetSeconds, 0.042) << bad;
    }

    ASSERT_TRUE(obs::SloSpec::parse("p99<2ms", s));
    EXPECT_EQ(s.toText(), "p99<0.002s");
    EXPECT_NEAR(s.allowedBadFraction(), 0.01, 1e-12);
}

TEST(Slo, TrackerAccountsPerTableAndCountsIncompleteAsBad)
{
    obs::SloSpec spec;
    ASSERT_TRUE(obs::SloSpec::parse("p90<15ms", spec));
    obs::SloTracker tracker(spec);

    // Table A: exactly at the error budget (1 of 10 over target).
    for (int i = 0; i < 9; ++i)
        tracker.observe("a", 0.010, true);
    tracker.observe("a", 0.020, true);
    // Table B: within latency but one answer never arrived.
    tracker.observe("b", 0.001, true);
    tracker.observe("b", 0.0, false); // incomplete => bad

    std::vector<obs::SloResult> results = tracker.results();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].table, "a");
    EXPECT_EQ(results[0].good, 9u);
    EXPECT_EQ(results[0].bad, 1u);
    EXPECT_NEAR(results[0].badFraction, 0.1, 1e-12);
    EXPECT_NEAR(results[0].burnRate, 1.0, 1e-9);
    EXPECT_TRUE(results[0].met);

    EXPECT_EQ(results[1].table, "b");
    EXPECT_EQ(results[1].good, 1u);
    EXPECT_EQ(results[1].bad, 1u);
    EXPECT_FALSE(results[1].met); // burn rate 5 >> 1

    obs::SloResult total = tracker.total();
    EXPECT_EQ(total.table, "*");
    EXPECT_EQ(total.good, 10u);
    EXPECT_EQ(total.bad, 2u);
    EXPECT_NEAR(total.badFraction, 2.0 / 12.0, 1e-12);
}
