/**
 * @file
 * Static cycle-bound tests: natural-loop discovery and trip-count
 * inference (loops.h), soundness of the [BCET, WCET] interval against
 * the interpreter's modeled LaunchStats for every shipped mini-ISA
 * kernel at several tasklet counts (bound.h), the unbounded cases the
 * pass must refuse to bound, `@trip` annotation fallback, and
 * round-tripping of the serialized certificate (certificate.h).
 */

#include <gtest/gtest.h>

#include "pimsim/analysis/bound.h"
#include "pimsim/analysis/certificate.h"
#include "pimsim/analysis/cfg.h"
#include "pimsim/analysis/loops.h"
#include "pimsim/dpu.h"
#include "pimsim/isa.h"

#include "isa_kernels.h"

namespace tpl {
namespace sim {
namespace {

using check::BoundOptions;
using check::computeBound;
using check::CycleBound;
using check::findLoops;
using check::KernelCertificate;
using check::LoopForest;
using check::LoopInfo;
using check::parseCertificate;
using check::parseTripAnnotations;
using check::serializeCertificate;
using testkernels::kCordicKernel;
using testkernels::kLLutKernel;
using testkernels::kLLutParKernel;
using testkernels::substConst;

// ---------------------------------------------------------------------
// Natural loops + trip counts
// ---------------------------------------------------------------------

TEST(Loops, CountedLoopIsFoundWithExactTrip)
{
    Program p = assemble(R"(
        movi r1, 0
        movi r2, 17
    loop:
        bge  r1, r2, done
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )");
    check::Cfg cfg = check::buildCfg(p);
    LoopForest forest = findLoops(p, cfg);
    EXPECT_FALSE(forest.irreducible);
    ASSERT_EQ(1u, forest.loops.size());
    const LoopInfo& loop = forest.loops[0];
    EXPECT_TRUE(loop.headerOnlyExit);
    EXPECT_TRUE(loop.tripKnown);
    EXPECT_EQ(17u, loop.tripCount);
    EXPECT_FALSE(loop.annotated);
    EXPECT_EQ(1u, loop.depth);
}

TEST(Loops, BreakLoopTripIsOnlyAnUpperBound)
{
    // Counted header (would exit after 8 trips) plus a data-dependent
    // break in the body: an early-breaking run completes fewer
    // iterations, so the header count must surface as an upper bound,
    // never as an exact trip.
    Program p = assemble(R"(
        movi r1, 0
        movi r2, 8
        movi r3, 0
        ldw  r6, r3, 0
        movi r7, 1
    loop:
        bge  r1, r2, done
        beq  r6, r7, done
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )");
    LoopForest forest = findLoops(p, check::buildCfg(p));
    ASSERT_EQ(1u, forest.loops.size());
    const LoopInfo& loop = forest.loops[0];
    EXPECT_FALSE(loop.headerOnlyExit);
    EXPECT_FALSE(loop.tripKnown);
    EXPECT_TRUE(loop.tripUpperKnown);
    EXPECT_EQ(8u, loop.tripUpper);
}

TEST(Loops, StrideAndDownCountingLoops)
{
    // i = 20; while (i != 0) i -= 4;  -> 5 trips (bne exit).
    Program down = assemble(R"(
        movi r1, 20
        movi r2, 0
    loop:
        beq  r1, r2, done
        subi r1, r1, 4
        jmp  loop
    done:
        halt
    )");
    LoopForest f1 = findLoops(down, check::buildCfg(down));
    ASSERT_EQ(1u, f1.loops.size());
    EXPECT_TRUE(f1.loops[0].tripKnown);
    EXPECT_EQ(5u, f1.loops[0].tripCount);

    // Unsigned compare: i = 0; while (i <u 6) i += 4; -> 2 trips.
    Program stride = assemble(R"(
        movi r1, 0
        movi r2, 6
    loop:
        bgeu r1, r2, done
        addi r1, r1, 4
        jmp  loop
    done:
        halt
    )");
    LoopForest f2 = findLoops(stride, check::buildCfg(stride));
    ASSERT_EQ(1u, f2.loops.size());
    EXPECT_TRUE(f2.loops[0].tripKnown);
    EXPECT_EQ(2u, f2.loops[0].tripCount);
}

TEST(Loops, NestedLoopsFormAForest)
{
    Program p = assemble(R"(
        movi r1, 0
        movi r2, 3
    outer:
        bge  r1, r2, done
        movi r3, 0
        movi r4, 5
    inner:
        bge  r3, r4, next
        addi r3, r3, 1
        jmp  inner
    next:
        addi r1, r1, 1
        jmp  outer
    done:
        halt
    )");
    LoopForest forest = findLoops(p, check::buildCfg(p));
    ASSERT_EQ(2u, forest.loops.size());
    // Innermost-first ordering.
    const LoopInfo& inner = forest.loops[0];
    const LoopInfo& outer = forest.loops[1];
    EXPECT_EQ(2u, inner.depth);
    EXPECT_EQ(1u, outer.depth);
    EXPECT_EQ(1u, outer.children.size());
    EXPECT_TRUE(inner.tripKnown);
    EXPECT_EQ(5u, inner.tripCount);
    EXPECT_TRUE(outer.tripKnown);
    EXPECT_EQ(3u, outer.tripCount);
}

TEST(Loops, DataDependentTripStaysUnknown)
{
    Program p = assemble(R"(
        movi r1, 0
        ntask r2
    loop:
        bge  r1, r2, done
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )");
    LoopForest forest = findLoops(p, check::buildCfg(p));
    ASSERT_EQ(1u, forest.loops.size());
    EXPECT_FALSE(forest.loops[0].tripKnown);
}

TEST(Loops, AnnotationSuppliesUnknownTrip)
{
    const std::string src = R"(
        movi r1, 0
        ntask r2
    loop:
        bge  r1, r2, done   # @trip(12)
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )";
    auto notes = parseTripAnnotations(src);
    ASSERT_EQ(1u, notes.size());
    Program p = assemble(src);
    LoopForest forest = findLoops(p, check::buildCfg(p), notes);
    ASSERT_EQ(1u, forest.loops.size());
    EXPECT_TRUE(forest.loops[0].tripKnown);
    EXPECT_TRUE(forest.loops[0].annotated);
    EXPECT_EQ(12u, forest.loops[0].tripCount);
}

// ---------------------------------------------------------------------
// Cycle bounds: exactness on single-path programs
// ---------------------------------------------------------------------

uint64_t
runCycles(const Program& p, uint32_t tasklets,
          DpuCore* core = nullptr)
{
    DpuCore local;
    DpuCore& dpu = core ? *core : local;
    dpu.launch(tasklets, [&](TaskletContext& ctx) { execute(p, ctx); });
    return dpu.lastLaunch().cycles;
}

TEST(Bound, StraightLineProgramIsExact)
{
    // ALU + WRAM traffic + DMA + barrier: single path, so the static
    // interval must collapse to the exact modeled cycle count.
    Program p = assemble(R"(
        movi r1, 0
        movi r2, 1024
        movi r3, 16
        ldma r1, r2, r3
        barrier
        ldw  r4, r1, 8
        addi r4, r4, 1
        stw  r4, r1, 8
        movi r5, 2048
        sdma r1, r5, r3
        halt
    )");
    for (uint32_t tasklets : {1u, 4u, 12u}) {
        BoundOptions opt;
        opt.tasklets = tasklets;
        CycleBound b = computeBound(p, opt);
        ASSERT_TRUE(b.bounded) << b.reason;
        EXPECT_EQ(b.bcet, b.wcet);
        EXPECT_EQ(runCycles(p, tasklets), b.bcet);
        EXPECT_EQ(32u, b.bytesMin);
        EXPECT_EQ(32u, b.bytesMax);
    }
}

TEST(Bound, CountedLoopIsExactForConstantWork)
{
    // 10-trip loop of pure constant-cost ALU work: still exact.
    Program p = assemble(R"(
        movi r1, 0
        movi r2, 10
        movi r3, 0
    loop:
        bge  r1, r2, done
        addi r3, r3, 7
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )");
    CycleBound b = computeBound(p);
    ASSERT_TRUE(b.bounded) << b.reason;
    EXPECT_EQ(b.bcet, b.wcet);
    EXPECT_EQ(runCycles(p, 1), b.bcet);
}

// ---------------------------------------------------------------------
// Cycle bounds: soundness on every shipped kernel
// ---------------------------------------------------------------------

std::string
llutSource(const char* kernel, uint32_t n, uint32_t inp, uint32_t out)
{
    std::string src = kernel;
    src = substConst(src, "@NPER", n); // parallel variant only
    src = substConst(src, "@N", n);
    src = substConst(src, "@PRAW", 0);
    src = substConst(src, "@MASK", (1 << 17) - 1);
    src = substConst(src, "@SHIFTC", 32 - 17);
    src = substConst(src, "@SHIFT", 17);
    src = substConst(src, "@INP", inp);
    src = substConst(src, "@TBLN", 4);
    src = substConst(src, "@TBL", 0);
    src = substConst(src, "@OUT", out);
    return src;
}

std::string
cordicSource()
{
    std::string src = kCordicKernel;
    src = substConst(src, "@Z0", 0x1000000);
    src = substConst(src, "@INVGAIN", 0x26dd3b6a);
    src = substConst(src, "@NITER", 24);
    src = substConst(src, "@ATBL", 0);
    return src;
}

void
expectContained(const Program& p, uint32_t tasklets,
                DpuCore& dpu, const char* what)
{
    BoundOptions opt;
    opt.tasklets = tasklets;
    CycleBound b = computeBound(p, opt);
    ASSERT_TRUE(b.bounded) << what << ": " << b.reason;
    dpu.launch(tasklets,
               [&](TaskletContext& ctx) { execute(p, ctx); });
    const LaunchStats& stats = dpu.lastLaunch();
    EXPECT_LE(b.bcet, stats.cycles)
        << what << " tasklets=" << tasklets;
    EXPECT_GE(b.wcet, stats.cycles)
        << what << " tasklets=" << tasklets;
    // The worst-case class partition bounds the observed partition.
    for (int c = 0; c < numInstrClasses; ++c) {
        EXPECT_GE(b.classWorst[c], stats.classInstructions[c])
            << what << " class " << c;
    }
}

TEST(BoundSoundness, ShippedKernelsFallInsideTheirBounds)
{
    for (uint32_t tasklets : {1u, 4u, 12u}) {
        {
            Program p =
                assemble(llutSource(kLLutKernel, 256, 8196, 9224));
            DpuCore dpu;
            std::vector<int32_t> inputs(256);
            for (uint32_t i = 0; i < 256; ++i)
                inputs[i] = static_cast<int32_t>(i * 0x00123457);
            dpu.hostWriteWram(8196, inputs.data(), 256 * 4);
            expectContained(p, tasklets, dpu, "llut");
        }
        {
            Program p =
                assemble(llutSource(kLLutParKernel, 16, 1024, 2048));
            DpuCore dpu;
            std::vector<int32_t> inputs(16 * 24);
            for (uint32_t i = 0; i < inputs.size(); ++i)
                inputs[i] = static_cast<int32_t>(i * 0x00765431);
            dpu.hostWriteWram(
                1024, inputs.data(),
                static_cast<uint32_t>(inputs.size()) * 4);
            expectContained(p, tasklets, dpu, "llut_par");
        }
        {
            Program p = assemble(cordicSource());
            DpuCore dpu;
            std::vector<int32_t> angles(24);
            for (uint32_t k = 0; k < 24; ++k)
                angles[k] = 0x1921FB5 >> k;
            dpu.hostWriteWram(0, angles.data(), 24 * 4);
            expectContained(p, tasklets, dpu, "cordic");
        }
    }
}

TEST(BoundSoundness, BranchyKernelHasStrictIntervalWhenDataVaries)
{
    // CORDIC's sign-dependent branch makes per-iteration work vary by
    // one instruction between the two arms; with mul absent the
    // interval is narrow but must still contain every run.
    Program p = assemble(cordicSource());
    CycleBound b = computeBound(p);
    ASSERT_TRUE(b.bounded) << b.reason;
    EXPECT_LT(b.instrMin, b.instrMax);
    EXPECT_LE(b.bcet, b.wcet);
}

TEST(BoundSoundness, BreakLoopBoundContainsEarlyAndFullRuns)
{
    // The break flag comes from WRAM, so the static pass cannot know
    // which iteration (if any) leaves early: the loop scales by
    // [0, 8] iterations and both the early-breaking and the
    // run-to-the-header-exit executions must land inside the bound.
    Program p = assemble(R"(
        movi r1, 0
        movi r2, 8
        movi r3, 0
        movi r4, 0
        ldw  r6, r3, 0
        movi r7, 1
    loop:
        bge  r1, r2, done
        beq  r6, r7, done
        addi r4, r4, 3
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )");
    CycleBound b = computeBound(p);
    ASSERT_TRUE(b.bounded) << b.reason;
    EXPECT_TRUE(b.usedTripUpper);
    EXPECT_LT(b.bcet, b.wcet);
    for (int32_t flag : {0, 1}) {
        DpuCore dpu;
        dpu.hostWriteWram(0, &flag, 4);
        dpu.launch(1,
                   [&](TaskletContext& ctx) { execute(p, ctx); });
        EXPECT_LE(b.bcet, dpu.lastLaunch().cycles)
            << "flag=" << flag;
        EXPECT_GE(b.wcet, dpu.lastLaunch().cycles)
            << "flag=" << flag;
    }
}

// ---------------------------------------------------------------------
// Unbounded cases: refuse, never guess
// ---------------------------------------------------------------------

TEST(Bound, DataDependentLoopIsUnbounded)
{
    Program p = assemble(R"(
        movi r1, 0
        ntask r2
    loop:
        bge  r1, r2, done
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )");
    CycleBound b = computeBound(p);
    EXPECT_FALSE(b.bounded);
    EXPECT_NE(std::string::npos, b.reason.find("trip count"));
}

TEST(Bound, AnnotationMakesItBoundedAndIsRecorded)
{
    const std::string src = R"(
        movi r1, 0
        ntask r2
    loop:
        bge  r1, r2, done   # @trip(4)
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )";
    BoundOptions opt;
    opt.tripAnnotations = parseTripAnnotations(src);
    CycleBound b = computeBound(assemble(src), opt);
    ASSERT_TRUE(b.bounded) << b.reason;
    EXPECT_TRUE(b.usedAnnotation);
    // The annotated trip matches the actual run (ntask == 4).
    Program p = assemble(src);
    DpuCore dpu;
    dpu.launch(4, [&](TaskletContext& ctx) { execute(p, ctx); });
    EXPECT_LE(b.bcet, dpu.lastLaunch().cycles);
    EXPECT_GE(b.wcet, dpu.lastLaunch().cycles);
}

TEST(Bound, AnnotationOnBreakLoopIsOnlyAnUpperBound)
{
    // Even a @trip annotation cannot make a break-loop's trip exact:
    // the break still leaves earlier on some runs, so the annotation
    // supplies the upper bound only, and the certificate records the
    // widening.
    const std::string src = R"(
        movi r1, 0
        ntask r2
        movi r3, 0
        ldw  r6, r3, 0
        movi r7, 1
    loop:
        bge  r1, r2, done   # @trip(4)
        beq  r6, r7, done
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )";
    BoundOptions opt;
    opt.tripAnnotations = parseTripAnnotations(src);
    Program p = assemble(src);
    LoopForest forest =
        findLoops(p, check::buildCfg(p), opt.tripAnnotations);
    ASSERT_EQ(1u, forest.loops.size());
    EXPECT_FALSE(forest.loops[0].tripKnown);
    EXPECT_TRUE(forest.loops[0].tripUpperKnown);
    EXPECT_EQ(4u, forest.loops[0].tripUpper);
    EXPECT_TRUE(forest.loops[0].annotated);
    CycleBound b = computeBound(p, opt);
    ASSERT_TRUE(b.bounded) << b.reason;
    EXPECT_TRUE(b.usedAnnotation);
    EXPECT_TRUE(b.usedTripUpper);
}

TEST(Bound, NonConstantDmaSizeIsUnbounded)
{
    Program p = assemble(R"(
        ntask r3
        movi r1, 0
        movi r2, 1024
        ldma r1, r2, r3
        halt
    )");
    CycleBound b = computeBound(p);
    EXPECT_FALSE(b.bounded);
    EXPECT_NE(std::string::npos, b.reason.find("size register"));
}

TEST(Bound, InfiniteLoopIsUnbounded)
{
    Program p = assemble("loop: jmp loop\n");
    CycleBound b = computeBound(p);
    EXPECT_FALSE(b.bounded);
}

// ---------------------------------------------------------------------
// Certificate serialization
// ---------------------------------------------------------------------

TEST(Certificate, RoundTripsThroughJson)
{
    Program p = assemble(llutSource(kLLutKernel, 256, 8196, 9224));
    BoundOptions opt;
    opt.tasklets = 4;
    KernelCertificate cert;
    cert.kernel = "llut";
    cert.bound = computeBound(p, opt);
    cert.interleaveChecked = true;
    cert.interleaveTasklets = 3;
    cert.interleave = check::InterleaveVerdict::RaceFree;
    cert.interleavePhases = 1;
    ASSERT_TRUE(cert.bound.bounded);

    std::string json = serializeCertificate(cert);
    KernelCertificate back;
    ASSERT_TRUE(parseCertificate(json, back));
    EXPECT_EQ(cert.kernel, back.kernel);
    EXPECT_EQ(cert.bound.bounded, back.bound.bounded);
    EXPECT_EQ(cert.bound.tasklets, back.bound.tasklets);
    EXPECT_EQ(cert.bound.bcet, back.bound.bcet);
    EXPECT_EQ(cert.bound.wcet, back.bound.wcet);
    EXPECT_EQ(cert.bound.instrMin, back.bound.instrMin);
    EXPECT_EQ(cert.bound.instrMax, back.bound.instrMax);
    EXPECT_EQ(cert.bound.stallMin, back.bound.stallMin);
    EXPECT_EQ(cert.bound.stallMax, back.bound.stallMax);
    EXPECT_EQ(cert.bound.engineMin, back.bound.engineMin);
    EXPECT_EQ(cert.bound.engineMax, back.bound.engineMax);
    EXPECT_EQ(cert.bound.bytesMin, back.bound.bytesMin);
    EXPECT_EQ(cert.bound.bytesMax, back.bound.bytesMax);
    EXPECT_EQ(cert.bound.classMin, back.bound.classMin);
    EXPECT_EQ(cert.bound.classMax, back.bound.classMax);
    EXPECT_EQ(cert.bound.classWorst, back.bound.classWorst);
    EXPECT_EQ(cert.bound.usedAnnotation, back.bound.usedAnnotation);
    EXPECT_EQ(cert.bound.usedTripUpper, back.bound.usedTripUpper);
    EXPECT_EQ(cert.interleaveChecked, back.interleaveChecked);
    EXPECT_EQ(cert.interleaveTasklets, back.interleaveTasklets);
    EXPECT_EQ(cert.interleave, back.interleave);
    EXPECT_EQ(cert.interleavePhases, back.interleavePhases);
}

TEST(Certificate, UnboundedReasonSurvivesEscaping)
{
    KernelCertificate cert;
    cert.kernel = "weird \"name\"\n";
    cert.bound.bounded = false;
    cert.bound.reason = "line 3: \"why\"\tunbounded";
    std::string json = serializeCertificate(cert);
    KernelCertificate back;
    ASSERT_TRUE(parseCertificate(json, back));
    EXPECT_EQ(cert.kernel, back.kernel);
    EXPECT_EQ(cert.bound.reason, back.bound.reason);
    EXPECT_FALSE(parseCertificate("{not a certificate}", back));
}

TEST(Certificate, KeyLikeTextInsideStringValuesDoesNotMisparse)
{
    // The reason ends with an escaped `"bcet`: in the raw JSON that
    // spells the byte sequence `"bcet"` (escaped quote + closing
    // quote), which a substring-based key scan would mistake for the
    // bcet key and misread the next numeric field into it. The
    // parser must lex whole string literals instead.
    KernelCertificate cert;
    cert.kernel = "evil";
    cert.bound.bounded = false;
    cert.bound.reason = "oops \"bcet";
    cert.bound.tasklets = 3;
    cert.bound.bcet = 7;
    cert.bound.wcet = 9;
    cert.bound.usedTripUpper = true;
    std::string json = serializeCertificate(cert);
    KernelCertificate back;
    ASSERT_TRUE(parseCertificate(json, back));
    EXPECT_EQ(cert.bound.reason, back.bound.reason);
    EXPECT_EQ(3u, back.bound.tasklets);
    EXPECT_EQ(7u, back.bound.bcet);
    EXPECT_EQ(9u, back.bound.wcet);
    EXPECT_TRUE(back.bound.usedTripUpper);
}

} // namespace
} // namespace sim
} // namespace tpl
