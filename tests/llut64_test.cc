/**
 * @file
 * Double-precision L-LUT tests: accuracy beyond the binary32 floor,
 * interpolation order, addressing parity with the binary32 L-LUT,
 * and instruction-cost relations between the tiers.
 */

#include <bit>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/ldexp.h"
#include "transpim/llut64.h"

namespace tpl {
namespace transpim {
namespace {

constexpr double kTwoPi = 6.28318530717958647692;
TableFn sine = [](double x) { return std::sin(x); };

TEST(LLut64, BreaksBinary32Floor)
{
    LLut64 lut(sine, 0.0, kTwoPi, 1u << 18, true, Placement::Host);
    ErrorAccumulator acc;
    SplitMix64 rng(111);
    for (int i = 0; i < 4000; ++i) {
        double x = rng.nextUnitDouble() * kTwoPi;
        acc.add(lut.eval(x, nullptr), std::sin(x));
    }
    // Far below what any binary32 method can reach (~2e-8).
    EXPECT_LT(acc.stats().rmse, 1e-9);
}

TEST(LLut64, QuadraticErrorScaling)
{
    double prev = 1.0;
    for (uint32_t log2n : {10u, 12u, 14u}) {
        LLut64 lut(sine, 0.0, kTwoPi, 1u << log2n, true,
                   Placement::Host);
        ErrorAccumulator acc;
        SplitMix64 rng(112);
        for (int i = 0; i < 2000; ++i) {
            double x = rng.nextUnitDouble() * kTwoPi;
            acc.add(lut.eval(x, nullptr), std::sin(x));
        }
        double rmse = acc.stats().rmse;
        // Four entries per doubling -> ~16x error reduction.
        EXPECT_LT(rmse, prev / 8) << log2n;
        prev = rmse;
    }
}

TEST(LLut64, MatchesBinary32AddressingScheme)
{
    LLut f32(sine, 0.0, kTwoPi, 4096, true, Placement::Host);
    LLut64 f64(sine, 0.0, kTwoPi, 4096, true, Placement::Host);
    EXPECT_EQ(f32.densityLog2(), f64.densityLog2());
    EXPECT_EQ(2u * f32.memoryBytes(), f64.memoryBytes());
}

TEST(LLut64, NonInterpolatedVariant)
{
    LLut64 lut(sine, 0.0, kTwoPi, 1u << 12, false, Placement::Host);
    SplitMix64 rng(113);
    for (int i = 0; i < 2000; ++i) {
        double x = rng.nextUnitDouble() * kTwoPi;
        EXPECT_NEAR(std::sin(x), lut.eval(x, nullptr), 2e-3) << x;
    }
}

TEST(LLut64, CostsMoreThanBinary32)
{
    LLut f32(sine, 0.0, kTwoPi, 4096, true, Placement::Host);
    LLut64 f64(sine, 0.0, kTwoPi, 4096, true, Placement::Host);
    CountingSink c32, c64;
    f32.eval(3.0f, &c32);
    f64.eval(3.0, &c64);
    EXPECT_GT(c64.total(), 1.3 * c32.total());
    EXPECT_LT(c64.total(), 4.0 * c32.total());
}

TEST(PimLdexp64, MatchesLibm)
{
    SplitMix64 rng(114);
    for (int i = 0; i < 100000; ++i) {
        double a = std::bit_cast<double>(rng.next());
        if (std::isnan(a))
            continue;
        int e = static_cast<int>(rng.next() % 4000) - 2000;
        double expect = std::ldexp(a, e);
        double got = pimLdexp64(a, e);
        ASSERT_EQ(std::bit_cast<uint64_t>(expect),
                  std::bit_cast<uint64_t>(got))
            << std::hexfloat << a << " exp " << e;
    }
}

} // namespace
} // namespace transpim
} // namespace tpl
