/**
 * @file
 * Cross-architecture re-costing tests: the op tally mechanism, the
 * self-consistency of the UPMEM profile, and the headline architecture
 * finding (native floats erase the L-LUT advantage; LUT-vs-CORDIC
 * survives).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "transpim/arch_model.h"
#include "transpim/evaluator.h"
#include "transpim/ldexp.h"

namespace tpl {
namespace transpim {
namespace {

TEST(OpTally, CountsOperations)
{
    OpTallySink sink;
    sf::add(1.0f, 2.0f, &sink);
    sf::mul(3.0f, 4.0f, &sink);
    sf::mul(3.0f, 4.0f, &sink);
    sf::div(1.0f, 3.0f, &sink);
    pimLdexp(1.0f, 2, &sink);
    const OpTally& t = sink.tally();
    EXPECT_EQ(1u, t.counts[static_cast<int>(OpClass::FloatAdd)]);
    EXPECT_EQ(2u, t.counts[static_cast<int>(OpClass::FloatMul)]);
    EXPECT_EQ(1u, t.counts[static_cast<int>(OpClass::FloatDiv)]);
    EXPECT_EQ(1u, t.counts[static_cast<int>(OpClass::Ldexp)]);
    EXPECT_GT(t.instructions, 0u);
}

TEST(OpTally, Accumulates)
{
    OpTally a, b;
    a.counts[0] = 3;
    a.instructions = 100;
    b.counts[0] = 2;
    b.instructions = 50;
    a += b;
    EXPECT_EQ(5u, a.counts[0]);
    EXPECT_EQ(150u, a.instructions);
}

TEST(OpTally, SubDelegatesToAddOnce)
{
    OpTallySink sink;
    sf::sub(5.0f, 3.0f, &sink);
    EXPECT_EQ(1u,
              sink.tally().counts[static_cast<int>(OpClass::FloatAdd)]);
}

TEST(ArchModel, CalibrationMatchesDirectMeasurement)
{
    auto costs = measureUpmemOpCosts();
    CountingSink direct;
    sf::mul(1.25f, 2.5f, &direct);
    EXPECT_NEAR(static_cast<double>(direct.total()),
                costs[static_cast<int>(OpClass::FloatMul)], 1.0);
    // Basic sanity of the cost landscape.
    EXPECT_GT(costs[static_cast<int>(OpClass::FloatDiv)],
              costs[static_cast<int>(OpClass::FloatMul)]);
    EXPECT_GT(costs[static_cast<int>(OpClass::FloatMul)],
              costs[static_cast<int>(OpClass::FloatAdd)]);
    EXPECT_LT(costs[static_cast<int>(OpClass::Ldexp)],
              costs[static_cast<int>(OpClass::FloatAdd)]);
}

TEST(ArchModel, UpmemProfileIsSelfConsistent)
{
    // Re-costing under the UPMEM profile must approximately reproduce
    // the raw instruction count (leftover + emulated == total).
    auto costs = measureUpmemOpCosts();
    ArchProfile upmem = upmemProfile();
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Host;
    auto eval = FunctionEvaluator::create(Function::Sin, spec);
    OpTallySink tally;
    auto inputs = uniformFloats(256, 0.0f, 6.28f, 3);
    for (float x : inputs)
        eval.eval(x, &tally);
    double recost = recostCycles(tally.tally(), upmem, costs);
    double raw = static_cast<double>(tally.tally().instructions);
    EXPECT_NEAR(raw, recost, raw * 0.05);
}

TEST(ArchModel, NativeFloatsCloseTheLlutMlutGap)
{
    auto costs = measureUpmemOpCosts();
    ArchProfile upmem = upmemProfile();
    ArchProfile hbm = hbmPimLikeProfile();

    auto tallyOf = [&](Method m) {
        MethodSpec spec;
        spec.method = m;
        spec.interpolated = true;
        spec.placement = Placement::Host;
        spec.log2Entries = 12;
        auto eval = FunctionEvaluator::create(Function::Sin, spec);
        OpTallySink sink;
        auto inputs = uniformFloats(256, 0.0f, 6.28f, 5);
        for (float x : inputs)
            eval.eval(x, &sink);
        return sink.tally();
    };
    OpTally mlut = tallyOf(Method::MLut);
    OpTally llut = tallyOf(Method::LLut);

    double gapUpmem = recostCycles(mlut, upmem, costs) /
                      recostCycles(llut, upmem, costs);
    // On UPMEM the M-LUT pays a real penalty; with native floats the
    // absolute gap shrinks dramatically (one cycle for the multiply).
    EXPECT_GT(gapUpmem, 1.25);
    double absGapHbm = (recostCycles(mlut, hbm, costs) -
                        recostCycles(llut, hbm, costs)) /
                       256.0;
    EXPECT_LT(absGapHbm, 20.0);
}

TEST(ArchModel, CordicStaysExpensiveEverywhere)
{
    auto costs = measureUpmemOpCosts();
    for (const ArchProfile& p :
         {upmemProfile(), hbmPimLikeProfile(), idealFpuProfile()}) {
        auto tallyOf = [&](Method m) {
            MethodSpec spec;
            spec.method = m;
            spec.interpolated = true;
            spec.placement = Placement::Host;
            spec.iterations = 24;
            spec.log2Entries = 12;
            auto eval = FunctionEvaluator::create(Function::Sin, spec);
            OpTallySink sink;
            auto inputs = uniformFloats(128, 0.0f, 6.28f, 7);
            for (float x : inputs)
                eval.eval(x, &sink);
            return sink.tally();
        };
        double cordic = recostCycles(tallyOf(Method::Cordic), p, costs);
        double llut = recostCycles(tallyOf(Method::LLut), p, costs);
        EXPECT_GT(cordic, 5.0 * llut) << p.name;
    }
}

} // namespace
} // namespace transpim
} // namespace tpl
