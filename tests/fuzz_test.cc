/**
 * @file
 * Differential fuzzing across the whole library surface: random
 * (function, method, configuration) combinations evaluated on random
 * in-domain inputs must stay finite, stay within a conservative
 * error envelope derived from the configuration, and never throw once
 * construction succeeded. This is the broad safety net underneath the
 * targeted suites.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "softfloat/softfloat16.h"
#include "softfloat/softfloat64.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {
namespace {

const Function kFunctions[] = {
    Function::Sin, Function::Cos, Function::Tan, Function::Sinh,
    Function::Cosh, Function::Tanh, Function::Exp, Function::Log,
    Function::Sqrt, Function::Gelu, Function::Sigmoid, Function::Cndf,
    Function::Atan, Function::Asin, Function::Acos, Function::Atanh,
    Function::Log2, Function::Log10, Function::Exp2, Function::Rsqrt,
    Function::Erf, Function::Silu, Function::Softplus};

const Method kMethods[] = {
    Method::Cordic, Method::CordicFixed, Method::CordicLut,
    Method::MLut, Method::LLut, Method::LLutFixed, Method::DLut,
    Method::DlLut, Method::Poly};

/** A generous error envelope: the fuzz only screens for blow-ups. */
double
fuzzBound(Function f, const MethodSpec& spec)
{
    double base;
    switch (spec.method) {
      case Method::DLut:
      case Method::DlLut:
        base = 0.2;
        break;
      case Method::Poly:
        base = spec.polyDegree >= 9 ? 0.05 : 0.5;
        break;
      default:
        base = spec.log2Entries <= 8 || spec.iterations <= 10 ? 0.2
                                                              : 0.02;
        break;
    }
    switch (f) {
      case Function::Exp:
      case Function::Exp2:
      case Function::Sinh:
      case Function::Cosh:
        return base * 3e4; // large outputs: screened relatively below
      case Function::Tan:
        return 1e9; // poles: only finiteness is checked
      default:
        return base * 30;
    }
}

TEST(DifferentialFuzz, RandomConfigurationsStaySane)
{
    SplitMix64 rng(0xf022);
    int built = 0;
    for (int trial = 0; trial < 400; ++trial) {
        Function f = kFunctions[rng.next() % std::size(kFunctions)];
        Method m = kMethods[rng.next() % std::size(kMethods)];
        MethodSpec spec;
        spec.method = m;
        spec.interpolated = (rng.next() & 1) != 0;
        spec.placement = Placement::Host;
        spec.log2Entries = 7 + static_cast<uint32_t>(rng.next() % 9);
        spec.iterations = 8 + static_cast<uint32_t>(rng.next() % 20);
        spec.gridBits = 4 + static_cast<uint32_t>(rng.next() % 7);
        spec.polyDegree = 5 + static_cast<uint32_t>(rng.next() % 10);
        spec.dlutMantBits = 4 + static_cast<uint32_t>(rng.next() % 6);

        if (!FunctionEvaluator::supports(f, spec)) {
            EXPECT_THROW(FunctionEvaluator::create(f, spec),
                         UnsupportedCombination);
            continue;
        }
        FunctionEvaluator eval = FunctionEvaluator::create(f, spec);
        ++built;

        Domain dom = functionDomain(f);
        double bound = fuzzBound(f, spec);
        for (int i = 0; i < 50; ++i) {
            float x = rng.nextFloat((float)dom.lo, (float)dom.hi);
            float y = eval.eval(x, nullptr);
            double ref = referenceValue(f, (double)x);
            ASSERT_TRUE(std::isfinite(y))
                << functionName(f) << "/" << methodName(m) << " at "
                << x;
            double err = std::abs((double)y - ref);
            if (f == Function::Exp || f == Function::Exp2 ||
                f == Function::Sinh || f == Function::Cosh) {
                err /= std::max(1.0, std::abs(ref));
                ASSERT_LT(err, 0.5)
                    << functionName(f) << "/" << methodName(m)
                    << " interp=" << spec.interpolated << " at " << x;
            } else if (f != Function::Tan) {
                ASSERT_LT(err, bound)
                    << functionName(f) << "/" << methodName(m)
                    << " interp=" << spec.interpolated << " at " << x;
            }
        }
    }
    // The sweep must actually exercise a healthy share of the matrix.
    EXPECT_GT(built, 150);
}

TEST(DifferentialFuzz, OutOfDomainInputsNeverTrap)
{
    // Out-of-domain inputs may return clamped or extrapolated values,
    // but must never throw or return NaN for table methods whose
    // domain is the full real line conceptually (activations).
    SplitMix64 rng(0xf023);
    for (Method m : {Method::MLut, Method::LLut, Method::DLut,
                     Method::DlLut}) {
        MethodSpec spec;
        spec.method = m;
        spec.placement = Placement::Host;
        spec.log2Entries = 10;
        auto eval = FunctionEvaluator::create(Function::Tanh, spec);
        for (int i = 0; i < 500; ++i) {
            float x = rng.nextFloat(-1e6f, 1e6f);
            float y = eval.eval(x, nullptr);
            ASSERT_TRUE(std::isfinite(y)) << methodName(m) << " " << x;
            ASSERT_LE(std::abs(y), 1.01f) << methodName(m) << " " << x;
        }
    }
}

TEST(DifferentialFuzz, SinkedAndSinklessEvalsAgree)
{
    // Charging must never change values: eval with a sink and without
    // must produce identical bits.
    SplitMix64 rng(0xf024);
    for (int trial = 0; trial < 60; ++trial) {
        Function f = kFunctions[rng.next() % std::size(kFunctions)];
        Method m = kMethods[rng.next() % std::size(kMethods)];
        MethodSpec spec;
        spec.method = m;
        spec.placement = Placement::Host;
        if (!FunctionEvaluator::supports(f, spec))
            continue;
        auto eval = FunctionEvaluator::create(f, spec);
        Domain dom = functionDomain(f);
        CountingSink sink;
        for (int i = 0; i < 30; ++i) {
            float x = rng.nextFloat((float)dom.lo, (float)dom.hi);
            float a = eval.eval(x, nullptr);
            float b = eval.eval(x, &sink);
            ASSERT_EQ(a, b)
                << functionName(f) << "/" << methodName(m) << " " << x;
        }
    }
}

// =====================================================================
// Differential softfloat pass: the emulated IEEE-754 tiers vs the
// host's hardware floating point. binary16 is checked exhaustively
// (every conversion pattern; add/mul over every pattern crossed with a
// basis covering every exponent and boundary mantissa), binary32 and
// binary64 with >= 1M seeded-random full-bit-pattern cases per op.
// Mismatches are reported as raw hex bit patterns so a failure pins
// the exact operands.
// =====================================================================

/** Collects differential mismatches; prints the first few as hex. */
class MismatchLog
{
  public:
    explicit MismatchLog(const char* op) : op_(op) {}

    void
    note(uint64_t a, uint64_t b, uint64_t got, uint64_t want)
    {
        ++count_;
        if (count_ <= 8) {
            ADD_FAILURE() << op_ << " 0x" << std::hex << a << ", 0x"
                          << b << ": got 0x" << got << " want 0x"
                          << want << std::dec;
        }
    }

    void
    finish() const
    {
        EXPECT_EQ(count_, 0u) << op_ << " mismatches";
    }

  private:
    const char* op_;
    uint64_t count_ = 0;
};

uint32_t
f32Bits(float v)
{
    return std::bit_cast<uint32_t>(v);
}

float
f32FromBits(uint32_t b)
{
    return std::bit_cast<float>(b);
}

uint64_t
f64Bits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

double
f64FromBits(uint64_t b)
{
    return std::bit_cast<double>(b);
}

bool
isNan16(uint16_t b)
{
    return (b & 0x7c00u) == 0x7c00u && (b & 0x03ffu) != 0;
}

bool
isNan32(uint32_t b)
{
    return (b & 0x7f800000u) == 0x7f800000u && (b & 0x007fffffu) != 0;
}

bool
isNan64(uint64_t b)
{
    return (b & 0x7ff0000000000000ull) == 0x7ff0000000000000ull &&
           (b & 0x000fffffffffffffull) != 0;
}

_Float16
hostHalf(uint16_t bits)
{
    return std::bit_cast<_Float16>(bits);
}

uint16_t
hostHalfBits(_Float16 v)
{
    return std::bit_cast<uint16_t>(v);
}

/**
 * Every binary16 exponent with boundary mantissas, both signs: zero /
 * smallest denormal / largest denormal / power-of-two / mid / largest-
 * in-binade / infinity / quiet and signaling NaNs. 2^16 patterns
 * crossed with this basis exercises every alignment-shift, rounding,
 * overflow and underflow path of the half-precision emulation.
 */
std::vector<uint16_t>
halfBasis()
{
    std::vector<uint16_t> basis;
    for (uint32_t exp = 0; exp <= 31; ++exp)
        for (uint32_t mant : {0x000u, 0x001u, 0x200u, 0x3ffu})
            for (uint32_t sign : {0u, 1u})
                basis.push_back(static_cast<uint16_t>(
                    (sign << 15) | (exp << 10) | mant));
    std::sort(basis.begin(), basis.end());
    basis.erase(std::unique(basis.begin(), basis.end()), basis.end());
    return basis;
}

TEST(SoftfloatDifferential, ExhaustiveF16ConvertMatchesHost)
{
    MismatchLog widen("fromF16");
    MismatchLog narrow("toF16");
    for (uint32_t b = 0; b <= 0xffffu; ++b) {
        uint16_t h = static_cast<uint16_t>(b);
        // Widening is exact: every pattern must match the host bit
        // for bit (NaN payloads may canonicalise).
        float soft = sf::fromF16(sf::Half{h});
        float host = static_cast<float>(hostHalf(h));
        if (f32Bits(soft) != f32Bits(host) &&
            !(isNan32(f32Bits(soft)) && isNan32(f32Bits(host))))
            widen.note(h, 0, f32Bits(soft), f32Bits(host));
        // Narrowing the exact widened value must round-trip.
        uint16_t back = sf::toF16(host).bits;
        if (back != h && !(isNan16(back) && isNan16(h)))
            narrow.note(f32Bits(host), 0, back, h);
    }
    widen.finish();
    narrow.finish();
}

TEST(SoftfloatDifferential, RandomF32ToF16NarrowingMatchesHost)
{
    SplitMix64 rng(0x16c0);
    MismatchLog log("toF16");
    for (int i = 0; i < 1000000; ++i) {
        uint32_t bits = static_cast<uint32_t>(rng.next());
        float a = f32FromBits(bits);
        uint16_t soft = sf::toF16(a).bits;
        uint16_t host = hostHalfBits(static_cast<_Float16>(a));
        if (soft != host && !(isNan16(soft) && isNan16(host)))
            log.note(bits, 0, soft, host);
    }
    log.finish();
}

TEST(SoftfloatDifferential, ExhaustiveF16AddAgainstBasis)
{
    std::vector<uint16_t> basis = halfBasis();
    MismatchLog log("add16");
    for (uint32_t a = 0; a <= 0xffffu; ++a) {
        uint16_t ha = static_cast<uint16_t>(a);
        _Float16 na = hostHalf(ha);
        for (uint16_t hb : basis) {
            uint16_t soft = sf::add16(sf::Half{ha}, sf::Half{hb}).bits;
            uint16_t host =
                hostHalfBits(static_cast<_Float16>(na + hostHalf(hb)));
            if (soft != host && !(isNan16(soft) && isNan16(host)))
                log.note(ha, hb, soft, host);
        }
    }
    log.finish();
}

TEST(SoftfloatDifferential, ExhaustiveF16MulAgainstBasis)
{
    std::vector<uint16_t> basis = halfBasis();
    MismatchLog log("mul16");
    for (uint32_t a = 0; a <= 0xffffu; ++a) {
        uint16_t ha = static_cast<uint16_t>(a);
        _Float16 na = hostHalf(ha);
        for (uint16_t hb : basis) {
            uint16_t soft = sf::mul16(sf::Half{ha}, sf::Half{hb}).bits;
            uint16_t host =
                hostHalfBits(static_cast<_Float16>(na * hostHalf(hb)));
            if (soft != host && !(isNan16(soft) && isNan16(host)))
                log.note(ha, hb, soft, host);
        }
    }
    log.finish();
}

TEST(SoftfloatDifferential, RandomF32OpsMatchHost)
{
    SplitMix64 rng(0x32f0);
    MismatchLog add("f32 add"), sub("f32 sub"), mul("f32 mul"),
        div("f32 div"), sqr("f32 sqrt");
    for (int i = 0; i < 1000000; ++i) {
        // Full random bit patterns: NaNs, infinities, denormals and
        // both zeros included.
        uint32_t ba = static_cast<uint32_t>(rng.next());
        uint32_t bb = static_cast<uint32_t>(rng.next());
        float a = f32FromBits(ba);
        float b = f32FromBits(bb);
        auto check = [&](MismatchLog& log, float soft, float host) {
            uint32_t s = f32Bits(soft), h = f32Bits(host);
            if (s != h && !(isNan32(s) && isNan32(h)))
                log.note(ba, bb, s, h);
        };
        check(add, sf::add(a, b), a + b);
        check(sub, sf::sub(a, b), a - b);
        check(mul, sf::mul(a, b), a * b);
        check(div, sf::div(a, b), a / b);
        check(sqr, sf::sqrt(a), std::sqrt(a));
    }
    add.finish();
    sub.finish();
    mul.finish();
    div.finish();
    sqr.finish();
}

TEST(SoftfloatDifferential, RandomF64OpsMatchHost)
{
    SplitMix64 rng(0x64f0);
    MismatchLog add("f64 add"), sub("f64 sub"), mul("f64 mul"),
        div("f64 div"), nar("f64->f32");
    for (int i = 0; i < 1000000; ++i) {
        uint64_t ba = rng.next();
        uint64_t bb = rng.next();
        double a = f64FromBits(ba);
        double b = f64FromBits(bb);
        auto check = [&](MismatchLog& log, double soft, double host) {
            uint64_t s = f64Bits(soft), h = f64Bits(host);
            if (s != h && !(isNan64(s) && isNan64(h)))
                log.note(ba, bb, s, h);
        };
        check(add, sf::add64(a, b), a + b);
        check(sub, sf::sub64(a, b), a - b);
        check(mul, sf::mul64(a, b), a * b);
        check(div, sf::div64(a, b), a / b);
        // Narrowing rounds; widening is exact, so the pair covers both
        // conversion directions.
        uint32_t sn = f32Bits(sf::toF32(a));
        uint32_t hn = f32Bits(static_cast<float>(a));
        if (sn != hn && !(isNan32(sn) && isNan32(hn)))
            nar.note(ba, 0, sn, hn);
        uint64_t sw = f64Bits(sf::fromF32(f32FromBits(
            static_cast<uint32_t>(ba))));
        uint64_t hw = f64Bits(static_cast<double>(
            f32FromBits(static_cast<uint32_t>(ba))));
        if (sw != hw && !(isNan64(sw) && isNan64(hw)))
            nar.note(ba, 0, sw, hw);
    }
    add.finish();
    sub.finish();
    mul.finish();
    div.finish();
    nar.finish();
}

} // namespace
} // namespace transpim
} // namespace tpl
