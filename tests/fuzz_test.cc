/**
 * @file
 * Differential fuzzing across the whole library surface: random
 * (function, method, configuration) combinations evaluated on random
 * in-domain inputs must stay finite, stay within a conservative
 * error envelope derived from the configuration, and never throw once
 * construction succeeded. This is the broad safety net underneath the
 * targeted suites.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {
namespace {

const Function kFunctions[] = {
    Function::Sin, Function::Cos, Function::Tan, Function::Sinh,
    Function::Cosh, Function::Tanh, Function::Exp, Function::Log,
    Function::Sqrt, Function::Gelu, Function::Sigmoid, Function::Cndf,
    Function::Atan, Function::Asin, Function::Acos, Function::Atanh,
    Function::Log2, Function::Log10, Function::Exp2, Function::Rsqrt,
    Function::Erf, Function::Silu, Function::Softplus};

const Method kMethods[] = {
    Method::Cordic, Method::CordicFixed, Method::CordicLut,
    Method::MLut, Method::LLut, Method::LLutFixed, Method::DLut,
    Method::DlLut, Method::Poly};

/** A generous error envelope: the fuzz only screens for blow-ups. */
double
fuzzBound(Function f, const MethodSpec& spec)
{
    double base;
    switch (spec.method) {
      case Method::DLut:
      case Method::DlLut:
        base = 0.2;
        break;
      case Method::Poly:
        base = spec.polyDegree >= 9 ? 0.05 : 0.5;
        break;
      default:
        base = spec.log2Entries <= 8 || spec.iterations <= 10 ? 0.2
                                                              : 0.02;
        break;
    }
    switch (f) {
      case Function::Exp:
      case Function::Exp2:
      case Function::Sinh:
      case Function::Cosh:
        return base * 3e4; // large outputs: screened relatively below
      case Function::Tan:
        return 1e9; // poles: only finiteness is checked
      default:
        return base * 30;
    }
}

TEST(DifferentialFuzz, RandomConfigurationsStaySane)
{
    SplitMix64 rng(0xf022);
    int built = 0;
    for (int trial = 0; trial < 400; ++trial) {
        Function f = kFunctions[rng.next() % std::size(kFunctions)];
        Method m = kMethods[rng.next() % std::size(kMethods)];
        MethodSpec spec;
        spec.method = m;
        spec.interpolated = (rng.next() & 1) != 0;
        spec.placement = Placement::Host;
        spec.log2Entries = 7 + static_cast<uint32_t>(rng.next() % 9);
        spec.iterations = 8 + static_cast<uint32_t>(rng.next() % 20);
        spec.gridBits = 4 + static_cast<uint32_t>(rng.next() % 7);
        spec.polyDegree = 5 + static_cast<uint32_t>(rng.next() % 10);
        spec.dlutMantBits = 4 + static_cast<uint32_t>(rng.next() % 6);

        if (!FunctionEvaluator::supports(f, spec)) {
            EXPECT_THROW(FunctionEvaluator::create(f, spec),
                         UnsupportedCombination);
            continue;
        }
        FunctionEvaluator eval = FunctionEvaluator::create(f, spec);
        ++built;

        Domain dom = functionDomain(f);
        double bound = fuzzBound(f, spec);
        for (int i = 0; i < 50; ++i) {
            float x = rng.nextFloat((float)dom.lo, (float)dom.hi);
            float y = eval.eval(x, nullptr);
            double ref = referenceValue(f, (double)x);
            ASSERT_TRUE(std::isfinite(y))
                << functionName(f) << "/" << methodName(m) << " at "
                << x;
            double err = std::abs((double)y - ref);
            if (f == Function::Exp || f == Function::Exp2 ||
                f == Function::Sinh || f == Function::Cosh) {
                err /= std::max(1.0, std::abs(ref));
                ASSERT_LT(err, 0.5)
                    << functionName(f) << "/" << methodName(m)
                    << " interp=" << spec.interpolated << " at " << x;
            } else if (f != Function::Tan) {
                ASSERT_LT(err, bound)
                    << functionName(f) << "/" << methodName(m)
                    << " interp=" << spec.interpolated << " at " << x;
            }
        }
    }
    // The sweep must actually exercise a healthy share of the matrix.
    EXPECT_GT(built, 150);
}

TEST(DifferentialFuzz, OutOfDomainInputsNeverTrap)
{
    // Out-of-domain inputs may return clamped or extrapolated values,
    // but must never throw or return NaN for table methods whose
    // domain is the full real line conceptually (activations).
    SplitMix64 rng(0xf023);
    for (Method m : {Method::MLut, Method::LLut, Method::DLut,
                     Method::DlLut}) {
        MethodSpec spec;
        spec.method = m;
        spec.placement = Placement::Host;
        spec.log2Entries = 10;
        auto eval = FunctionEvaluator::create(Function::Tanh, spec);
        for (int i = 0; i < 500; ++i) {
            float x = rng.nextFloat(-1e6f, 1e6f);
            float y = eval.eval(x, nullptr);
            ASSERT_TRUE(std::isfinite(y)) << methodName(m) << " " << x;
            ASSERT_LE(std::abs(y), 1.01f) << methodName(m) << " " << x;
        }
    }
}

TEST(DifferentialFuzz, SinkedAndSinklessEvalsAgree)
{
    // Charging must never change values: eval with a sink and without
    // must produce identical bits.
    SplitMix64 rng(0xf024);
    for (int trial = 0; trial < 60; ++trial) {
        Function f = kFunctions[rng.next() % std::size(kFunctions)];
        Method m = kMethods[rng.next() % std::size(kMethods)];
        MethodSpec spec;
        spec.method = m;
        spec.placement = Placement::Host;
        if (!FunctionEvaluator::supports(f, spec))
            continue;
        auto eval = FunctionEvaluator::create(f, spec);
        Domain dom = functionDomain(f);
        CountingSink sink;
        for (int i = 0; i < 30; ++i) {
            float x = rng.nextFloat((float)dom.lo, (float)dom.hi);
            float a = eval.eval(x, nullptr);
            float b = eval.eval(x, &sink);
            ASSERT_EQ(a, b)
                << functionName(f) << "/" << methodName(m) << " " << x;
        }
    }
}

} // namespace
} // namespace transpim
} // namespace tpl
