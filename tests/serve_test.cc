/**
 * @file
 * pimserve tests: batch coalescing boundaries, overlap accounting
 * identities of the double-buffered pipeline, LUT-cache behavior,
 * determinism across simulation thread counts, and fault-armed
 * degradation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "pimsim/serve/pipeline.h"
#include "pimsim/topology.h"
#include "transpim/harness.h"
#include "transpim/serve_glue.h"

using namespace tpl;
using namespace tpl::sim;
using namespace tpl::transpim;

namespace {

serve::TableKey
keyOf(uint64_t hash)
{
    serve::TableKey k;
    k.hash = hash;
    k.label = "k" + std::to_string(hash);
    return k;
}

serve::Request
makeRequest(const serve::TableKey& key, const float* in, float* out,
            uint64_t elements)
{
    serve::Request r;
    r.table = key;
    r.input = in;
    r.output = out;
    r.elements = elements;
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// BatchQueue coalescing boundaries.

TEST(BatchQueue, ClosedEmptyQueueYieldsNoWave)
{
    serve::BatchQueue q;
    q.close();
    EXPECT_FALSE(q.popWave(1024).has_value());
    // push after close is rejected.
    float x = 0, y = 0;
    EXPECT_EQ(q.push(makeRequest(keyOf(1), &x, &y, 1)), 0u);
    EXPECT_EQ(q.totalPushed(), 0u);
}

TEST(BatchQueue, SingleRequestBecomesOneWave)
{
    serve::BatchQueue q;
    std::vector<float> in(100), out(100);
    uint64_t id =
        q.push(makeRequest(keyOf(7), in.data(), out.data(), 100));
    EXPECT_NE(id, 0u);
    q.close();

    auto w = q.popWave(256);
    ASSERT_TRUE(w.has_value());
    ASSERT_EQ(w->items.size(), 1u);
    EXPECT_EQ(w->items[0].requestId, id);
    EXPECT_EQ(w->items[0].elements, 100u);
    EXPECT_EQ(w->requestsClosed, 1u);
    EXPECT_FALSE(q.popWave(256).has_value());
}

TEST(BatchQueue, OversizedRequestIsConsumedIncrementally)
{
    serve::BatchQueue q;
    std::vector<float> in(1000), out(1000);
    q.push(makeRequest(keyOf(7), in.data(), out.data(), 1000));
    q.close();

    uint64_t seen = 0;
    int waves = 0;
    while (auto w = q.popWave(256)) {
        ASSERT_EQ(w->items.size(), 1u);
        // Spans advance in place over the original buffers.
        EXPECT_EQ(w->items[0].input, in.data() + seen);
        EXPECT_EQ(w->items[0].output, out.data() + seen);
        seen += w->items[0].elements;
        ++waves;
    }
    EXPECT_EQ(seen, 1000u);
    EXPECT_EQ(waves, 4); // 256 + 256 + 256 + 232
}

TEST(BatchQueue, CoalescesOnlyMatchingTables)
{
    serve::BatchQueue q;
    std::vector<float> buf(400);
    q.push(makeRequest(keyOf(1), buf.data(), buf.data(), 100));
    q.push(makeRequest(keyOf(2), buf.data(), buf.data(), 50));
    q.push(makeRequest(keyOf(1), buf.data(), buf.data(), 60));
    q.close();

    auto w1 = q.popWave(256);
    ASSERT_TRUE(w1.has_value());
    EXPECT_EQ(w1->table.hash, 1u);
    ASSERT_EQ(w1->items.size(), 2u); // both key-1 requests coalesce
    EXPECT_EQ(w1->elements(), 160u);

    auto w2 = q.popWave(256);
    ASSERT_TRUE(w2.has_value());
    EXPECT_EQ(w2->table.hash, 2u);
    EXPECT_EQ(w2->elements(), 50u);
    EXPECT_FALSE(q.popWave(256).has_value());
}

TEST(BatchQueue, ZeroBudgetStillMakesProgress)
{
    serve::BatchQueue q;
    std::vector<float> buf(8);
    q.push(makeRequest(keyOf(1), buf.data(), buf.data(), 8));
    q.close();
    auto w = q.popWave(0); // treated as budget 1
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->elements(), 1u);
}

TEST(BatchQueue, ConcurrentProducersLoseNothing)
{
    serve::BatchQueue q;
    constexpr int kProducers = 8;
    constexpr int kPerProducer = 50;
    std::vector<float> buf(64);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&] {
            for (int i = 0; i < kPerProducer; ++i)
                q.push(makeRequest(keyOf(3), buf.data(), buf.data(),
                                   4));
        });
    for (auto& t : producers)
        t.join();
    q.close();

    EXPECT_EQ(q.totalPushed(),
              static_cast<uint64_t>(kProducers) * kPerProducer);
    uint64_t elements = 0;
    uint64_t waves = 0;
    while (auto w = q.popWave(64)) {
        elements += w->elements();
        ++waves;
    }
    EXPECT_EQ(elements, 4u * kProducers * kPerProducer);
    EXPECT_GE(waves, elements / 64);
}

// ---------------------------------------------------------------------
// Pipeline accounting identities.

TEST(ServePipeline, PipelinedNeverSlowerThanSyncAndSyncMatchesSum)
{
    BatchedOptions opts;
    opts.dpus = 8;
    opts.tasklets = 8;
    opts.perDpuElements = 256;
    opts.requests = 4;
    opts.elementsPerRequest = 2048; // 4 waves of 2048
    MethodSpec spec; // interpolated L-LUT, WRAM
    BatchedResult res =
        runBatchedThroughput(Function::Sin, spec, opts);

    ASSERT_TRUE(res.feasible);
    EXPECT_TRUE(res.pipelined.complete);
    EXPECT_TRUE(res.sync.complete);
    EXPECT_TRUE(res.outputsMatch);
    EXPECT_GE(res.pipelined.waves, 4u);

    // Overlap can only help: pipelined makespan <= synchronous.
    EXPECT_LE(res.pipelined.modeledSeconds,
              res.sync.modeledSeconds * (1.0 + 1e-12));

    // In sync mode the legs chain back to back, so the makespan is
    // the sum of the leg durations.
    EXPECT_NEAR(res.sync.modeledSeconds, res.sync.syncSeconds,
                res.sync.syncSeconds * 1e-9);

    // Leg durations are schedule-independent, so both runs project
    // the same synchronous time.
    EXPECT_NEAR(res.pipelined.syncSeconds, res.sync.syncSeconds,
                res.sync.syncSeconds * 1e-9);

    // The report's internal overlap estimate agrees with the
    // two-system measurement.
    EXPECT_NEAR(res.pipelined.speedup(), res.speedup(),
                res.speedup() * 1e-9);
}

TEST(ServePipeline, CyclePartitionStaysExactOnPipelinedPath)
{
    // Drive a pipeline directly and check the obs invariant on every
    // core's LaunchStats afterwards: per-class instruction sums equal
    // the instruction total, and adding stalls gives the cycles.
    sim::PimSystem sys(4);
    EvaluatorCatalog catalog;
    MethodSpec spec;
    serve::TableKey key = catalog.add(Function::Sin, spec);

    const uint32_t elements = 4096;
    std::vector<float> in(elements), out(elements, 0.0f);
    for (uint32_t i = 0; i < elements; ++i)
        in[i] = 6.28f * static_cast<float>(i) / elements;

    serve::BatchQueue queue;
    queue.push(makeRequest(key, in.data(), out.data(), elements));
    queue.close();

    serve::PipelineOptions popts;
    popts.numTasklets = 8;
    popts.perDpuElements = 256; // 4096 / (4*256) = 4 waves
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);
    serve::ServeReport rep = pipeline.run(queue);
    ASSERT_TRUE(rep.complete);
    EXPECT_EQ(rep.waves, 4u);

    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        const LaunchStats& st = sys.dpu(d).lastLaunch();
        ASSERT_GT(st.cycles, 0u);
        uint64_t classSum = 0;
        for (uint64_t c : st.classInstructions)
            classSum += c;
        EXPECT_EQ(classSum, st.totalInstructions);
        EXPECT_EQ(classSum + st.stallCycles, st.cycles);
    }
}

TEST(ServePipeline, UnknownTableIsDroppedNotServed)
{
    sim::PimSystem sys(2);
    EvaluatorCatalog catalog; // empty: nothing registered
    std::vector<float> in(64), out(64, -1.0f);
    serve::BatchQueue queue;
    queue.push(makeRequest(keyOf(999), in.data(), out.data(), 64));
    queue.close();

    serve::ServePipeline pipeline(sys, catalog.provider());
    serve::ServeReport rep = pipeline.run(queue);
    EXPECT_FALSE(rep.complete);
    EXPECT_EQ(rep.infeasibleElements, 64u);
    EXPECT_EQ(rep.waves, 0u);
    for (float v : out)
        EXPECT_EQ(v, -1.0f); // outputs untouched
}

// ---------------------------------------------------------------------
// LUT cache.

TEST(ServePipeline, RepeatedConfigurationHitsTableCache)
{
    sim::PimSystem sys(4);
    EvaluatorCatalog catalog;
    MethodSpec spec;
    serve::TableKey key = catalog.add(Function::Sin, spec);

    const uint32_t elements = 2048; // 2 waves at 4 * 256
    std::vector<float> in(elements, 1.0f), out(elements);
    serve::BatchQueue queue;
    queue.push(makeRequest(key, in.data(), out.data(), elements));
    queue.close();

    serve::PipelineOptions popts;
    popts.perDpuElements = 256;
    popts.numTasklets = 8;
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);
    serve::ServeReport rep = pipeline.run(queue);

    ASSERT_TRUE(rep.complete);
    EXPECT_EQ(rep.waves, 2u);
    EXPECT_EQ(rep.cacheMisses, 1u); // first wave generates + broadcasts
    EXPECT_EQ(rep.cacheHits, 1u);   // second wave reuses the tables
    // Only the miss pays a broadcast.
    ASSERT_EQ(rep.waveStats.size(), 2u);
    EXPECT_TRUE(rep.waveStats[0].tableMiss);
    EXPECT_GT(rep.waveStats[0].broadcastSeconds, 0.0);
    EXPECT_FALSE(rep.waveStats[1].tableMiss);
    EXPECT_EQ(rep.waveStats[1].broadcastSeconds, 0.0);
}

TEST(ServePipeline, DistinctConfigurationsMissSeparately)
{
    sim::PimSystem sys(2);
    EvaluatorCatalog catalog;
    MethodSpec llut;
    MethodSpec mlut;
    mlut.method = Method::MLut;
    serve::TableKey k1 = catalog.add(Function::Sin, llut);
    serve::TableKey k2 = catalog.add(Function::Sin, mlut);
    ASSERT_NE(k1.hash, k2.hash);

    std::vector<float> in(256, 0.5f), out(256);
    serve::BatchQueue queue;
    queue.push(makeRequest(k1, in.data(), out.data(), 64));
    queue.push(makeRequest(k2, in.data(), out.data() + 64, 64));
    queue.push(makeRequest(k1, in.data(), out.data() + 128, 64));
    queue.push(makeRequest(k2, in.data(), out.data() + 192, 64));
    queue.close();

    serve::PipelineOptions popts;
    popts.perDpuElements = 64; // one wave per key visit
    popts.numTasklets = 4;
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);
    serve::ServeReport rep = pipeline.run(queue);

    ASSERT_TRUE(rep.complete);
    EXPECT_EQ(rep.cacheMisses, 2u);
    EXPECT_EQ(rep.cacheHits + rep.cacheMisses, rep.waves);
}

// ---------------------------------------------------------------------
// Determinism across simulation thread counts.

TEST(ServePipeline, BitIdenticalAcrossSimThreadCounts)
{
    BatchedOptions base;
    base.dpus = 8;
    base.tasklets = 8;
    base.perDpuElements = 128;
    base.requests = 3;
    base.elementsPerRequest = 1024;
    MethodSpec spec;

    BatchedResult ref;
    bool first = true;
    for (uint32_t threads : {1u, 4u, 16u}) {
        BatchedOptions opts = base;
        opts.simThreads = threads;
        BatchedResult res =
            runBatchedThroughput(Function::Sin, spec, opts);
        ASSERT_TRUE(res.pipelined.complete);
        ASSERT_TRUE(res.outputsMatch);
        if (first) {
            ref = res;
            first = false;
            continue;
        }
        // Modeled quantities are bit-identical, not just close.
        EXPECT_EQ(res.pipelined.computeCycles,
                  ref.pipelined.computeCycles);
        EXPECT_EQ(res.pipelined.modeledSeconds,
                  ref.pipelined.modeledSeconds);
        EXPECT_EQ(res.pipelined.syncSeconds,
                  ref.pipelined.syncSeconds);
        EXPECT_EQ(res.sync.modeledSeconds, ref.sync.modeledSeconds);
    }
}

// ---------------------------------------------------------------------
// Fault-armed pipeline: degrade, never deadlock.

TEST(ServePipeline, MaskedDpuMidPipelineReshardsItsWave)
{
    auto plan = fault::FaultPlan::parse(
        "seed 99\nfault kind=dpu-hard-fail dpu=2 prob=1\n");
    ASSERT_TRUE(plan.has_value());

    BatchedOptions opts;
    opts.dpus = 8;
    opts.tasklets = 8;
    opts.perDpuElements = 128;
    opts.requests = 3;
    opts.elementsPerRequest = 1024;
    opts.plan = plan;
    MethodSpec spec;
    BatchedResult res =
        runBatchedThroughput(Function::Sin, spec, opts);

    // DPU 2 hard-fails its first launch; its slices re-shard onto
    // the seven survivors and the run still completes.
    ASSERT_TRUE(res.pipelined.complete);
    ASSERT_EQ(res.pipelined.failedDpus.size(), 1u);
    EXPECT_EQ(res.pipelined.failedDpus[0], 2u);
    EXPECT_GT(res.pipelined.reshardedElements, 0u);
    EXPECT_EQ(res.pipelined.droppedElements, 0u);

    // Degraded, but correct: every element carries a real result.
    // (Outputs of the two schedules are compared against the
    // reference independently; the schedules may fail different
    // waves, so byte-identity across modes is not required here.)
    EXPECT_TRUE(res.sync.complete);
}

TEST(ServePipeline, AllCoresDeadReportsIncompleteInsteadOfHanging)
{
    auto plan = fault::FaultPlan::parse(
        "seed 7\nfault kind=dpu-hard-fail prob=1\n"); // every DPU
    ASSERT_TRUE(plan.has_value());

    sim::PimSystem sys(2);
    sys.armFaults(*plan);
    EvaluatorCatalog catalog;
    MethodSpec spec;
    serve::TableKey key = catalog.add(Function::Sin, spec);

    std::vector<float> in(512, 0.25f), out(512);
    serve::BatchQueue queue;
    queue.push(makeRequest(key, in.data(), out.data(), 512));
    queue.close();

    serve::PipelineOptions popts;
    popts.perDpuElements = 128;
    popts.numTasklets = 4;
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);
    serve::ServeReport rep = pipeline.run(queue); // must return
    EXPECT_FALSE(rep.complete);
    EXPECT_GT(rep.droppedElements, 0u);
    EXPECT_EQ(sys.healthyDpus(), 0u);
}

TEST(ServePipeline, FaultFreeOutputsMatchReference)
{
    BatchedOptions opts;
    opts.dpus = 4;
    opts.tasklets = 8;
    opts.perDpuElements = 256;
    opts.requests = 2;
    opts.elementsPerRequest = 2048;
    MethodSpec spec;
    BatchedResult res =
        runBatchedThroughput(Function::Sin, spec, opts);
    ASSERT_TRUE(res.pipelined.complete);
    EXPECT_TRUE(res.outputsMatch);
    // The serve path evaluates with the same kernels as the
    // microbenchmark; accuracy must be L-LUT-grade, not garbage.
    // (interp. L-LUT 2^12 RMSE is ~2.5e-7; 1e-5 catches data-path
    // bugs like wrong slicing offsets without being flaky.)
    MicrobenchOptions mopts;
    mopts.elements = 1024;
    MicrobenchResult mb =
        runMicrobench(Function::Sin, spec, mopts);
    EXPECT_LT(mb.error.rmse, 1e-5);
}

// ---------------------------------------------------------------------
// Acceptance: pipelined beats synchronous by >= 1.3x on the L-LUT
// sin sweep (>= 4 waves, 64 DPUs).

TEST(ServeAcceptance, PipelinedBeatsSyncByThirtyPercent)
{
    BatchedOptions opts; // defaults: 64 DPUs, 5 x 32768 elements
    MethodSpec spec;     // interpolated L-LUT (WRAM, 2^12)
    BatchedResult res =
        runBatchedThroughput(Function::Sin, spec, opts);

    ASSERT_TRUE(res.feasible);
    ASSERT_TRUE(res.pipelined.complete);
    ASSERT_TRUE(res.sync.complete);
    EXPECT_TRUE(res.outputsMatch);
    EXPECT_GE(res.pipelined.waves, 4u);
    EXPECT_EQ(res.pipelined.failedDpus.size(), 0u);

    EXPECT_GE(res.speedup(), 1.3);
    EXPECT_GT(res.overlapPercent(), 0.0);
    EXPECT_GT(res.pipelined.elementsPerSecond(), 0.0);
    EXPECT_GT(res.cyclesPerElement, 0.0);
}

// ---------------------------------------------------------------------
// Fleet property: with a topology armed, the fleet clock is exactly
// the slowest rank's clock, and the per-rank rows partition the
// report's cycle totals — cross-checked against every core's own
// LaunchStats partition.

TEST(ServePipeline, FleetMakespanIsMaxOfRankTimelines)
{
    sim::Topology topo{2, 2, 2}; // 4 ranks x 2 DPUs on 2 channels
    sim::PimSystem sys(topo.numDpus());
    EvaluatorCatalog catalog;
    MethodSpec spec;
    serve::TableKey sin = catalog.add(Function::Sin, spec);
    serve::TableKey cos = catalog.add(Function::Cos, spec);

    const uint32_t elements = 6144;
    std::vector<float> in(elements), out(elements, 0.0f);
    for (uint32_t i = 0; i < elements; ++i)
        in[i] = 3.0f * static_cast<float>(i) / elements;

    serve::BatchQueue queue;
    queue.push(
        makeRequest(sin, in.data(), out.data(), elements / 2));
    queue.push(makeRequest(cos, in.data() + elements / 2,
                           out.data() + elements / 2,
                           elements / 2));
    queue.close();

    serve::PipelineOptions popts;
    popts.numTasklets = 8;
    popts.perDpuElements = 128;
    popts.topology = &topo;
    serve::ServePipeline pipeline(sys, catalog.provider(), popts);
    serve::ServeReport rep = pipeline.run(queue);
    ASSERT_TRUE(rep.complete);
    ASSERT_EQ(rep.rankStats.size(), topo.numRanks());

    double maxSpan = 0.0;
    uint64_t rankCycles = 0;
    uint64_t rankElements = 0;
    for (const serve::RankStats& r : rep.rankStats) {
        maxSpan = std::max(maxSpan, r.makespanSeconds);
        rankCycles += r.computeCycles;
        rankElements += r.elements;
        EXPECT_LE(r.makespanSeconds, rep.modeledSeconds);
    }
    // Exactly ==, not NEAR: both sides read the same timeline.
    EXPECT_EQ(rep.modeledSeconds, maxSpan);
    EXPECT_EQ(rankCycles, rep.computeCycles);
    EXPECT_EQ(rankElements, rep.elements);

    // Per-core cross-check: each core's last launch still satisfies
    // the exact cycle partition under the fleet schedule.
    for (uint32_t d = 0; d < sys.numDpus(); ++d) {
        const LaunchStats& st = sys.dpu(d).lastLaunch();
        if (st.cycles == 0)
            continue; // a core the placement never used
        uint64_t classSum = 0;
        for (uint64_t c : st.classInstructions)
            classSum += c;
        EXPECT_EQ(classSum, st.totalInstructions);
        EXPECT_EQ(classSum + st.stallCycles, st.cycles);
    }
}
