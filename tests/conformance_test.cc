/**
 * @file
 * Conformance tier: the headline Figure-5 claims of EXPERIMENTS.md as
 * ctest assertions, so a regression that silently breaks a paper
 * observation (not just a unit) fails the build. Element counts are
 * kept small — the claims are about per-element cycle ratios and
 * orderings, which are independent of the element count for these
 * streaming kernels — so the whole suite stays inside the tier-1
 * budget.
 */

#include <gtest/gtest.h>

#include <string>

#include "pimsim/system.h"
#include "pimsim/topology.h"
#include "transpim/harness.h"

namespace {

using namespace tpl;
using namespace tpl::transpim;

/**
 * Small-count microbench. Figure 5 measures cycles/element, which is
 * count-independent once every tasklet has work: the harness streams
 * 256-element chunks over 16 tasklets, so 4096 elements (one chunk
 * per tasklet) is the smallest balanced count — locked by the premise
 * test below.
 */
MicrobenchResult
bench(Function f, const MethodSpec& spec, uint32_t elements = 4096)
{
    MicrobenchOptions opts;
    opts.elements = elements;
    MicrobenchResult res = runMicrobench(f, spec, opts);
    EXPECT_TRUE(res.feasible) << methodLabel(spec);
    return res;
}

MethodSpec
lutSpec(Method m, bool interp, uint32_t log2n = 12)
{
    MethodSpec spec;
    spec.method = m;
    spec.interpolated = interp;
    spec.log2Entries = log2n;
    return spec;
}

// ---------------------------------------------------------------------
// Figure 5, observation 1: LUT method ordering follows the float-
// multiply count — L-LUT < fixed L-LUT < M-LUT < interp. L-LUT <
// interp. M-LUT (EXPERIMENTS.md measures 52 < 75 < 218 < 447 < 613).
// ---------------------------------------------------------------------

TEST(Fig5Conformance, LutMethodOrderingFollowsMultiplyCount)
{
    double llut =
        bench(Function::Sin, lutSpec(Method::LLut, false))
            .cyclesPerElement;
    double llutFixed =
        bench(Function::Sin, lutSpec(Method::LLutFixed, false))
            .cyclesPerElement;
    double mlut =
        bench(Function::Sin, lutSpec(Method::MLut, false))
            .cyclesPerElement;
    double llutInterp =
        bench(Function::Sin, lutSpec(Method::LLut, true))
            .cyclesPerElement;
    double mlutInterp =
        bench(Function::Sin, lutSpec(Method::MLut, true))
            .cyclesPerElement;

    EXPECT_LT(llut, llutFixed);
    EXPECT_LT(llutFixed, mlut);
    EXPECT_LT(mlut, llutInterp);
    EXPECT_LT(llutInterp, mlutInterp);

    // 1a: non-interp. L-LUT cuts >=70% vs non-interp. M-LUT.
    EXPECT_LT(llut, 0.30 * mlut);
    // 1b: interp. L-LUT is faster than interp. M-LUT.
    EXPECT_LT(llutInterp, mlutInterp);
    // 1d: fixed-point non-interp. does NOT beat float non-interp.
    EXPECT_GE(llutFixed, llut);
}

// ---------------------------------------------------------------------
// Figure 5, observation 1: LUT series are flat vs table size (and
// hence vs RMSE) — the cycle count is set by the arithmetic, not the
// number of entries.
// ---------------------------------------------------------------------

TEST(Fig5Conformance, LutCyclesFlatAcrossTableSizes)
{
    for (bool interp : {false, true}) {
        double first = 0.0;
        for (uint32_t log2n : {6u, 10u, 14u}) {
            double cpe =
                bench(Function::Sin,
                      lutSpec(Method::LLut, interp, log2n))
                    .cyclesPerElement;
            if (first == 0.0) {
                first = cpe;
                continue;
            }
            EXPECT_NEAR(cpe, first, 0.10 * first)
                << "interp=" << interp << " 2^" << log2n;
        }
    }
}

// While cycles stay flat, accuracy must improve with entries —
// otherwise "flat vs RMSE" is vacuous.
TEST(Fig5Conformance, LutAccuracyImprovesWithEntries)
{
    double prev = 0.0;
    for (uint32_t log2n : {6u, 10u, 14u}) {
        double rmse =
            bench(Function::Sin, lutSpec(Method::LLut, true, log2n))
                .error.rmse;
        if (prev != 0.0)
            EXPECT_LT(rmse, prev) << "2^" << log2n;
        prev = rmse;
    }
}

// ---------------------------------------------------------------------
// Figure 5, observation 2: CORDIC cycles grow with the iteration
// count (one bit of accuracy per iteration has a linear cycle cost),
// and CORDIC+LUT undercuts plain CORDIC at equal iterations.
// ---------------------------------------------------------------------

TEST(Fig5Conformance, CordicCyclesGrowWithIterations)
{
    double prev = 0.0;
    for (uint32_t iters : {8u, 16u, 28u}) {
        MethodSpec spec;
        spec.method = Method::Cordic;
        spec.iterations = iters;
        double cpe =
            bench(Function::Sin, spec, 512).cyclesPerElement;
        EXPECT_GT(cpe, prev) << iters << " iters";
        prev = cpe;
    }
}

TEST(Fig5Conformance, CordicLutUndercutsCordic)
{
    for (uint32_t iters : {16u, 24u}) {
        MethodSpec cordic;
        cordic.method = Method::Cordic;
        cordic.iterations = iters;
        MethodSpec hybrid = cordic;
        hybrid.method = Method::CordicLut;
        double plain =
            bench(Function::Sin, cordic, 512).cyclesPerElement;
        double lut =
            bench(Function::Sin, hybrid, 512).cyclesPerElement;
        EXPECT_LT(lut, plain) << iters << " iters";
    }
}

// ---------------------------------------------------------------------
// Figure 5, observation 3: at high accuracy CORDIC is several times
// slower than the interpolated L-LUT (EXPERIMENTS.md: 10.4x).
// ---------------------------------------------------------------------

TEST(Fig5Conformance, InterpLlutBeatsHighAccuracyCordic)
{
    MethodSpec cordic;
    cordic.method = Method::Cordic;
    cordic.iterations = 24; // ~1e-7 territory
    MethodSpec llut = lutSpec(Method::LLut, true, 12);

    MicrobenchResult c = bench(Function::Sin, cordic, 512);
    MicrobenchResult l = bench(Function::Sin, llut, 512);
    EXPECT_GT(c.cyclesPerElement, 3.0 * l.cyclesPerElement);
    // Both sit at comparable (high) accuracy for the comparison to
    // be the paper's: within two orders of magnitude RMSE.
    EXPECT_LT(l.error.rmse, 1e-5);
    EXPECT_LT(c.error.rmse, 1e-5);
}

// ---------------------------------------------------------------------
// The small-count premise: cycles/element at 4096 elements matches
// 16384 elements within a few percent, so the suite's small counts
// measure the same quantity Figure 5 plots at 2^16.
// ---------------------------------------------------------------------

TEST(Fig5Conformance, CyclesPerElementIndependentOfElementCount)
{
    MethodSpec spec = lutSpec(Method::LLut, true);
    double small = bench(Function::Sin, spec, 4096).cyclesPerElement;
    double large =
        bench(Function::Sin, spec, 16384).cyclesPerElement;
    EXPECT_NEAR(small, large, 0.05 * large);
}

// ---------------------------------------------------------------------
// Fleet claim: UPMEM host<->DPU transfer bandwidth scales with the
// number of ranks engaged in parallel — two ranks on distinct
// memory channels move twice the bytes per unit time, while the two
// ranks of one DIMM serialize on their shared channel (no scaling).
// The published envelope is 2.0x per channel doubling; the model
// must land within +-5%.
// ---------------------------------------------------------------------

TEST(FleetConformance, TransferBandwidthScalesAcrossRanksNotWithin)
{
    sim::PimSystem sys(8);
    const uint64_t bytes = 8u << 20;

    auto twoRankMakespan = [&](const sim::Topology& topo) {
        sim::PipelineTimeline t(8);
        t.configureRanks(2, 4, topo.channelMap());
        sys.broadcastAsync(t, 0.0, bytes, 0);
        sys.broadcastAsync(t, 0.0, bytes, 1);
        return t.makespan();
    };
    sim::Topology acrossChannels{2, 1, 4};
    sim::Topology withinChannel{1, 2, 4};
    double apart = twoRankMakespan(acrossChannels);
    double together = twoRankMakespan(withinChannel);
    ASSERT_GT(apart, 0.0);

    // Parallel across channels vs serial within: the same two-rank
    // transfer finishes 2x faster when the ranks do not share a
    // channel.
    double scaling = together / apart;
    EXPECT_GE(scaling, 1.9);
    EXPECT_LE(scaling, 2.1);

    // And each rank's parallel pass sits at the rank-parallel rate,
    // far above the element-serial host rate (the 6.7 vs 0.35 GB/s
    // regime the cost model encodes).
    double rankRate =
        static_cast<double>(bytes) /
        sys.rankParallelTransferSeconds(bytes);
    double serialRate =
        static_cast<double>(bytes) / sys.serialTransferSeconds(bytes);
    double regime = rankRate / serialRate;
    EXPECT_GE(regime, 6.7 / 0.35 * 0.9);
    EXPECT_LE(regime, 6.7 / 0.35 * 1.1);
}

} // namespace
