/**
 * @file
 * Unit tests for the common module: bit utilities, Q3.28 fixed point,
 * error metrics, emulated integer arithmetic, and the RNG helpers.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/emu_int.h"
#include "common/error_metrics.h"
#include "common/fixed_point.h"
#include "common/rng.h"

namespace tpl {
namespace {

TEST(BitOps, FloatRoundTrip)
{
    EXPECT_EQ(0x3f800000u, floatBits(1.0f));
    EXPECT_EQ(1.0f, bitsToFloat(0x3f800000u));
    EXPECT_EQ(0x80000000u, floatBits(-0.0f));
}

TEST(BitOps, LeadingZeros)
{
    EXPECT_EQ(32, countLeadingZeros32(0));
    EXPECT_EQ(31, countLeadingZeros32(1));
    EXPECT_EQ(0, countLeadingZeros32(0x80000000u));
    EXPECT_EQ(8, countLeadingZeros32(0x00800000u));
    EXPECT_EQ(64, countLeadingZeros64(0));
    EXPECT_EQ(0, countLeadingZeros64(1ull << 63));
}

TEST(BitOps, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_EQ(10, log2Exact(1024));
}

TEST(BitOps, IeeeFields)
{
    uint32_t bits = floatBits(-6.5f);
    EXPECT_EQ(1u, ieeeSign(bits));
    EXPECT_EQ(bits, ieeePack(ieeeSign(bits), ieeeExponent(bits),
                             ieeeMantissa(bits)));
}

TEST(FixedPoint, ConversionRoundTrip)
{
    for (double v : {0.0, 1.0, -1.0, 3.14159, -6.28, 7.9, -7.9, 1e-8}) {
        Fixed f = Fixed::fromDouble(v);
        EXPECT_NEAR(v, f.toDouble(), Fixed::resolution) << v;
    }
}

TEST(FixedPoint, Resolution)
{
    Fixed one = Fixed::fromDouble(1.0);
    EXPECT_EQ(1 << Fixed::fracBits, one.raw());
    Fixed eps = Fixed::fromRaw(1);
    EXPECT_DOUBLE_EQ(Fixed::resolution, eps.toDouble());
}

TEST(FixedPoint, Arithmetic)
{
    Fixed a = Fixed::fromDouble(1.5);
    Fixed b = Fixed::fromDouble(2.25);
    EXPECT_DOUBLE_EQ(3.75, (a + b).toDouble());
    EXPECT_DOUBLE_EQ(-0.75, (a - b).toDouble());
    EXPECT_DOUBLE_EQ(-1.5, (-a).toDouble());
    EXPECT_NEAR(3.375, (a * b).toDouble(), 2 * Fixed::resolution);
}

TEST(FixedPoint, MultiplyNegative)
{
    Fixed a = Fixed::fromDouble(-1.5);
    Fixed b = Fixed::fromDouble(2.0);
    EXPECT_NEAR(-3.0, (a * b).toDouble(), 2 * Fixed::resolution);
    EXPECT_NEAR(3.0, ((-a) * b).toDouble(), 2 * Fixed::resolution);
}

TEST(FixedPoint, Shifts)
{
    Fixed a = Fixed::fromDouble(2.0);
    EXPECT_DOUBLE_EQ(1.0, a.shiftRight(1).toDouble());
    EXPECT_DOUBLE_EQ(4.0, a.shiftLeft(1).toDouble());
    Fixed neg = Fixed::fromDouble(-2.0);
    EXPECT_DOUBLE_EQ(-1.0, neg.shiftRight(1).toDouble());
}

TEST(FixedPoint, Saturation)
{
    EXPECT_EQ(INT32_MAX, saturatingFromDouble(100.0).raw());
    EXPECT_EQ(INT32_MIN, saturatingFromDouble(-100.0).raw());
    EXPECT_EQ(Fixed::fromDouble(1.0).raw(),
              saturatingFromDouble(1.0).raw());
}

TEST(FixedPoint, Constants)
{
    EXPECT_NEAR(M_PI, fixedPi().toDouble(), Fixed::resolution);
    EXPECT_NEAR(M_PI / 2, fixedHalfPi().toDouble(), Fixed::resolution);
    EXPECT_NEAR(2 * M_PI, fixedTwoPi().toDouble(), Fixed::resolution);
}

TEST(FixedPoint, Comparisons)
{
    Fixed a = Fixed::fromDouble(1.0);
    Fixed b = Fixed::fromDouble(2.0);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a == Fixed::fromDouble(1.0));
}

TEST(ErrorMetrics, UlpDistance)
{
    EXPECT_EQ(0.0, ulpDistance(1.0f, 1.0f));
    EXPECT_EQ(1.0, ulpDistance(1.0f, std::nextafter(1.0f, 2.0f)));
    EXPECT_EQ(2.0, ulpDistance(-1.0f,
                  std::nextafter(std::nextafter(-1.0f, 0.f), 0.f)));
    // Across zero: +den and -den are two ULPs apart via zero.
    float den = std::numeric_limits<float>::denorm_min();
    EXPECT_EQ(2.0, ulpDistance(den, -den));
    EXPECT_TRUE(std::isinf(
        ulpDistance(std::numeric_limits<float>::quiet_NaN(), 1.0f)));
}

TEST(ErrorMetrics, Accumulator)
{
    ErrorAccumulator acc;
    acc.add(1.0, 1.0);
    acc.add(2.0, 1.0);
    acc.add(1.0, 2.0);
    ErrorStats s = acc.stats();
    EXPECT_EQ(3u, s.count);
    EXPECT_DOUBLE_EQ(1.0, s.maxAbs);
    EXPECT_NEAR(std::sqrt(2.0 / 3.0), s.rmse, 1e-12);
    EXPECT_NEAR(2.0 / 3.0, s.meanAbs, 1e-12);
}

TEST(ErrorMetrics, EmptyStats)
{
    ErrorAccumulator acc;
    ErrorStats s = acc.stats();
    EXPECT_EQ(0u, s.count);
    EXPECT_EQ(0.0, s.rmse);
}

TEST(ErrorMetrics, SpanOverload)
{
    std::vector<float> a{1.0f, 2.0f};
    std::vector<float> b{1.0f, 2.5f};
    ErrorStats s = computeErrorStats(a, b);
    EXPECT_EQ(2u, s.count);
    EXPECT_FLOAT_EQ(0.5f, static_cast<float>(s.maxAbs));
}

TEST(EmuInt, MulMatchesHost)
{
    SplitMix64 rng(21);
    CountingSink sink;
    for (int i = 0; i < 100000; ++i) {
        uint32_t a = static_cast<uint32_t>(rng.next());
        uint32_t b = static_cast<uint32_t>(rng.next());
        ASSERT_EQ(static_cast<uint64_t>(a) * b, emuMul32(a, b, &sink));
    }
    EXPECT_GT(sink.total(), 0u);
}

TEST(EmuInt, MulSigned)
{
    CountingSink sink;
    EXPECT_EQ(-6, emuMulS32(2, -3, &sink));
    EXPECT_EQ(6, emuMulS32(-2, -3, &sink));
    EXPECT_EQ(static_cast<int64_t>(INT32_MIN) * INT32_MIN,
              emuMulS32(INT32_MIN, INT32_MIN, &sink));
}

TEST(EmuInt, MulCostDependsOnOperandBytes)
{
    CountingSink cheap, costly;
    emuMul32(0x000000ffu, 0xffffffffu, &cheap);
    emuMul32(0xffffffffu, 0xffffffffu, &costly);
    EXPECT_LT(cheap.total(), costly.total());
}

TEST(EmuInt, DivMatchesHost)
{
    SplitMix64 rng(22);
    CountingSink sink;
    for (int i = 0; i < 100000; ++i) {
        uint32_t a = static_cast<uint32_t>(rng.next());
        uint32_t b = static_cast<uint32_t>(rng.next());
        if (b == 0)
            continue;
        uint32_t rem = 0;
        ASSERT_EQ(a / b, emuDiv32(a, b, &sink, &rem));
        ASSERT_EQ(a % b, rem);
    }
}

TEST(EmuInt, DivSigned)
{
    CountingSink sink;
    EXPECT_EQ(-2, emuDivS32(7, -3, &sink));
    EXPECT_EQ(2, emuDivS32(-7, -3, &sink));
    EXPECT_EQ(-2, emuDivS32(-7, 3, &sink));
}

TEST(Rng, Deterministic)
{
    auto a = uniformFloats(100, 0.0f, 1.0f, 42);
    auto b = uniformFloats(100, 0.0f, 1.0f, 42);
    EXPECT_EQ(a, b);
    auto c = uniformFloats(100, 0.0f, 1.0f, 43);
    EXPECT_NE(a, c);
}

TEST(Rng, Range)
{
    auto v = uniformFloats(10000, -2.0f, 5.0f);
    for (float x : v) {
        EXPECT_GE(x, -2.0f);
        EXPECT_LT(x, 5.0f);
    }
}

} // namespace
} // namespace tpl
