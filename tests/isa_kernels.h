/**
 * @file
 * Hand-written mini-ISA test kernels, shared between the cost-model
 * validation tests (isa_test.cc) and the pimcheck analysis tests
 * (analysis_test.cc) so both suites exercise the exact same assembly.
 *
 * Constants spelled `@NAME` are substituted with `substConst()` before
 * assembling.
 */

#ifndef TPL_TESTS_ISA_KERNELS_H
#define TPL_TESTS_ISA_KERNELS_H

#include <cstdint>
#include <string>

namespace tpl {
namespace sim {
namespace testkernels {

/** Replace every occurrence of @p key with @p value. */
inline std::string
substConst(std::string text, const std::string& key, int64_t value)
{
    std::string val = std::to_string(value);
    size_t pos = 0;
    while ((pos = text.find(key, pos)) != std::string::npos) {
        text.replace(pos, key.size(), val);
        pos += val.size();
    }
    return text;
}

/**
 * Fixed-point interpolated L-LUT kernel. Table and inputs are
 * pre-placed in WRAM; constants are substituted into the source.
 */
constexpr const char* kLLutKernel = R"(
        movi r1, 0          # element index
        movi r2, @N
        movi r5, @PRAW
        movi r13, @MASK
    loop:
        bge  r1, r2, done
        slli r3, r1, 2
        ldw  r4, r3, @INP   # x (Q3.28 raw)
        sub  r4, r4, r5     # t = x - p (unsigned wrap ok)
        srli r6, r4, @SHIFT # index
        and  r7, r4, r13    # delta bits
        slli r8, r6, 2
        ldw  r9, r8, @TBL   # l0
        ldw  r10, r8, @TBLN # l1
        sub  r10, r10, r9   # d
        mul  r11, r10, r7   # low(d * delta)
        mulh r12, r10, r7   # high(d * delta)
        srli r11, r11, @SHIFT
        slli r12, r12, @SHIFTC
        or   r11, r11, r12  # (d*delta) >> shift, low 32 bits
        add  r9, r9, r11    # l0 + correction
        stw  r9, r3, @OUT
        addi r1, r1, 1
        jmp  loop
    done:
        halt
)";

/**
 * Tasklet-parallel variant of the L-LUT kernel: each tasklet owns the
 * contiguous block of `@NPER` elements starting at `tid * @NPER`, so
 * writes are disjoint by construction, and all tasklets rendezvous
 * once after their block. The loop is counted with a constant bound,
 * which keeps the trip count statically inferable (bound.h) and the
 * barrier provably balanced (verify.cc) — the shape the interleaving
 * explorer certifies race-free.
 */
constexpr const char* kLLutParKernel = R"(
        tid  r15
        movi r14, @NPER
        mul  r15, r15, r14  # first element of this tasklet's block
        slli r15, r15, 2    # ... as a byte offset
        movi r1, 0          # element within the block
        movi r2, @NPER
        movi r5, @PRAW
        movi r13, @MASK
    loop:
        bge  r1, r2, done
        slli r3, r1, 2
        add  r3, r3, r15    # byte offset of the element
        ldw  r4, r3, @INP   # x (Q3.28 raw)
        sub  r4, r4, r5     # t = x - p (unsigned wrap ok)
        srli r6, r4, @SHIFT # index
        and  r7, r4, r13    # delta bits
        slli r8, r6, 2
        ldw  r9, r8, @TBL   # l0
        ldw  r10, r8, @TBLN # l1
        sub  r10, r10, r9   # d
        mul  r11, r10, r7   # low(d * delta)
        mulh r12, r10, r7   # high(d * delta)
        srli r11, r11, @SHIFT
        slli r12, r12, @SHIFTC
        or   r11, r11, r12  # (d*delta) >> shift, low 32 bits
        add  r9, r9, r11    # l0 + correction
        stw  r9, r3, @OUT
        addi r1, r1, 1
        jmp  loop
    done:
        barrier
        halt
)";

/** Fixed-point circular CORDIC rotation (one angle). */
constexpr const char* kCordicKernel = R"(
        movi r1, @Z0        # z
        movi r2, @INVGAIN   # x
        movi r3, 0          # y
        movi r4, 0          # k
        movi r5, @NITER
        movi r10, 0
    loop:
        bge  r4, r5, done
        sra  r6, r2, r4     # xs = x >> k
        sra  r7, r3, r4     # ys = y >> k
        slli r8, r4, 2
        ldw  r9, r8, @ATBL  # angle[k]
        blt  r1, r10, neg
        sub  r2, r2, r7
        add  r3, r3, r6
        sub  r1, r1, r9
        jmp  next
    neg:
        add  r2, r2, r7
        sub  r3, r3, r6
        add  r1, r1, r9
    next:
        addi r4, r4, 1
        jmp  loop
    done:
        halt
)";

} // namespace testkernels
} // namespace sim
} // namespace tpl

#endif // TPL_TESTS_ISA_KERNELS_H
