/**
 * @file
 * Property tests on LUT-based evaluators: structural invariants that
 * must hold regardless of table size - monotonicity preservation by
 * linear interpolation, symmetry of symmetric functions, out-of-domain
 * clamping, continuity across bucket boundaries, and the shared
 * trig-table tangent optimization.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/evaluator.h"

namespace tpl {
namespace transpim {
namespace {

MethodSpec
lutSpec(Method m, uint32_t log2n)
{
    MethodSpec spec;
    spec.method = m;
    spec.interpolated = true;
    spec.placement = Placement::Host;
    spec.log2Entries = log2n;
    spec.dlutMantBits = 7;
    return spec;
}

class MonotonicityTest
    : public ::testing::TestWithParam<std::tuple<Method, uint32_t>>
{
};

TEST_P(MonotonicityTest, InterpolatedTanhIsMonotone)
{
    // Linear interpolation of a monotone function on a monotone table
    // must stay monotone (no overshoot between entries).
    auto [m, log2n] = GetParam();
    auto eval = FunctionEvaluator::create(Function::Tanh,
                                          lutSpec(m, log2n));
    float prev = eval.eval(-8.0f);
    for (int i = 1; i <= 4000; ++i) {
        float x = -8.0f + 16.0f * i / 4000.0f;
        float y = eval.eval(x);
        ASSERT_GE(y + 1e-7f, prev) << "at x=" << x;
        prev = y;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, MonotonicityTest,
    ::testing::Combine(::testing::Values(Method::MLut, Method::LLut,
                                         Method::LLutFixed,
                                         Method::DLut, Method::DlLut),
                       ::testing::Values(8u, 12u)));

TEST(LutProperties, SigmoidBounded)
{
    // Interpolation between valid probabilities stays a probability.
    for (Method m : {Method::LLut, Method::DlLut}) {
        auto eval = FunctionEvaluator::create(Function::Sigmoid,
                                              lutSpec(m, 10));
        SplitMix64 rng(81);
        for (int i = 0; i < 4000; ++i) {
            float x = rng.nextFloat(-16.0f, 16.0f);
            float y = eval.eval(x);
            ASSERT_GE(y, 0.0f) << x;
            ASSERT_LE(y, 1.0f) << x;
        }
    }
}

TEST(LutProperties, OutOfDomainClamps)
{
    // Inputs beyond the tabulated interval must clamp to the boundary
    // entries, never index out of range or produce garbage.
    auto tanh = FunctionEvaluator::create(Function::Tanh,
                                          lutSpec(Method::LLut, 10));
    EXPECT_NEAR(1.0f, tanh.eval(50.0f), 1e-3);
    EXPECT_NEAR(-1.0f, tanh.eval(-50.0f), 1e-3);
    auto dlut = FunctionEvaluator::create(Function::Tanh,
                                          lutSpec(Method::DLut, 10));
    EXPECT_NEAR(1.0f, dlut.eval(1e20f), 1e-3);
    EXPECT_NEAR(-1.0f, dlut.eval(-1e20f), 1e-3);
}

TEST(LutProperties, ContinuityAcrossBuckets)
{
    // Walk a fine grid and bound the jump between adjacent samples:
    // interpolated tables must be (numerically) continuous.
    for (Method m : {Method::MLut, Method::LLut, Method::DLut}) {
        auto eval = FunctionEvaluator::create(Function::Gelu,
                                              lutSpec(m, 10));
        float prev = eval.eval(-8.0f);
        float maxJump = 0.0f;
        for (int i = 1; i <= 20000; ++i) {
            float x = -8.0f + 16.0f * i / 20000.0f;
            float y = eval.eval(x);
            maxJump = std::max(maxJump, std::abs(y - prev));
            prev = y;
        }
        // gelu' <= ~1.1; step is 8e-4, so jumps beyond ~0.05 would
        // indicate a table-boundary discontinuity.
        EXPECT_LT(maxJump, 0.05f) << methodName(m);
    }
}

TEST(LutProperties, SineOddSymmetryAboutPi)
{
    // sin(pi + d) = -sin(pi - d): tables built on [0, 2pi] should
    // respect this to within their approximation error.
    auto eval = FunctionEvaluator::create(Function::Sin,
                                          lutSpec(Method::LLut, 12));
    SplitMix64 rng(82);
    for (int i = 0; i < 2000; ++i) {
        float d = rng.nextFloat(0.0f, 3.0f);
        float a = eval.eval(static_cast<float>(M_PI) + d);
        float b = eval.eval(static_cast<float>(M_PI) - d);
        EXPECT_NEAR(a, -b, 2e-5) << d;
    }
}

TEST(SharedTrigTables, SameAccuracyClassAsTwoTables)
{
    MethodSpec two = lutSpec(Method::LLut, 12);
    MethodSpec shared = lutSpec(Method::LLut, 12);
    shared.shareTrigTables = true;
    auto tanTwo = FunctionEvaluator::create(Function::Tan, two);
    auto tanShared = FunctionEvaluator::create(Function::Tan, shared);
    SplitMix64 rng(83);
    for (int i = 0; i < 2000; ++i) {
        float x = rng.nextFloat(0.0f, 6.28f);
        if (std::abs(std::cos((double)x)) < 0.1)
            continue;
        double ref = std::tan((double)x);
        EXPECT_NEAR(ref, tanShared.eval(x), 5e-4 + std::abs(ref) * 1e-3)
            << x;
        EXPECT_NEAR(tanTwo.eval(x), tanShared.eval(x),
                    5e-4 + std::abs(ref) * 1e-3)
            << x;
    }
}

TEST(SharedTrigTables, SavesMemory)
{
    MethodSpec two = lutSpec(Method::LLut, 12);
    MethodSpec shared = lutSpec(Method::LLut, 12);
    shared.shareTrigTables = true;
    auto tanTwo = FunctionEvaluator::create(Function::Tan, two);
    auto tanShared = FunctionEvaluator::create(Function::Tan, shared);
    // One [0, 2.5pi] table vs two [0, 2pi] tables: ~62%.
    EXPECT_LT(tanShared.memoryBytes(), 0.7 * tanTwo.memoryBytes());
    // At the price of one extra float addition per element.
    CountingSink sTwo, sShared;
    tanTwo.eval(1.0f, &sTwo);
    tanShared.eval(1.0f, &sShared);
    EXPECT_GT(sShared.total(), sTwo.total());
    EXPECT_LT(sShared.total(), sTwo.total() + 120);
}

TEST(LutProperties, DeterministicAcrossRebuilds)
{
    auto a = FunctionEvaluator::create(Function::Exp,
                                       lutSpec(Method::LLut, 12));
    auto b = FunctionEvaluator::create(Function::Exp,
                                       lutSpec(Method::LLut, 12));
    SplitMix64 rng(84);
    for (int i = 0; i < 1000; ++i) {
        float x = rng.nextFloat(-10.0f, 10.0f);
        ASSERT_EQ(a.eval(x), b.eval(x)) << x;
    }
}

} // namespace
} // namespace transpim
} // namespace tpl
