/**
 * @file
 * Targeted tests for paths the broad suites exercise only lightly:
 * range reduction composed with every trig method, the CORDIC
 * exp-identity fallbacks beyond the convergence range, the harness's
 * infeasible-configuration and domain-override handling, and the
 * direct-LUT positive-only functions.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/harness.h"

namespace tpl {
namespace transpim {
namespace {

TEST(RangeComposition, AllTrigMethodsWithReduction)
{
    // reduceRange must compose with every trigonometric method family.
    SplitMix64 rng(131);
    for (Method m : {Method::Cordic, Method::CordicFixed,
                     Method::CordicLut, Method::MLut, Method::LLut,
                     Method::LLutFixed, Method::Poly}) {
        MethodSpec spec;
        spec.method = m;
        spec.placement = Placement::Host;
        spec.log2Entries = 13;
        spec.iterations = 24;
        spec.polyDegree = 13;
        spec.reduceRange = true;
        for (Function f : {Function::Sin, Function::Cos}) {
            auto eval = FunctionEvaluator::create(f, spec);
            for (int i = 0; i < 300; ++i) {
                float x = rng.nextFloat(-40.0f, 40.0f);
                double ref = referenceValue(f, (double)x);
                EXPECT_NEAR(ref, eval.eval(x), 5e-4)
                    << functionName(f) << "/" << methodName(m) << " "
                    << x;
            }
        }
    }
}

TEST(CordicFallbacks, HyperbolicIdentityPaths)
{
    // |x| > 1 routes sinh/cosh/tanh through the exp identities; cover
    // both sides of the seam for CORDIC and CORDIC+LUT.
    SplitMix64 rng(132);
    for (Method m : {Method::Cordic, Method::CordicLut}) {
        MethodSpec spec;
        spec.method = m;
        spec.iterations = 26;
        spec.placement = Placement::Host;
        for (Function f :
             {Function::Sinh, Function::Cosh, Function::Tanh}) {
            auto eval = FunctionEvaluator::create(f, spec);
            for (float x : {-3.5f, -1.01f, -0.99f, 0.99f, 1.01f, 3.5f}) {
                double ref = referenceValue(f, (double)x);
                double tol = std::max(1.0, std::abs(ref)) * 5e-5;
                EXPECT_NEAR(ref, eval.eval(x), tol)
                    << functionName(f) << "/" << methodName(m) << " "
                    << x;
            }
        }
    }
}

TEST(DirectLut, PositiveOnlyFunctions)
{
    // log/sqrt/rsqrt via D-LUT use unsigned coverage.
    SplitMix64 rng(133);
    MethodSpec spec;
    spec.method = Method::DLut;
    spec.placement = Placement::Host;
    spec.dlutMantBits = 8;
    for (Function f : {Function::Log, Function::Sqrt, Function::Rsqrt,
                       Function::Log2, Function::Log10}) {
        auto eval = FunctionEvaluator::create(f, spec);
        Domain dom = functionDomain(f);
        for (int i = 0; i < 400; ++i) {
            float x = rng.nextFloat(
                std::max(0.02f, (float)dom.lo), (float)dom.hi);
            double ref = referenceValue(f, (double)x);
            double tol = std::max(1.0, std::abs(ref)) * 3e-3;
            EXPECT_NEAR(ref, eval.eval(x), tol)
                << functionName(f) << " " << x;
        }
    }
}

TEST(Harness, InfeasibleConfigurationReported)
{
    // A 2^20-entry WRAM table cannot fit: the harness reports it
    // rather than throwing.
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Wram;
    spec.log2Entries = 20;
    MicrobenchOptions opts;
    opts.elements = 64;
    MicrobenchResult res = runMicrobench(Function::Sin, spec, opts);
    EXPECT_FALSE(res.feasible);
    // The same table in MRAM is feasible.
    spec.placement = Placement::Mram;
    res = runMicrobench(Function::Sin, spec, opts);
    EXPECT_TRUE(res.feasible);
    EXPECT_GT(res.cyclesPerElement, 0.0);
}

TEST(Harness, DomainOverride)
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Host;
    MicrobenchOptions opts;
    opts.elements = 512;
    opts.domain = Domain{1.0, 2.0}; // narrow slice of [0, 2pi]
    MicrobenchResult res = runMicrobench(Function::Sin, spec, opts);
    EXPECT_TRUE(res.feasible);
    // All inputs in [1, 2] -> errors should be tiny and count full.
    EXPECT_EQ(512u, res.error.count);
    EXPECT_LT(res.error.rmse, 1e-5);
}

TEST(Harness, TaskletCountAffectsCyclesNotValues)
{
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.placement = Placement::Wram;
    spec.log2Entries = 10;
    MicrobenchOptions a;
    a.elements = 2048;
    a.tasklets = 1;
    MicrobenchOptions b = a;
    b.tasklets = 16;
    MicrobenchResult ra = runMicrobench(Function::Sin, spec, a);
    MicrobenchResult rb = runMicrobench(Function::Sin, spec, b);
    EXPECT_GT(ra.cyclesPerElement, 5.0 * rb.cyclesPerElement);
    EXPECT_EQ(ra.error.rmse, rb.error.rmse);
}

TEST(MethodLabels, AllVariantsRender)
{
    for (Method m : {Method::Cordic, Method::CordicFixed,
                     Method::CordicLut, Method::MLut, Method::LLut,
                     Method::LLutFixed, Method::DLut, Method::DlLut,
                     Method::Poly}) {
        MethodSpec spec;
        spec.method = m;
        EXPECT_FALSE(methodLabel(spec).empty());
        EXPECT_FALSE(methodName(m).empty());
    }
}

TEST(FunctionNames, AllRender)
{
    for (int i = 0; i <= static_cast<int>(Function::Softplus); ++i) {
        Function f = static_cast<Function>(i);
        EXPECT_NE("?", functionName(f));
        Domain d = functionDomain(f);
        EXPECT_LT(d.lo, d.hi);
    }
}

TEST(Evaluator, CosAndTanWithSharedReduction)
{
    // cos via quadrant+1 trick in the poly path; tan via division.
    MethodSpec spec;
    spec.method = Method::Poly;
    spec.polyDegree = 13;
    spec.placement = Placement::Host;
    auto cosE = FunctionEvaluator::create(Function::Cos, spec);
    auto tanE = FunctionEvaluator::create(Function::Tan, spec);
    SplitMix64 rng(134);
    for (int i = 0; i < 500; ++i) {
        float x = rng.nextFloat(0.0f, 6.28f);
        EXPECT_NEAR(std::cos((double)x), cosE.eval(x), 2e-5) << x;
        if (std::abs(std::cos((double)x)) > 0.2) {
            double ref = std::tan((double)x);
            EXPECT_NEAR(ref, tanE.eval(x),
                        std::abs(ref) * 1e-3 + 1e-4)
                << x;
        }
    }
}

} // namespace
} // namespace transpim
} // namespace tpl
