/**
 * @file
 * Binary16 tier tests: conversions and arithmetic validated bit-for-
 * bit against the compiler's _Float16 (which lowers to correctly
 * rounded IEEE binary16 operations), plus the half-precision L-LUT's
 * accuracy floor and memory halving.
 */

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/error_metrics.h"
#include "common/rng.h"
#include "softfloat/softfloat.h"
#include "softfloat/softfloat16.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/llut16.h"

namespace tpl {
namespace {

uint16_t
nativeBits(_Float16 v)
{
    uint16_t b;
    std::memcpy(&b, &v, 2);
    return b;
}

_Float16
nativeFromBits(uint16_t b)
{
    _Float16 v;
    std::memcpy(&v, &b, 2);
    return v;
}

bool
isNan16(uint16_t b)
{
    return (b & 0x7c00u) == 0x7c00u && (b & 0x3ffu) != 0;
}

TEST(SoftFloat16Convert, ToF16MatchesCompiler)
{
    SplitMix64 rng(141);
    for (int i = 0; i < 200000; ++i) {
        float a = bitsToFloat(static_cast<uint32_t>(rng.next()));
        uint16_t expect = nativeBits(static_cast<_Float16>(a));
        uint16_t got = sf::toF16(a).bits;
        if (isNan16(expect)) {
            ASSERT_TRUE(isNan16(got)) << std::hexfloat << a;
            continue;
        }
        ASSERT_EQ(expect, got) << std::hexfloat << a;
    }
}

TEST(SoftFloat16Convert, FromF16MatchesCompiler)
{
    for (uint32_t b = 0; b < 0x10000u; ++b) {
        uint16_t bits = static_cast<uint16_t>(b);
        float expect =
            static_cast<float>(nativeFromBits(bits));
        float got = sf::fromF16(sf::Half{bits});
        if (std::isnan(expect)) {
            ASSERT_TRUE(std::isnan(got)) << b;
            continue;
        }
        ASSERT_EQ(floatBits(expect), floatBits(got)) << b;
    }
}

TEST(SoftFloat16Arith, AddMulDivMatchCompiler)
{
    // Random half pairs, exhaustive-ish: the operand space is small.
    SplitMix64 rng(142);
    for (int i = 0; i < 300000; ++i) {
        uint16_t ba = static_cast<uint16_t>(rng.next());
        uint16_t bb = static_cast<uint16_t>(rng.next());
        _Float16 na = nativeFromBits(ba);
        _Float16 nb = nativeFromBits(bb);
        sf::Half ha{ba}, hb{bb};

        uint16_t eAdd = nativeBits(static_cast<_Float16>(na + nb));
        uint16_t gAdd = sf::add16(ha, hb).bits;
        if (isNan16(eAdd))
            ASSERT_TRUE(isNan16(gAdd)) << ba << " " << bb;
        else
            ASSERT_EQ(eAdd, gAdd) << ba << " " << bb;

        uint16_t eMul = nativeBits(static_cast<_Float16>(na * nb));
        uint16_t gMul = sf::mul16(ha, hb).bits;
        if (isNan16(eMul))
            ASSERT_TRUE(isNan16(gMul)) << ba << " " << bb;
        else
            ASSERT_EQ(eMul, gMul) << ba << " " << bb;

        uint16_t eDiv = nativeBits(static_cast<_Float16>(na / nb));
        uint16_t gDiv = sf::div16(ha, hb).bits;
        if (isNan16(eDiv))
            ASSERT_TRUE(isNan16(gDiv)) << ba << " " << bb;
        else
            ASSERT_EQ(eDiv, gDiv) << ba << " " << bb;
    }
}

TEST(SoftFloat16Cost, CheaperThanBinary32)
{
    CountingSink s16, s32;
    sf::Half a = sf::toF16(1.25f);
    sf::Half b = sf::toF16(2.5f);
    for (int i = 0; i < 100; ++i) {
        sf::add16(a, b, &s16);
        sf::mul16(a, b, &s16);
        sf::add(1.25f, 2.5f, &s32);
        sf::mul(1.25f, 2.5f, &s32);
    }
    EXPECT_LT(s16.total(), 0.8 * s32.total());
}

TEST(LLut16, AccuracyFloorsNearHalfGrid)
{
    using transpim::LLut16;
    using transpim::Placement;
    constexpr double kTwoPi = 6.283185307179586;
    transpim::TableFn sine = [](double x) { return std::sin(x); };

    double prev = 1.0;
    double floorRmse = 0.0;
    for (uint32_t log2n : {8u, 10u, 12u, 14u}) {
        LLut16 lut(sine, 0.0, kTwoPi, 1u << log2n, true,
                   Placement::Host);
        ErrorAccumulator acc;
        SplitMix64 rng(143);
        for (int i = 0; i < 3000; ++i) {
            float x = rng.nextFloat(0.0f, (float)kTwoPi);
            acc.add(lut.eval(x, nullptr), std::sin((double)x));
        }
        double rmse = acc.stats().rmse;
        EXPECT_LE(rmse, prev * 1.1) << log2n;
        prev = rmse;
        floorRmse = rmse;
    }
    // The half grid (2^-11 ~ 5e-4) bounds the floor.
    EXPECT_LT(floorRmse, 5e-4);
    EXPECT_GT(floorRmse, 5e-6);
}

TEST(LLut16, HalvesTheMemory)
{
    using transpim::LLut;
    using transpim::LLut16;
    using transpim::Placement;
    transpim::TableFn sine = [](double x) { return std::sin(x); };
    LLut f32(sine, 0.0, 6.2832, 4096, true, Placement::Host);
    LLut16 f16(sine, 0.0, 6.2832, 4096, true, Placement::Host);
    EXPECT_EQ(f32.memoryBytes(), 2 * f16.memoryBytes());
    EXPECT_EQ(f32.densityLog2(), f16.densityLog2());
}

} // namespace
} // namespace tpl
