/**
 * @file
 * Range reduction / extension tests (the operations behind Figure 8).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "transpim/range.h"

namespace tpl {
namespace transpim {
namespace {

constexpr double kTwoPi = 6.283185307179586;

TEST(ReduceTwoPi, MapsIntoPeriod)
{
    SplitMix64 rng(61);
    for (int i = 0; i < 20000; ++i) {
        float x = rng.nextFloat(-100.0f, 100.0f);
        float r = reduceTwoPi(x, nullptr);
        EXPECT_GE(r, 0.0f) << x;
        EXPECT_LT(r, (float)kTwoPi * 1.0001f) << x;
        // sin must be preserved (up to reduction rounding).
        EXPECT_NEAR(std::sin((double)x), std::sin((double)r), 2e-4) << x;
    }
}

TEST(ReduceTwoPi, IdentityInRange)
{
    for (float x : {0.0f, 1.0f, 3.0f, 6.28f}) {
        EXPECT_NEAR(x, reduceTwoPi(x, nullptr), 1e-6);
    }
}

TEST(ReduceQuadrant, QuadrantsAndResiduals)
{
    auto q0 = reduceQuadrant(0.5f, nullptr);
    EXPECT_EQ(0, q0.q);
    EXPECT_FLOAT_EQ(0.5f, q0.r);

    auto q1 = reduceQuadrant(2.0f, nullptr);
    EXPECT_EQ(1, q1.q);
    EXPECT_NEAR(2.0 - M_PI_2, q1.r, 1e-6);

    auto q2 = reduceQuadrant(3.5f, nullptr);
    EXPECT_EQ(2, q2.q);
    EXPECT_NEAR(3.5 - M_PI, q2.r, 1e-6);

    auto q3 = reduceQuadrant(5.5f, nullptr);
    EXPECT_EQ(3, q3.q);
    EXPECT_NEAR(5.5 - M_PI - M_PI_2, q3.r, 1e-6);
}

TEST(ReduceQuadrant, SinIdentityHolds)
{
    SplitMix64 rng(62);
    for (int i = 0; i < 20000; ++i) {
        float x = rng.nextFloat(0.0f, (float)kTwoPi);
        auto qr = reduceQuadrant(x, nullptr);
        double s;
        switch (qr.q) {
          case 0: s = std::sin((double)qr.r); break;
          case 1: s = std::cos((double)qr.r); break;
          case 2: s = -std::sin((double)qr.r); break;
          default: s = -std::cos((double)qr.r); break;
        }
        EXPECT_NEAR(std::sin((double)x), s, 1e-5) << x;
    }
}

TEST(SplitExp, ReconstructsExp)
{
    SplitMix64 rng(63);
    for (int i = 0; i < 20000; ++i) {
        float x = rng.nextFloat(-20.0f, 20.0f);
        ExpSplit s = splitExp(x, nullptr);
        EXPECT_GE(s.r, -1e-5f) << x;
        EXPECT_LT(s.r, 0.6932f) << x;
        double recon = std::ldexp(std::exp((double)s.r), s.k);
        EXPECT_NEAR(std::exp((double)x), recon,
                    std::exp((double)x) * 1e-5)
            << x;
    }
}

TEST(SplitLog, ExactMantissaExponent)
{
    SplitMix64 rng(64);
    for (int i = 0; i < 20000; ++i) {
        float x = rng.nextFloat(1e-3f, 1e3f);
        LogSplit s = splitLog(x, nullptr);
        EXPECT_GE(s.m, 1.0f);
        EXPECT_LT(s.m, 2.0f);
        // The split is exact bit surgery.
        EXPECT_EQ((double)x, std::ldexp((double)s.m, s.k)) << x;
    }
}

TEST(SplitLog, SubnormalInput)
{
    float sub = 1e-40f; // subnormal
    LogSplit s = splitLog(sub, nullptr);
    EXPECT_GE(s.m, 1.0f);
    EXPECT_LT(s.m, 2.0f);
    EXPECT_NEAR(std::log((double)sub),
                std::log((double)s.m) + s.k * std::log(2.0), 1e-5);
}

TEST(SplitSqrt, MantissaInHalfToTwo)
{
    SplitMix64 rng(65);
    for (int i = 0; i < 20000; ++i) {
        float x = rng.nextFloat(1e-6f, 1e6f);
        SqrtSplit s = splitSqrt(x, nullptr);
        EXPECT_GE(s.m, 0.5f) << x;
        EXPECT_LT(s.m, 2.0f) << x;
        // x = m * 4^k exactly.
        EXPECT_EQ((double)x, std::ldexp((double)s.m, 2 * s.k)) << x;
    }
}

TEST(SplitSqrt, VectoringRatioWithinConvergence)
{
    // The whole point of [0.5, 2): the hyperbolic-vectoring ratio
    // (m - 1/4)/(m + 1/4) stays below tanh(1.118).
    SplitMix64 rng(66);
    for (int i = 0; i < 5000; ++i) {
        float x = rng.nextFloat(1e-6f, 1e6f);
        SqrtSplit s = splitSqrt(x, nullptr);
        double ratio = (s.m - 0.25) / (s.m + 0.25);
        EXPECT_LT(std::abs(std::atanh(ratio)), 1.118) << x;
    }
}

TEST(ReduceTwoPiFixed, ConditionalWrap)
{
    Fixed in = Fixed::fromDouble(7.0); // > 2*pi
    Fixed out = reduceTwoPiFixed(in, nullptr);
    EXPECT_NEAR(7.0 - kTwoPi, out.toDouble(), 1e-7);
    Fixed neg = Fixed::fromDouble(-1.0);
    EXPECT_NEAR(kTwoPi - 1.0, reduceTwoPiFixed(neg, nullptr).toDouble(),
                1e-7);
    Fixed ok = Fixed::fromDouble(3.0);
    EXPECT_EQ(ok.raw(), reduceTwoPiFixed(ok, nullptr).raw());
}

TEST(RangeCosts, OrderingMatchesFigure8)
{
    // Figure 8 shape: trig reduction (float mul/floor chain) is the
    // most expensive, exp split close behind, log and sqrt splits are
    // near-free bit surgery.
    CountingSink sinS, expS, logS, sqrtS;
    for (int i = 0; i < 100; ++i) {
        reduceTwoPi(50.0f + i, &sinS);
        splitExp(5.0f + i * 0.1f, &expS);
        splitLog(3.0f + i, &logS);
        splitSqrt(3.0f + i, &sqrtS);
    }
    EXPECT_GT(sinS.total(), expS.total() / 2);
    EXPECT_GT(expS.total(), 10 * logS.total());
    EXPECT_GT(expS.total(), 10 * sqrtS.total());
    EXPECT_LT(logS.total() / 100, 30u);
    EXPECT_LT(sqrtS.total() / 100, 30u);
}

} // namespace
} // namespace transpim
} // namespace tpl
