/**
 * @file
 * pimcheck tests: CFG construction, every static-verifier diagnostic
 * kind (one minimal trigger and one near-miss that must stay clean
 * per pass), the runtime sanitizer (shadow WRAM, bounds, DMA
 * legality, tasklet races), sanitizer determinism (modeled statistics
 * must be bit-identical with and without it), and cleanliness of the
 * shipped hand-written L-LUT / CORDIC kernels under both layers.
 */

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "pimsim/analysis/cfg.h"
#include "pimsim/analysis/loops.h"
#include "pimsim/analysis/sanitizer.h"
#include "pimsim/analysis/verify.h"
#include "pimsim/isa.h"
#include "transpim/cordic.h"
#include "transpim/fuzzy_lut.h"

#include "isa_kernels.h"

namespace tpl {
namespace sim {
namespace {

using check::CheckConfig;
using check::CheckKind;
using check::countOf;
using check::Diagnostic;
using check::hasErrors;
using check::Sanitizer;
using check::Severity;
using testkernels::kCordicKernel;
using testkernels::kLLutKernel;
using testkernels::substConst;

std::vector<Diagnostic>
verifySource(const std::string& source)
{
    return check::verify(assemble(source));
}

// ---------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------

TEST(Cfg, BlocksAndEdgesOfALoop)
{
    Program p = assemble(R"(
        movi r1, 0
        movi r2, 5
    loop:
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
    )");
    check::Cfg cfg = check::buildCfg(p);
    ASSERT_EQ(3u, cfg.blocks.size());
    // Entry block falls into the loop body.
    EXPECT_EQ((std::vector<uint32_t>{1}), cfg.blocks[0].succs);
    // Loop body branches to itself or falls into the halt block.
    EXPECT_EQ(2u, cfg.blocks[1].succs.size());
    EXPECT_NE(cfg.blocks[1].succs.end(),
              std::find(cfg.blocks[1].succs.begin(),
                        cfg.blocks[1].succs.end(), 1u));
    // Halt exits.
    EXPECT_EQ((std::vector<uint32_t>{check::Cfg::kExit}),
              cfg.blocks[2].succs);
    EXPECT_TRUE(check::reachableBlocks(cfg)[2]);
    EXPECT_EQ(0u, check::reversePostOrder(cfg).front());
}

TEST(Cfg, RegUseOfStoresAndDma)
{
    Program p = assemble(R"(
        stw  r1, r2, 0
        ldma r3, r4, r5
        halt
    )");
    check::RegUse stw = check::regUse(p.code[0]);
    EXPECT_EQ((1u << 1) | (1u << 2), stw.reads); // value AND address
    EXPECT_EQ(0u, stw.writes);
    check::RegUse dma = check::regUse(p.code[1]);
    EXPECT_EQ((1u << 3) | (1u << 4) | (1u << 5), dma.reads);
    EXPECT_EQ(0u, dma.writes);
}

// ---------------------------------------------------------------------
// Static pass: uninitialized registers
// ---------------------------------------------------------------------

TEST(VerifyUninitRegister, FlagsReadBeforeWrite)
{
    auto diags = verifySource("add r1, r2, r3\nhalt\n");
    EXPECT_EQ(2u, countOf(diags, CheckKind::UninitRegister));
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_EQ(1u, diags.front().line);
}

TEST(VerifyUninitRegister, FlagsPathDependentInit)
{
    // r3 is only written on the fall-through path.
    auto diags = verifySource(R"(
        tid  r1
        movi r2, 0
        beq  r1, r2, skip
        movi r3, 7
    skip:
        add  r4, r3, r2
        halt
    )");
    EXPECT_EQ(1u, countOf(diags, CheckKind::UninitRegister));
}

TEST(VerifyUninitRegister, CleanWhenBothPathsInit)
{
    auto diags = verifySource(R"(
        tid  r1
        movi r2, 0
        beq  r1, r2, other
        movi r3, 7
        jmp  join
    other:
        movi r3, 9
    join:
        add  r4, r3, r2
        halt
    )");
    EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------
// Static pass: branch targets + unreachable code
// ---------------------------------------------------------------------

TEST(VerifyBranches, FlagsWildTargetInHandBuiltProgram)
{
    Program p;
    p.code.push_back({Opcode::Jmp, 0, 0, 0, 99});
    auto diags = check::verify(p);
    EXPECT_EQ(1u, countOf(diags, CheckKind::InvalidBranchTarget));
    EXPECT_TRUE(hasErrors(diags));
}

TEST(VerifyBranches, TrailingExitLabelIsClean)
{
    // "end" is the label *after* the last instruction — a legal exit
    // the assembler produces; must not be flagged.
    auto diags = verifySource("movi r1, 0\njmp end\nend:\n");
    EXPECT_TRUE(diags.empty());
}

TEST(VerifyUnreachable, FlagsSkippedCode)
{
    auto diags = verifySource(R"(
        jmp end
        movi r1, 1
    end:
        halt
    )");
    ASSERT_EQ(1u, countOf(diags, CheckKind::UnreachableCode));
    EXPECT_FALSE(hasErrors(diags)); // warning, not error
}

TEST(VerifyUnreachable, CleanWhenAllBlocksReachable)
{
    auto diags = verifySource(R"(
        tid  r1
        movi r2, 0
        beq  r1, r2, a
        movi r3, 1
        jmp  end
    a:
        movi r3, 2
    end:
        halt
    )");
    EXPECT_EQ(0u, countOf(diags, CheckKind::UnreachableCode));
}

// ---------------------------------------------------------------------
// Static pass: WRAM/MRAM bounds for statically-known addresses
// ---------------------------------------------------------------------

TEST(VerifyBounds, FlagsStaticWramOverflow)
{
    // The exact bug the runtime guard test exercises, caught statically.
    auto diags = verifySource(R"(
        movi r1, 0x7fffffff
        ldw  r2, r1, 0
        halt
    )");
    EXPECT_EQ(1u, countOf(diags, CheckKind::WramOutOfBounds));
}

TEST(VerifyBounds, LastWordOfWramIsClean)
{
    auto diags = verifySource(R"(
        movi r1, 65532
        movi r2, 7
        stw  r2, r1, 0
        halt
    )");
    EXPECT_TRUE(diags.empty());
}

TEST(VerifyBounds, FlagsStaticMramOverflow)
{
    auto diags = verifySource(R"(
        movi r1, 0
        movi r2, 67108864
        movi r3, 16
        ldma r1, r2, r3
        halt
    )");
    EXPECT_EQ(1u, countOf(diags, CheckKind::MramOutOfBounds));
}

TEST(VerifyBounds, LastMramBytesAreClean)
{
    auto diags = verifySource(R"(
        movi r1, 0
        movi r2, 67108848
        movi r3, 16
        ldma r1, r2, r3
        halt
    )");
    EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------------
// Static pass: DMA legality
// ---------------------------------------------------------------------

TEST(VerifyDma, FlagsMisalignedAddresses)
{
    auto diags = verifySource(R"(
        movi r1, 4
        movi r2, 1028
        movi r3, 16
        ldma r1, r2, r3
        halt
    )");
    // Both the WRAM and the MRAM side are off 8-byte alignment.
    EXPECT_EQ(2u, countOf(diags, CheckKind::DmaBadAlignment));
}

TEST(VerifyDma, FlagsBadSizes)
{
    auto diags = verifySource(R"(
        movi r1, 0
        movi r2, 1024
        movi r3, 12
        sdma r1, r2, r3
        movi r3, 4096
        sdma r1, r2, r3
        halt
    )");
    EXPECT_EQ(2u, countOf(diags, CheckKind::DmaBadSize));
}

TEST(VerifyDma, LegalTransferIsClean)
{
    auto diags = verifySource(R"(
        movi r1, 0
        movi r2, 1024
        movi r3, 16
        ldma r1, r2, r3
        sdma r1, r2, r3
        halt
    )");
    EXPECT_TRUE(diags.empty());
}

TEST(VerifyDma, MaxTransferSizeIsTheExactBoundary)
{
    // Exactly maxDmaBytes (2048) is legal...
    auto clean = verifySource(R"(
        movi r1, 0
        movi r2, 1024
        movi r3, 2048
        ldma r1, r2, r3
        halt
    )");
    EXPECT_TRUE(clean.empty());
    // ...one granule (8 bytes) more is not.
    auto diags = verifySource(R"(
        movi r1, 0
        movi r2, 1024
        movi r3, 2056
        ldma r1, r2, r3
        halt
    )");
    EXPECT_EQ(1u, countOf(diags, CheckKind::DmaBadSize));
}

// ---------------------------------------------------------------------
// Static pass: barrier balance
// ---------------------------------------------------------------------

TEST(VerifyBarrier, FlagsTaskletDependentBarrier)
{
    auto diags = verifySource(R"(
        tid  r1
        movi r2, 0
        beq  r1, r2, skip
        barrier
    skip:
        halt
    )");
    EXPECT_GE(countOf(diags, CheckKind::BarrierImbalance), 1u);
    EXPECT_TRUE(hasErrors(diags));
}

TEST(VerifyBarrier, FlagsBarrierInsideDataDependentLoop)
{
    auto diags = verifySource(R"(
        movi r1, 0
        ntask r2
    loop:
        barrier
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
    )");
    EXPECT_GE(countOf(diags, CheckKind::BarrierImbalance), 1u);
}

TEST(VerifyBarrier, BalancedPathsAreClean)
{
    auto diags = verifySource(R"(
        tid  r1
        movi r2, 0
        beq  r1, r2, other
        movi r3, 1
        barrier
        jmp  join
    other:
        movi r3, 2
        barrier
    join:
        barrier
        halt
    )");
    EXPECT_TRUE(diags.empty());
}

TEST(VerifyBarrier, BarrierInsideConstantTripLoopIsClean)
{
    // Loop collapsing proves every tasklet executes the barrier the
    // same (known) number of times; this used to be flagged when the
    // balance check was purely path-based.
    auto diags = verifySource(R"(
        movi r1, 0
        movi r2, 8
    loop:
        bge  r1, r2, done
        barrier
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )");
    EXPECT_TRUE(diags.empty());
}

TEST(VerifyBarrier, TripAnnotationMakesDataDependentLoopCheckable)
{
    const std::string src = R"(
        movi r1, 0
        ntask r2
    loop:
        bge  r1, r2, done   # @trip(4)
        barrier
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )";
    // Without the annotation the loop is uncheckable and flagged.
    std::string bare = src;
    size_t at = bare.find("# @trip(4)");
    ASSERT_NE(std::string::npos, at);
    bare.erase(at, 10);
    EXPECT_GE(countOf(verifySource(bare), CheckKind::BarrierImbalance),
              1u);
    // With it the barrier count is a constant per tasklet: clean.
    check::VerifyOptions opt;
    opt.tripAnnotations = check::parseTripAnnotations(src);
    EXPECT_TRUE(check::verify(assemble(src), opt).empty());
}

TEST(VerifyBarrier, FlagsBarrierInsideBreakLoopEvenWhenAnnotated)
{
    // Counted header (trip would infer as 8) but a tid-dependent
    // break: tasklets leave at different iterations with differing
    // barrier counts, so the loop summary must be refused — the
    // inferred count and even a @trip annotation are only upper
    // bounds here, never an exact per-tasklet trip.
    const std::string src = R"(
        movi r1, 0
        movi r2, 8
        tid  r6
        movi r7, 1
    loop:
        bge  r1, r2, done   # @trip(8)
        beq  r6, r7, done
        barrier
        addi r1, r1, 1
        jmp  loop
    done:
        halt
    )";
    EXPECT_GE(countOf(verifySource(src), CheckKind::BarrierImbalance),
              1u);
    check::VerifyOptions opt;
    opt.tripAnnotations = check::parseTripAnnotations(src);
    EXPECT_GE(countOf(check::verify(assemble(src), opt),
                      CheckKind::BarrierImbalance),
              1u);
}

// ---------------------------------------------------------------------
// Opcode table: single source of truth, cross-checked two ways
// ---------------------------------------------------------------------

TEST(OpcodeTable, AssemblerRoundTripsEveryMnemonic)
{
    // Rebuild an assembly line for every opcode purely from its
    // OpTraits entry and check the assembler decodes it back to the
    // same opcode with operands in the documented fields. A table row
    // whose mnemonic or operand pattern drifts from the assembler
    // cannot pass.
    for (uint32_t c = 0; c < kNumOpcodes; ++c) {
        Opcode op = static_cast<Opcode>(c);
        const OpTraits& tr = opTraits(op);
        ASSERT_EQ(op, tr.op) << "table row " << c << " misindexed";
        std::string ops = tr.operands;
        std::string mn = tr.mnemonic;
        std::string src;
        if (ops == "dab")
            src = mn + " r3, r1, r2\n";
        else if (ops == "dai")
            src = mn + " r3, r1, 5\n";
        else if (ops == "di")
            src = mn + " r3, 77\n";
        else if (ops == "d")
            src = mn + " r3\n";
        else if (ops == "abl")
            src = mn + " r1, r2, end\nhalt\nend: halt\n";
        else if (ops == "l")
            src = mn + " end\nhalt\nend: halt\n";
        else if (ops.empty())
            src = mn + "\n";
        else
            FAIL() << mn << ": unknown operand pattern " << ops;
        Program p = assemble(src);
        ASSERT_FALSE(p.code.empty()) << mn;
        const Instruction& ins = p.code[0];
        EXPECT_EQ(op, ins.op) << mn;
        if (ops.find('d') != std::string::npos) {
            EXPECT_EQ(3, static_cast<int>(ins.rd)) << mn;
        }
        if (ops.find('a') != std::string::npos) {
            EXPECT_EQ(1, static_cast<int>(ins.ra)) << mn;
        }
        if (ops == "dab" || ops == "abl") {
            EXPECT_EQ(2, static_cast<int>(ins.rb)) << mn;
        }
        if (ops == "dai") {
            EXPECT_EQ(5, ins.imm) << mn;
        }
        if (ops == "di") {
            EXPECT_EQ(77, ins.imm) << mn;
        }
        if (ops == "abl" || ops == "l") {
            EXPECT_EQ(2, ins.imm) << mn; // the "end" label
        }
    }
}

namespace probe {

/** Everything a mini-ISA instruction can observably affect. */
struct Observed
{
    std::array<int32_t, 24> regs{};
    std::vector<uint8_t> wram; ///< first 256 bytes
    std::vector<uint8_t> mram; ///< bytes 1024..1151
    bool trapped = false;
};

/** Per-opcode probe operands: base values and their perturbations. */
struct Values
{
    int32_t va, vb, vd, imm;
    int32_t pva, pvb, pvd;
};

Values
valuesFor(Opcode op)
{
    const OpTraits& tr = opTraits(op);
    Values v{0x12345678, 13, 0x5A5A5A5A, 0,
             0x0BADF00D, 7, 0x3C3C3C3C};
    std::string ops = tr.operands;
    if (ops == "dai")
        v.imm = 5;
    if (op == Opcode::Movi)
        v.imm = 77;
    if (tr.condBranch || tr.jump)
        v.imm = 5; // the halt past the marker
    if (tr.condBranch) {
        // 5 vs 5 baseline; the perturbations flip the outcome of
        // every one of the six compare conditions.
        v.va = 5;
        v.vb = 5;
        v.pva = 4;
        v.pvb = 6;
    }
    if (op == Opcode::Mulh) {
        // Large operands so the high word is non-zero and moves
        // under both perturbations.
        v.va = 0x40000000;
        v.vb = 16;
        v.pva = 0x50000000;
        v.pvb = 32;
    }
    if (op == Opcode::Ldw || op == Opcode::Stw) {
        v.va = 64; // WRAM address base (distinct data staged at 72)
        v.pva = 72;
    }
    if (op == Opcode::Ldma || op == Opcode::Sdma) {
        v.vd = 0;    // WRAM address
        v.va = 1024; // MRAM address
        v.vb = 16;   // size
        v.pvd = 8;
        v.pva = 1056;
        v.pvb = 24;
    }
    return v;
}

Observed
run(Opcode op, int32_t va, int32_t vb, int32_t vd, int32_t imm)
{
    // r1=va, r2=vb, r3=vd (sentinel / operand), probe at index 3
    // with rd=3 ra=1 rb=2, then a marker branches can skip, then
    // halt (index 5, the branch target).
    Program p;
    p.code = {
        {Opcode::Movi, 1, 0, 0, va},
        {Opcode::Movi, 2, 0, 0, vb},
        {Opcode::Movi, 3, 0, 0, vd},
        {op, 3, 1, 2, imm},
        {Opcode::Movi, 20, 0, 0, 1},
        {Opcode::Halt, 0, 0, 0, 0},
    };
    p.lines = {1, 2, 3, 4, 5, 6};

    DpuCore dpu;
    // Distinct load targets for ldw at 64 vs 72.
    const uint8_t at64[4] = {1, 2, 3, 4};
    const uint8_t at72[4] = {9, 8, 7, 6};
    dpu.hostWriteWram(64, at64, 4);
    dpu.hostWriteWram(72, at72, 4);
    // DMA source/comparison patterns, distinct between WRAM and MRAM
    // and non-repeating across the probed windows.
    uint8_t wpat[32], mpat[128];
    for (uint32_t i = 0; i < 32; ++i)
        wpat[i] = static_cast<uint8_t>(i * 3 + 1);
    for (uint32_t i = 0; i < 128; ++i)
        mpat[i] = static_cast<uint8_t>(i * 5 + 11);
    dpu.hostWriteWram(0, wpat, 32);
    dpu.hostWriteMram(1024, mpat, 128);

    Observed obs;
    dpu.launch(1, [&](TaskletContext& ctx) {
        try {
            obs.regs = execute(p, ctx).registers;
        } catch (const std::exception&) {
            obs.trapped = true;
        }
    });
    obs.wram.resize(256);
    dpu.hostReadWram(0, obs.wram.data(), 256);
    obs.mram.resize(128);
    dpu.hostReadMram(1024, obs.mram.data(), 128);
    return obs;
}

/** True when the two observations differ anywhere outside the
 * perturbed register itself. */
bool
differsExcept(const Observed& a, const Observed& b, int skipReg)
{
    if (a.trapped != b.trapped || a.wram != b.wram ||
        a.mram != b.mram)
        return true;
    for (int i = 0; i < 24; ++i)
        if (i != skipReg && a.regs[i] != b.regs[i])
            return true;
    return false;
}

} // namespace probe

TEST(OpcodeTable, TraitsMatchInterpreterBehavior)
{
    // For every opcode: run the probe, then perturb each of ra/rb/rd
    // in turn. The observable machine state (registers, WRAM, MRAM)
    // may change under the perturbation *iff* the trait says the
    // operand is read; the destination register changes from its
    // sentinel *iff* the trait says it is written. This pins the
    // OpTraits masks to what the execute() switch actually does, so
    // the verifier's regUse() (derived from the same table) cannot
    // drift from the interpreter.
    for (uint32_t c = 0; c < kNumOpcodes; ++c) {
        Opcode op = static_cast<Opcode>(c);
        const OpTraits& tr = opTraits(op);
        probe::Values v = probe::valuesFor(op);
        probe::Observed base = probe::run(op, v.va, v.vb, v.vd, v.imm);
        ASSERT_FALSE(base.trapped) << tr.mnemonic;
        EXPECT_EQ(tr.writesRd, base.regs[3] != v.vd) << tr.mnemonic;
        EXPECT_EQ(tr.readsRa,
                  probe::differsExcept(
                      base, probe::run(op, v.pva, v.vb, v.vd, v.imm),
                      1))
            << tr.mnemonic << ": ra role disagrees with execute()";
        EXPECT_EQ(tr.readsRb,
                  probe::differsExcept(
                      base, probe::run(op, v.va, v.pvb, v.vd, v.imm),
                      2))
            << tr.mnemonic << ": rb role disagrees with execute()";
        EXPECT_EQ(tr.readsRd,
                  probe::differsExcept(
                      base, probe::run(op, v.va, v.vb, v.pvd, v.imm),
                      3))
            << tr.mnemonic << ": rd role disagrees with execute()";
    }
}

// ---------------------------------------------------------------------
// Shipped kernels must pass the static verifier
// ---------------------------------------------------------------------

std::string
substitutedLLut()
{
    // Constants as FixedLLutKernelMatchesHighLevel binds them.
    std::string src = kLLutKernel;
    src = substConst(src, "@N", 256);
    src = substConst(src, "@PRAW", 0);
    src = substConst(src, "@MASK", (1 << 17) - 1);
    src = substConst(src, "@SHIFTC", 32 - 17);
    src = substConst(src, "@SHIFT", 17);
    src = substConst(src, "@INP", 8196);
    src = substConst(src, "@TBLN", 4);
    src = substConst(src, "@TBL", 0);
    src = substConst(src, "@OUT", 8196 + 256 * 4);
    return src;
}

TEST(VerifyShippedKernels, LLutAndCordicAreClean)
{
    EXPECT_TRUE(verifySource(substitutedLLut()).empty());

    std::string cordic = kCordicKernel;
    cordic = substConst(cordic, "@Z0", 0x1000000);
    cordic = substConst(cordic, "@INVGAIN", 0x26dd3b6a);
    cordic = substConst(cordic, "@NITER", 24);
    cordic = substConst(cordic, "@ATBL", 0);
    EXPECT_TRUE(verifySource(cordic).empty());
}

TEST(VerifyShippedKernels, IsaTestProgramsAreClean)
{
    const char* sources[] = {
        "movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\nhalt\n",
        "loop: jmp loop\n",
        R"(
            movi r1, 0
            movi r2, 10
            movi r3, 0
        loop:
            bge  r1, r2, done
            slli r4, r1, 2
            ldw  r5, r4, 0
            add  r3, r3, r5
            addi r1, r1, 1
            jmp  loop
        done:
            movi r6, 0
            stw  r3, r6, 40
            halt
        )",
    };
    for (const char* src : sources)
        EXPECT_TRUE(verifySource(src).empty()) << src;
}

// ---------------------------------------------------------------------
// Runtime sanitizer
// ---------------------------------------------------------------------

TEST(SanitizerRuntime, OffByDefault)
{
    DpuCore dpu;
    EXPECT_EQ(nullptr, dpu.sanitizer());
}

ExecResult
runSanitized(const std::string& source, DpuCore& dpu, Sanitizer& san,
             uint32_t tasklets = 1)
{
    Program p = assemble(source);
    dpu.setSanitizer(&san);
    ExecResult last;
    dpu.launch(tasklets, [&](TaskletContext& ctx) {
        last = execute(p, ctx);
    });
    return last;
}

TEST(SanitizerRuntime, FlagsUninitializedWramLoad)
{
    DpuCore dpu;
    Sanitizer san(dpu);
    runSanitized(R"(
        movi r1, 128
        ldw  r2, r1, 0
        halt
    )",
                 dpu, san);
    EXPECT_EQ(1u, countOf(san.diagnostics(),
                          CheckKind::UninitWramLoad));
}

TEST(SanitizerRuntime, HostStagedWramIsClean)
{
    DpuCore dpu;
    Sanitizer san(dpu);
    dpu.setSanitizer(&san);
    int32_t v = 42;
    dpu.hostWriteWram(128, &v, 4);
    runSanitized(R"(
        movi r1, 128
        ldw  r2, r1, 0
        halt
    )",
                 dpu, san);
    EXPECT_TRUE(san.clean());
}

TEST(SanitizerRuntime, StoreThenLoadIsClean)
{
    DpuCore dpu;
    Sanitizer san(dpu);
    runSanitized(R"(
        movi r1, 64
        movi r2, 7
        stw  r2, r1, 0
        ldw  r3, r1, 0
        halt
    )",
                 dpu, san);
    EXPECT_TRUE(san.clean());
}

TEST(SanitizerRuntime, FlagsCrossTaskletRace)
{
    DpuCore dpu;
    Sanitizer san(dpu);
    runSanitized(R"(
        movi r1, 0
        tid  r2
        stw  r2, r1, 0
        halt
    )",
                 dpu, san, 2);
    EXPECT_GE(countOf(san.diagnostics(), CheckKind::TaskletRace), 1u);
}

TEST(SanitizerRuntime, BarrierSynchronizesPublication)
{
    // Tasklet 0 publishes a value, everyone reads it after a barrier:
    // the canonical legal pattern — must be race-free.
    const char* src = R"(
        tid  r1
        movi r2, 0
        bne  r1, r2, wait
        movi r3, 123
        stw  r3, r2, 0
    wait:
        barrier
        ldw  r4, r2, 0
        halt
    )";
    DpuCore dpu;
    Sanitizer san(dpu);
    ExecResult last = runSanitized(src, dpu, san, 4);
    EXPECT_TRUE(san.clean()) << check::format(san.diagnostics().front());
    EXPECT_EQ(123, last.registers[4]);

    // ...and the same program *without* the barrier races.
    std::string racy = src;
    size_t pos = racy.find("barrier");
    racy.replace(pos, 7, "movi r5, 0"); // keep instruction count
    DpuCore dpu2;
    Sanitizer san2(dpu2);
    runSanitized(racy, dpu2, san2, 4);
    EXPECT_GE(countOf(san2.diagnostics(), CheckKind::TaskletRace), 1u);
}

TEST(SanitizerRuntime, DisjointTidIndexedWritesAreClean)
{
    DpuCore dpu;
    Sanitizer san(dpu);
    runSanitized(R"(
        tid  r1
        slli r2, r1, 2
        stw  r1, r2, 0
        ldw  r3, r2, 0
        halt
    )",
                 dpu, san, 8);
    EXPECT_TRUE(san.clean());
}

TEST(SanitizerRuntime, RecordsWramBoundsBeforeTrap)
{
    DpuCore dpu;
    Sanitizer san(dpu);
    EXPECT_THROW(runSanitized(R"(
        movi r1, 0x7fffffff
        ldw  r2, r1, 0
        halt
    )",
                              dpu, san),
                 std::runtime_error);
    EXPECT_EQ(1u, countOf(san.diagnostics(),
                          CheckKind::WramOutOfBounds));
}

TEST(SanitizerRuntime, FlagsIllegalDmaShapes)
{
    DpuCore dpu;
    Sanitizer san(dpu);
    runSanitized(R"(
        movi r1, 0
        movi r2, 1028
        movi r3, 12
        ldma r1, r2, r3
        halt
    )",
                 dpu, san);
    EXPECT_EQ(1u, countOf(san.diagnostics(), CheckKind::DmaBadSize));
    EXPECT_EQ(1u, countOf(san.diagnostics(),
                          CheckKind::DmaBadAlignment));
}

TEST(SanitizerRuntime, RecordsMramBoundsBeforeTrap)
{
    DpuCore dpu;
    Sanitizer san(dpu);
    EXPECT_THROW(runSanitized(R"(
        movi r1, 0
        movi r2, 67108864
        movi r3, 16
        ldma r1, r2, r3
        halt
    )",
                              dpu, san),
                 std::out_of_range);
    EXPECT_EQ(1u, countOf(san.diagnostics(),
                          CheckKind::MramOutOfBounds));
}

// ---------------------------------------------------------------------
// Determinism: the sanitizer must not change modeled statistics
// ---------------------------------------------------------------------

void
expectSameStats(const LaunchStats& a, const LaunchStats& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.maxTaskletWork, b.maxTaskletWork);
    EXPECT_EQ(a.dmaEngineCycles, b.dmaEngineCycles);
    EXPECT_EQ(a.dmaBytes, b.dmaBytes);
    EXPECT_EQ(a.tasklets, b.tasklets);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
}

TEST(SanitizerDeterminism, StatsIdenticalWithAndWithoutChecks)
{
    // A program covering ALU, WRAM traffic, DMA and a barrier.
    const char* src = R"(
        movi r1, 0       # wram addr
        movi r2, 1024    # mram addr
        movi r3, 16      # bytes
        ldma r1, r2, r3
        barrier
        ldw  r4, r1, 8
        addi r4, r4, 1
        stw  r4, r1, 8
        movi r5, 2048
        sdma r1, r5, r3
        halt
    )";
    Program p = assemble(src);
    std::vector<int32_t> data{11, 22, 33, 44};

    auto run = [&](bool sanitize) {
        DpuCore dpu;
        Sanitizer san(dpu);
        if (sanitize)
            dpu.setSanitizer(&san);
        dpu.hostWriteMram(1024, data.data(), 16);
        dpu.launch(4, [&](TaskletContext& ctx) { execute(p, ctx); });
        return dpu.lastLaunch();
    };
    expectSameStats(run(false), run(true));
}

TEST(SanitizerDeterminism, StatsIdenticalEvenWhenDiagnosticsFire)
{
    const char* racy = R"(
        movi r1, 0
        tid  r2
        stw  r2, r1, 0
        ldw  r3, r1, 4
        halt
    )";
    Program p = assemble(racy);
    auto run = [&](bool sanitize) {
        DpuCore dpu;
        Sanitizer san(dpu);
        if (sanitize)
            dpu.setSanitizer(&san);
        dpu.launch(3, [&](TaskletContext& ctx) { execute(p, ctx); });
        if (sanitize) {
            EXPECT_FALSE(san.clean());
        }
        return dpu.lastLaunch();
    };
    expectSameStats(run(false), run(true));
}

// ---------------------------------------------------------------------
// Shipped kernels run sanitizer-clean end to end
// ---------------------------------------------------------------------

TEST(SanitizedKernels, FixedLLutRunsClean)
{
    using transpim::LLutFixed;
    using transpim::Placement;
    constexpr double kTwoPi = 6.283185307179586;
    constexpr uint32_t n = 256;

    LLutFixed lut([](double x) { return std::sin(x); }, 0.0, kTwoPi,
                  2048, true, Placement::Host);
    int shift = Fixed::fracBits - lut.densityLog2();

    DpuCore dpu;
    Sanitizer san(dpu);
    dpu.setSanitizer(&san);

    const auto& entries = lut.hostEntries();
    uint32_t tblBytes = static_cast<uint32_t>(entries.size()) * 4;
    dpu.hostWriteWram(0, entries.data(), tblBytes);
    uint32_t inp = tblBytes;
    uint32_t out = inp + n * 4;

    std::vector<int32_t> inputs(n);
    for (uint32_t i = 0; i < n; ++i) {
        double x = kTwoPi * (i + 0.37) / n;
        inputs[i] = Fixed::fromDouble(x).raw();
    }
    dpu.hostWriteWram(inp, inputs.data(), n * 4);

    std::string src = kLLutKernel;
    src = substConst(src, "@N", n);
    src = substConst(src, "@PRAW", 0);
    src = substConst(src, "@MASK", (1 << shift) - 1);
    src = substConst(src, "@SHIFTC", 32 - shift);
    src = substConst(src, "@SHIFT", shift);
    src = substConst(src, "@INP", inp);
    src = substConst(src, "@TBLN", 4);
    src = substConst(src, "@TBL", 0);
    src = substConst(src, "@OUT", out);
    Program prog = assemble(src);

    EXPECT_TRUE(check::verify(prog).empty());
    dpu.launch(1, [&](TaskletContext& ctx) { execute(prog, ctx); });
    EXPECT_TRUE(san.clean())
        << check::format(san.diagnostics().front());
}

TEST(SanitizedKernels, FixedCordicRunsClean)
{
    using transpim::CordicFixedEngine;
    using transpim::CordicMode;
    using transpim::Placement;
    constexpr uint32_t iters = 24;

    CordicFixedEngine eng(CordicMode::Circular, iters, Placement::Host);

    DpuCore dpu;
    Sanitizer san(dpu);
    dpu.setSanitizer(&san);

    std::vector<int32_t> angles(iters);
    for (uint32_t k = 0; k < iters; ++k) {
        angles[k] = Fixed::fromDouble(
                        std::atan(std::ldexp(1.0, -(int)k)))
                        .raw();
    }
    dpu.hostWriteWram(0, angles.data(), iters * 4);

    std::string src = kCordicKernel;
    src = substConst(src, "@Z0", Fixed::fromDouble(0.5).raw());
    src = substConst(src, "@INVGAIN", eng.invGain().raw());
    src = substConst(src, "@NITER", iters);
    src = substConst(src, "@ATBL", 0);
    Program prog = assemble(src);

    EXPECT_TRUE(check::verify(prog).empty());
    dpu.launch(1, [&](TaskletContext& ctx) { execute(prog, ctx); });
    EXPECT_TRUE(san.clean())
        << check::format(san.diagnostics().front());
}

// ---------------------------------------------------------------------
// Diagnostic plumbing
// ---------------------------------------------------------------------

TEST(Diagnostics, FormatIsStable)
{
    Diagnostic d{CheckKind::UninitRegister, Severity::Error, 12,
                 "register r5 may be read before initialization"};
    EXPECT_EQ("line 12: error: register r5 may be read before "
              "initialization [uninit-register]",
              check::format(d));
}

TEST(Diagnostics, BarrierChargesOneInstructionSlot)
{
    DpuCore dpu;
    Program p = assemble("barrier\nhalt\n");
    ExecResult res;
    dpu.launch(1,
               [&](TaskletContext& ctx) { res = execute(p, ctx); });
    EXPECT_EQ(2u, res.instructionsExecuted);
    EXPECT_EQ(2u, dpu.lastLaunch().totalInstructions);
}

} // namespace
} // namespace sim
} // namespace tpl
