/**
 * @file
 * pimtrace: run one (function, method) evaluator configuration on the
 * simulator with the obs layer armed and emit
 *
 *   - a Chrome trace-event JSON (Perfetto / chrome://tracing),
 *   - a metrics-registry JSON dump, and
 *   - a human-readable text profile on stdout: top-N cost centers by
 *     instruction class, per-tasklet utilization, and a DMA bandwidth
 *     summary.
 *
 *   pimtrace [options]
 *
 * Options:
 *   --function NAME   sin, cos, tanh, exp, log, sqrt, gelu, ... (default sin)
 *   --method NAME     llut, mlut, dlut, dllut, llut-fixed, cordic,
 *                     cordic-fixed, cordic-lut, poly (default llut)
 *   --elements N      input elements (default 16384)
 *   --tasklets N      tasklets (default 16)
 *   --log2-entries N  LUT entry budget (default 12)
 *   --iterations N    CORDIC iterations (default 24)
 *   --placement P     wram | mram (default wram)
 *   --no-interp       disable LUT interpolation
 *   --trace PATH      Chrome trace output (default pimtrace.trace.json,
 *                     "" disables)
 *   --metrics PATH    metrics JSON output (default pimtrace.metrics.json,
 *                     "" disables)
 *   --top N           cost centers to print (default all)
 *   --quantiles       print p50/p90/p99 for every histogram in the
 *                     metrics registry (deterministic log-linear
 *                     quantiles, relative error <= 2^-sub_bucket_bits)
 *
 * Exit status: 0 on success, 1 when the configuration is infeasible
 * (tables do not fit), 2 on usage errors.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "pimsim/obs/metrics.h"
#include "pimsim/obs/trace.h"
#include "transpim/harness.h"

namespace {

using namespace tpl;
using namespace tpl::transpim;

void
usage()
{
    std::cerr
        << "usage: pimtrace [--function NAME] [--method NAME]\n"
           "                [--elements N] [--tasklets N]"
           " [--log2-entries N]\n"
           "                [--iterations N] [--placement wram|mram]"
           " [--no-interp]\n"
           "                [--trace PATH] [--metrics PATH] [--top N]"
           " [--quantiles]\n";
}

const std::map<std::string, Function>&
functionTable()
{
    static const std::map<std::string, Function> table = {
        {"sin", Function::Sin},       {"cos", Function::Cos},
        {"tan", Function::Tan},       {"sinh", Function::Sinh},
        {"cosh", Function::Cosh},     {"tanh", Function::Tanh},
        {"exp", Function::Exp},       {"log", Function::Log},
        {"sqrt", Function::Sqrt},     {"gelu", Function::Gelu},
        {"sigmoid", Function::Sigmoid}, {"cndf", Function::Cndf},
        {"atan", Function::Atan},     {"asin", Function::Asin},
        {"acos", Function::Acos},     {"atanh", Function::Atanh},
        {"log2", Function::Log2},     {"log10", Function::Log10},
        {"exp2", Function::Exp2},     {"rsqrt", Function::Rsqrt},
        {"erf", Function::Erf},       {"silu", Function::Silu},
        {"softplus", Function::Softplus},
    };
    return table;
}

const std::map<std::string, Method>&
methodTable()
{
    static const std::map<std::string, Method> table = {
        {"cordic", Method::Cordic},
        {"cordic-fixed", Method::CordicFixed},
        {"cordic-lut", Method::CordicLut},
        {"mlut", Method::MLut},
        {"llut", Method::LLut},
        {"llut-fixed", Method::LLutFixed},
        {"dlut", Method::DLut},
        {"dllut", Method::DlLut},
        {"poly", Method::Poly},
    };
    return table;
}

bool
parseU32(const std::string& text, uint32_t& out)
{
    try {
        size_t pos = 0;
        unsigned long v = std::stoul(text, &pos, 0);
        if (pos != text.size() || v > UINT32_MAX)
            return false;
        out = static_cast<uint32_t>(v);
        return true;
    } catch (...) {
        return false;
    }
}

std::string
percent(uint64_t part, uint64_t whole)
{
    char buf[16];
    double pct = whole ? 100.0 * static_cast<double>(part) /
                             static_cast<double>(whole)
                       : 0.0;
    std::snprintf(buf, sizeof buf, "%5.1f%%", pct);
    return buf;
}

} // namespace

int
main(int argc, char** argv)
{
    Function function = Function::Sin;
    MethodSpec spec;
    MicrobenchOptions opts;
    std::string tracePath = "pimtrace.trace.json";
    std::string metricsPath = "pimtrace.metrics.json";
    uint32_t topN = UINT32_MAX;
    bool quantiles = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        auto u32Arg = [&](uint32_t& out) {
            if (!parseU32(value(), out)) {
                usage();
                std::exit(2);
            }
        };
        if (arg == "--function") {
            std::string name = value();
            auto it = functionTable().find(name);
            if (it == functionTable().end()) {
                std::cerr << "pimtrace: unknown function '" << name
                          << "'\n";
                return 2;
            }
            function = it->second;
        } else if (arg == "--method") {
            std::string name = value();
            auto it = methodTable().find(name);
            if (it == methodTable().end()) {
                std::cerr << "pimtrace: unknown method '" << name
                          << "'\n";
                return 2;
            }
            spec.method = it->second;
        } else if (arg == "--elements") {
            u32Arg(opts.elements);
        } else if (arg == "--tasklets") {
            u32Arg(opts.tasklets);
        } else if (arg == "--log2-entries") {
            u32Arg(spec.log2Entries);
        } else if (arg == "--iterations") {
            u32Arg(spec.iterations);
        } else if (arg == "--placement") {
            std::string p = value();
            if (p == "wram") {
                spec.placement = Placement::Wram;
            } else if (p == "mram") {
                spec.placement = Placement::Mram;
            } else {
                std::cerr << "pimtrace: unknown placement '" << p
                          << "'\n";
                return 2;
            }
        } else if (arg == "--no-interp") {
            spec.interpolated = false;
        } else if (arg == "--trace") {
            tracePath = value();
        } else if (arg == "--metrics") {
            metricsPath = value();
        } else if (arg == "--top") {
            u32Arg(topN);
        } else if (arg == "--quantiles") {
            quantiles = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "pimtrace: unknown option '" << arg << "'\n";
            usage();
            return 2;
        }
    }

    if (!FunctionEvaluator::supports(function, spec)) {
        std::cerr << "pimtrace: unsupported combination "
                  << functionName(function) << " / "
                  << methodLabel(spec) << "\n";
        return 1;
    }

    obs::Tracer::global().setEnabled(true);
    obs::Registry::global().setEnabled(true);

    MicrobenchResult res = runMicrobench(function, spec, opts);
    if (!res.feasible) {
        std::cerr << "pimtrace: configuration infeasible (tables do"
                     " not fit the PIM core)\n";
        return 1;
    }

    const sim::LaunchStats& launch = res.launch;
    const sim::CostModel model; // defaults match the harness's core

    std::cout << "== pimtrace: " << functionName(function) << " / "
              << methodLabel(spec) << "\n";
    std::cout << "   elements " << res.elements << ", tasklets "
              << res.tasklets << ", " << res.cyclesPerElement
              << " cycles/element, RMSE " << res.error.rmse << "\n\n";

    // ---- Top cost centers: the exact cycle partition. -------------
    struct CostCenter
    {
        std::string name;
        uint64_t cycles;
    };
    std::vector<CostCenter> centers;
    for (int c = 0; c < numInstrClasses; ++c)
        if (launch.classInstructions[c])
            centers.push_back(
                {instrClassName(static_cast<InstrClass>(c)),
                 launch.classInstructions[c]});
    if (launch.stallCycles)
        centers.push_back({"stall (latency/DMA bound)",
                           launch.stallCycles});
    std::sort(centers.begin(), centers.end(),
              [](const CostCenter& a, const CostCenter& b) {
                  return a.cycles > b.cycles;
              });
    std::cout << "-- cost centers (" << launch.cycles
              << " modeled cycles)\n";
    uint32_t shown = 0;
    for (const CostCenter& cc : centers) {
        if (shown++ >= topN)
            break;
        std::printf("   %-26s %12llu  %s\n", cc.name.c_str(),
                    static_cast<unsigned long long>(cc.cycles),
                    percent(cc.cycles, launch.cycles).c_str());
    }

    // ---- High-level operation mix. --------------------------------
    std::cout << "\n-- operation mix\n";
    for (int o = 0; o < numOpClasses; ++o)
        if (launch.opCounts[o])
            std::printf("   %-26s %12llu\n",
                        opClassSlug(static_cast<OpClass>(o)),
                        static_cast<unsigned long long>(
                            launch.opCounts[o]));

    // ---- Per-tasklet utilization. ---------------------------------
    uint64_t maxInstr = 0;
    for (const auto& ts : launch.perTasklet)
        maxInstr = std::max(maxInstr, ts.instructions);
    std::cout << "\n-- per-tasklet utilization (vs busiest tasklet)\n";
    for (size_t t = 0; t < launch.perTasklet.size(); ++t) {
        const auto& ts = launch.perTasklet[t];
        std::printf("   tasklet %2zu  %12llu instr  %10llu dma-stall"
                    "  %s\n",
                    t,
                    static_cast<unsigned long long>(ts.instructions),
                    static_cast<unsigned long long>(
                        ts.dmaStallCycles),
                    percent(ts.instructions, maxInstr).c_str());
    }

    // ---- DMA bandwidth summary. -----------------------------------
    std::cout << "\n-- MRAM<->WRAM DMA\n";
    std::printf("   bytes moved       %12llu\n",
                static_cast<unsigned long long>(launch.dmaBytes));
    std::printf("   engine cycles     %12llu  (%s of total)\n",
                static_cast<unsigned long long>(
                    launch.dmaEngineCycles),
                percent(launch.dmaEngineCycles, launch.cycles)
                    .c_str());
    if (launch.dmaEngineCycles) {
        double bytesPerCycle =
            static_cast<double>(launch.dmaBytes) /
            static_cast<double>(launch.dmaEngineCycles);
        std::printf("   achieved          %12.3f bytes/cycle"
                    "  (%.2f GB/s at %.0f MHz)\n",
                    bytesPerCycle,
                    bytesPerCycle * model.frequencyHz * 1e-9,
                    model.frequencyHz * 1e-6);
    }
    std::printf("   table memory      %12u bytes\n", res.memoryBytes);
    std::printf("   setup             %12.6f s host gen"
                " + %.6f s transfer\n",
                res.hostGenSeconds, res.transferSeconds);

    // ---- Registry histogram quantiles. ----------------------------
    if (quantiles) {
        const obs::Registry& reg = obs::Registry::global();
        std::vector<std::string> names = reg.histogramNames();
        std::cout << "\n-- histogram quantiles";
        if (names.empty()) {
            std::cout << " (none recorded)\n";
        } else {
            // All current registry histograms share the default
            // resolution; the bound is per-histogram regardless.
            std::cout << "\n";
            for (const std::string& name : names) {
                const obs::Histogram* h = reg.findHistogram(name);
                if (!h || h->count() == 0)
                    continue;
                std::printf("   %-32s n=%-8llu p50=%-10llu"
                            " p90=%-10llu p99=%-10llu max=%llu\n",
                            name.c_str(),
                            static_cast<unsigned long long>(
                                h->count()),
                            static_cast<unsigned long long>(
                                h->quantile(0.50)),
                            static_cast<unsigned long long>(
                                h->quantile(0.90)),
                            static_cast<unsigned long long>(
                                h->quantile(0.99)),
                            static_cast<unsigned long long>(
                                h->maxValue()));
                std::printf("   %-32s relative error <= 2^-%u\n", "",
                            h->subBucketBits());
            }
        }
    }

    // ---- File outputs. --------------------------------------------
    if (!tracePath.empty()) {
        if (!obs::Tracer::global().writeChromeJson(tracePath)) {
            std::cerr << "pimtrace: cannot write '" << tracePath
                      << "'\n";
            return 2;
        }
        std::cout << "\nwrote " << tracePath
                  << " (load in https://ui.perfetto.dev or"
                     " chrome://tracing)\n";
    }
    if (!metricsPath.empty()) {
        if (!obs::Registry::global().writeJson(metricsPath)) {
            std::cerr << "pimtrace: cannot write '" << metricsPath
                      << "'\n";
            return 2;
        }
        std::cout << "wrote " << metricsPath << "\n";
    }
    return 0;
}
