/**
 * @file
 * pimserve: replay a request trace through the batched serving
 * pipeline and print sustained throughput plus the overlap the
 * double-buffered schedule wins over the synchronous one.
 *
 *   pimserve --demo-trace > requests.trace   # built-in demo trace
 *   pimserve --trace requests.trace          # replay it
 *   pimserve --trace requests.trace --json - # machine-readable
 *
 * A trace is one request per line:
 *
 *   request function=sin method=llut elements=32768
 *   request function=exp method=llut elements=16384 log2-entries=12
 *   request function=sin method=cordic elements=4096 tenant=2
 *
 * Recognized request keys: function, method, elements, log2-entries,
 * interpolated (0|1), iterations, placement (wram|mram), tenant.
 * Blank lines and '#' comments are skipped. Requests with the same
 * configuration coalesce into shared waves and hit the table cache
 * after the first broadcast; requests from different tenants never
 * share a wave.
 *
 * Options:
 *   --trace PATH           request trace to replay
 *   --demo-trace           print a built-in demo trace and exit.
 *                          Combined with a replay option (--topology,
 *                          --demo-requests, --json, --journal,
 *                          --metrics, --slo, --plan, --sync,
 *                          --no-sync-replay) and no --trace, the
 *                          demo trace is *replayed* instead: a
 *                          synthetic mixed-config trace of
 *                          --demo-requests requests (default
 *                          1000000) built in memory.
 *   --demo-requests N      size of the synthetic demo replay
 *   --topology DxRxP       fleet topology (e.g. 20x2x64: 20 DIMMs x
 *                          2 ranks x 64 DPUs); implies
 *                          --dpus D*R*P and per-rank scheduling
 *                          (see docs/fleet.md)
 *   --no-sync-replay       skip the sync-comparison second run
 *   --dpus N               simulated DPUs (default 64)
 *   --tasklets N           tasklets per DPU (default 16)
 *   --per-dpu-elements N   per-wave slice capacity per DPU
 *                          (default 512)
 *   --chunk N              streaming-kernel chunk elements
 *                          (default 32)
 *   --sync                 replay with the synchronous schedule only
 *   --plan PATH            arm a fault plan (pimfault text format)
 *   --seed N               input-generation seed
 *   --json PATH            write a JSON summary ('-' for stdout)
 *   --metrics PATH         dump the metrics registry (serve/...)
 *   --journal PATH         write the per-request journal as JSONL
 *                          ('-' for stdout); see docs/observability.md
 *   --slo SPEC             check an SLO like p99<2ms or p50:150us
 *                          against modeled per-request latency
 *   --auto-tune            route waves through the online per-tenant
 *                          auto-tuner (docs/autotuner.md); both the
 *                          primary run and the sync-comparison
 *                          replay get their own fresh tuner
 *   --tenant-sla T:SPEC    SLA for tenant T ('*' = default SLA for
 *                          tenants without their own; repeatable;
 *                          implies --auto-tune). SPEC grammar:
 *                          docs/autotuner.md, e.g.
 *                          'rmse<1e-6;cycles:p99<600'
 *   --explore N            tuner: elements each candidate is
 *                          explored for before a stream commits
 *                          (default 2048)
 *
 * Per-request modeled latency (p50/p90/p99/p999, exact nearest-rank
 * over the journal) and sustained requests/s are always reported for
 * the primary run; the sync-comparison replay is never journaled.
 *
 * Exit status: 0 when every request was served completely (and the
 * --slo target, if given, was met, and no tuned stream ended on a
 * candidate violating its SLA), 1 when elements were dropped /
 * infeasible / the run is incomplete / the SLO or an SLA was missed,
 * 2 on usage or parse errors.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pimsim/obs/journal.h"
#include "pimsim/obs/metrics.h"
#include "pimsim/serve/pipeline.h"
#include "pimsim/topology.h"
#include "transpim/auto_tuner.h"
#include "transpim/harness.h"
#include "transpim/serve_glue.h"

namespace {

using namespace tpl;
using namespace tpl::transpim;

void
usage()
{
    std::cerr
        << "usage: pimserve --trace PATH [--dpus N] [--tasklets N]\n"
           "                [--topology DxRxP]"
           " [--per-dpu-elements N]\n"
           "                [--chunk N] [--sync] [--no-sync-replay]\n"
           "                [--plan PATH] [--seed N] [--json PATH]\n"
           "                [--metrics PATH] [--journal PATH]"
           " [--slo SPEC]\n"
           "                [--auto-tune] [--tenant-sla T:SPEC]..."
           " [--explore N]\n"
           "       pimserve --demo-trace   # print the demo trace\n"
           "       pimserve --demo-trace --topology 20x2x64"
           " [--demo-requests N] ...\n"
           "                               # replay a synthetic demo"
           " trace\n";
}

const std::map<std::string, Function>&
functionTable()
{
    static const std::map<std::string, Function> table = {
        {"sin", Function::Sin},       {"cos", Function::Cos},
        {"tan", Function::Tan},       {"sinh", Function::Sinh},
        {"cosh", Function::Cosh},     {"tanh", Function::Tanh},
        {"exp", Function::Exp},       {"log", Function::Log},
        {"sqrt", Function::Sqrt},     {"gelu", Function::Gelu},
        {"sigmoid", Function::Sigmoid}, {"cndf", Function::Cndf},
        {"atan", Function::Atan},     {"asin", Function::Asin},
        {"acos", Function::Acos},     {"atanh", Function::Atanh},
        {"log2", Function::Log2},     {"log10", Function::Log10},
        {"exp2", Function::Exp2},     {"rsqrt", Function::Rsqrt},
        {"erf", Function::Erf},       {"silu", Function::Silu},
        {"softplus", Function::Softplus},
    };
    return table;
}

const std::map<std::string, Method>&
methodTable()
{
    static const std::map<std::string, Method> table = {
        {"cordic", Method::Cordic},
        {"cordic-fixed", Method::CordicFixed},
        {"cordic-lut", Method::CordicLut},
        {"mlut", Method::MLut},
        {"llut", Method::LLut},
        {"llut-fixed", Method::LLutFixed},
        {"dlut", Method::DLut},
        {"dllut", Method::DlLut},
        {"poly", Method::Poly},
    };
    return table;
}

bool
parseU32(const std::string& text, uint32_t& out)
{
    try {
        size_t pos = 0;
        unsigned long v = std::stoul(text, &pos, 0);
        if (pos != text.size() || v > UINT32_MAX)
            return false;
        out = static_cast<uint32_t>(v);
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseU64(const std::string& text, uint64_t& out)
{
    try {
        size_t pos = 0;
        unsigned long long v = std::stoull(text, &pos, 0);
        if (pos != text.size())
            return false;
        out = v;
        return true;
    } catch (...) {
        return false;
    }
}

/** One parsed trace line. */
struct TraceRequest
{
    Function function = Function::Sin;
    MethodSpec spec;
    uint32_t elements = 0;
    uint64_t tenant = 0;
};

/** Parse `request key=value ...`; returns false + error on bad input. */
bool
parseTraceLine(const std::string& line, TraceRequest& req,
               std::string& error)
{
    std::istringstream words(line);
    std::string word;
    words >> word;
    if (word != "request") {
        error = "expected 'request', got '" + word + "'";
        return false;
    }
    bool haveFunction = false;
    while (words >> word) {
        size_t eq = word.find('=');
        if (eq == std::string::npos) {
            error = "expected key=value, got '" + word + "'";
            return false;
        }
        std::string key = word.substr(0, eq);
        std::string value = word.substr(eq + 1);
        uint32_t n = 0;
        if (key == "function") {
            auto it = functionTable().find(value);
            if (it == functionTable().end()) {
                error = "unknown function '" + value + "'";
                return false;
            }
            req.function = it->second;
            haveFunction = true;
        } else if (key == "method") {
            auto it = methodTable().find(value);
            if (it == methodTable().end()) {
                error = "unknown method '" + value + "'";
                return false;
            }
            req.spec.method = it->second;
        } else if (key == "elements") {
            if (!parseU32(value, n) || n == 0) {
                error = "bad elements '" + value + "'";
                return false;
            }
            req.elements = n;
        } else if (key == "log2-entries") {
            if (!parseU32(value, req.spec.log2Entries)) {
                error = "bad log2-entries '" + value + "'";
                return false;
            }
        } else if (key == "interpolated") {
            if (!parseU32(value, n) || n > 1) {
                error = "bad interpolated '" + value + "'";
                return false;
            }
            req.spec.interpolated = n != 0;
        } else if (key == "iterations") {
            if (!parseU32(value, req.spec.iterations)) {
                error = "bad iterations '" + value + "'";
                return false;
            }
        } else if (key == "placement") {
            if (value == "wram") {
                req.spec.placement = Placement::Wram;
            } else if (value == "mram") {
                req.spec.placement = Placement::Mram;
            } else {
                error = "bad placement '" + value + "'";
                return false;
            }
        } else if (key == "tenant") {
            if (!parseU64(value, req.tenant)) {
                error = "bad tenant '" + value + "'";
                return false;
            }
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
    }
    if (!haveFunction || req.elements == 0) {
        error = "request needs at least function= and elements=";
        return false;
    }
    return true;
}

/** A mixed inference-style burst: repeated configs hit the table
 * cache, the cos/exp switches force new broadcasts. */
const char* kDemoTrace =
    "# pimserve demo trace: replay with\n"
    "#   pimserve --trace <this file>\n"
    "request function=sin method=llut elements=32768\n"
    "request function=sin method=llut elements=32768\n"
    "request function=cos method=llut elements=32768\n"
    "request function=sin method=llut elements=16384\n"
    "request function=exp method=llut elements=32768\n"
    "request function=exp method=llut elements=32768\n";

/** Build the synthetic demo-replay trace: @p requests small
 * inference-style requests over four llut configs. Requests arrive
 * grouped into eight same-config phases (two passes over the four
 * configs) so waves coalesce deep same-table runs from the queue
 * front and the second pass exercises the table cache; element
 * counts cycle 8..24 (mean ~16). */
std::vector<TraceRequest>
demoReplayTrace(uint32_t requests)
{
    struct Cfg
    {
        Function function;
        Method method;
    };
    static const Cfg cfgs[4] = {
        {Function::Sin, Method::LLut},
        {Function::Cos, Method::LLut},
        {Function::Exp, Method::LLut},
        {Function::Sigmoid, Method::LLut},
    };
    std::vector<TraceRequest> trace;
    trace.reserve(requests);
    const uint32_t phases = 8;
    for (uint32_t i = 0; i < requests; ++i) {
        uint64_t phase =
            static_cast<uint64_t>(i) * phases / requests;
        const Cfg& cfg = cfgs[phase % 4];
        TraceRequest req;
        req.function = cfg.function;
        req.spec.method = cfg.method;
        req.elements = 8 + i % 17;
        trace.push_back(req);
    }
    return trace;
}

void
writeJson(std::ostream& out, const sim::serve::ServeReport& rep,
          const sim::serve::ServeReport* syncRep,
          const obs::LatencySummary& lat, const obs::SloTracker* slo,
          const sim::Topology* topo,
          const std::vector<StreamReport>* tunerStreams,
          const std::vector<sim::serve::TuneDecision>* tunerDecisions)
{
    out << "{\n"
        << "  \"requests\": " << rep.requests << ",\n"
        << "  \"elements\": " << rep.elements << ",\n"
        << "  \"waves\": " << rep.waves << ",\n"
        << "  \"cache_hits\": " << rep.cacheHits << ",\n"
        << "  \"cache_misses\": " << rep.cacheMisses << ",\n"
        << "  \"failed_dpus\": " << rep.failedDpus.size() << ",\n"
        << "  \"resharded_elements\": " << rep.reshardedElements
        << ",\n"
        << "  \"dropped_elements\": " << rep.droppedElements << ",\n"
        << "  \"infeasible_elements\": " << rep.infeasibleElements
        << ",\n"
        << "  \"complete\": " << (rep.complete ? "true" : "false")
        << ",\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9e", rep.modeledSeconds);
    out << "  \"modeled_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.9e", rep.syncSeconds);
    out << "  \"sync_seconds\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.3f", rep.elementsPerSecond());
    out << "  \"elements_per_second\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.2f",
                  rep.overlapFraction() * 100.0);
    out << "  \"overlap_percent\": " << buf;
    if (syncRep) {
        double speedup = rep.modeledSeconds > 0.0
                             ? syncRep->modeledSeconds /
                                   rep.modeledSeconds
                             : 0.0;
        std::snprintf(buf, sizeof(buf), "%.9e",
                      syncRep->modeledSeconds);
        out << ",\n  \"sync_run_modeled_seconds\": " << buf;
        std::snprintf(buf, sizeof(buf), "%.4f", speedup);
        out << ",\n  \"speedup\": " << buf;
    }
    auto secs = [&](double v) -> const char* {
        std::snprintf(buf, sizeof(buf), "%.9e", v);
        return buf;
    };
    out << ",\n  \"latency\": {\n"
        << "    \"requests\": " << lat.requests << ",\n"
        << "    \"incomplete\": " << lat.incomplete << ",\n"
        << "    \"p50\": " << secs(lat.p50) << ",\n"
        << "    \"p90\": " << secs(lat.p90) << ",\n"
        << "    \"p99\": " << secs(lat.p99) << ",\n"
        << "    \"p999\": " << secs(lat.p999) << ",\n"
        << "    \"mean\": " << secs(lat.mean) << ",\n"
        << "    \"max\": " << secs(lat.max) << "\n  },\n"
        << "  \"requests_per_second\": "
        << secs(lat.requestsPerSecond) << ",\n"
        << "  \"anomalous_waves\": " << rep.anomalousWaves;
    if (topo && !rep.rankStats.empty()) {
        out << ",\n  \"topology\": \"" << topo->toText()
            << "\",\n  \"ranks\": " << rep.rankStats.size()
            << ",\n  \"rank_stats\": [";
        bool first = true;
        for (const sim::serve::RankStats& r : rep.rankStats) {
            out << (first ? "" : ",") << "\n    {\"rank\": "
                << r.rank << ", \"waves\": " << r.waves
                << ", \"elements\": " << r.elements
                << ", \"compute_cycles\": " << r.computeCycles
                << ", \"makespan_seconds\": "
                << secs(r.makespanSeconds)
                << ", \"resident_tables\": " << r.residentTables
                << ", \"broadcasts\": " << r.broadcasts << "}";
            first = false;
        }
        out << "\n  ]";
    }
    if (slo) {
        out << ",\n  \"slo\": {\n    \"spec\": \""
            << slo->spec().toText() << "\",\n    \"tables\": [";
        bool first = true;
        for (const obs::SloResult& r : slo->results()) {
            out << (first ? "" : ",") << "\n      {\"table\": \""
                << r.table << "\", \"good\": " << r.good
                << ", \"bad\": " << r.bad << ", \"burn_rate\": "
                << secs(r.burnRate) << ", \"met\": "
                << (r.met ? "true" : "false") << "}";
            first = false;
        }
        const obs::SloResult total = slo->total();
        out << (first ? "" : "\n    ") << "],\n    \"good\": "
            << total.good << ",\n    \"bad\": " << total.bad
            << ",\n    \"burn_rate\": " << secs(total.burnRate)
            << ",\n    \"met\": " << (total.met ? "true" : "false")
            << "\n  }";
    }
    if (tunerStreams) {
        uint64_t switches = 0;
        for (const StreamReport& s : *tunerStreams)
            switches += s.switches;
        out << ",\n  \"tuner\": {\n    \"route_switches\": "
            << switches << ",\n    \"decisions\": "
            << (tunerDecisions ? tunerDecisions->size() : 0)
            << ",\n    \"streams\": [";
        bool first = true;
        for (const StreamReport& s : *tunerStreams) {
            out << (first ? "" : ",") << "\n      {\"tenant\": "
                << s.tenant << ", \"requested\": \"" << s.requested
                << "\", \"chosen\": \"" << s.chosen
                << "\", \"sla\": \"" << s.sla << "\", \"state\": \""
                << (s.tunable
                        ? (s.committed ? "committed" : "exploring")
                        : "untunable")
                << "\", \"elements\": " << s.elements;
            std::snprintf(buf, sizeof(buf), "%.1f",
                          s.cyclesPerElement);
            out << ", \"cycles_per_element\": " << buf;
            std::snprintf(buf, sizeof(buf), "%.6e", s.rmse);
            out << ", \"rmse\": " << buf << ", \"sla_violated\": "
                << (s.slaViolated ? "true" : "false") << "}";
            first = false;
        }
        out << "\n    ]\n  }";
    }
    out << "\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    std::string tracePath;
    std::string planPath;
    std::string jsonPath;
    std::string metricsPath;
    std::string journalPath;
    std::string sloText;
    bool demoTrace = false;
    bool syncOnly = false;
    bool noSyncReplay = false;
    bool autoTune = false;
    std::optional<sim::Topology> topology;
    uint32_t demoRequests = 0;
    uint32_t dpus = 64;
    uint32_t tasklets = 16;
    uint32_t perDpuElements = 512;
    uint32_t chunk = 32;
    uint32_t explore = 2048;
    uint32_t seed = 0x7ea9c0de;
    std::optional<sim::serve::TenantSla> defaultSla;
    std::map<uint64_t, sim::serve::TenantSla> tenantSlas;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        auto u32Arg = [&](uint32_t& out) {
            if (!parseU32(value(), out)) {
                usage();
                std::exit(2);
            }
        };
        if (arg == "--trace") {
            tracePath = value();
        } else if (arg == "--demo-trace") {
            demoTrace = true;
        } else if (arg == "--demo-requests") {
            u32Arg(demoRequests);
        } else if (arg == "--topology") {
            std::string spec = value();
            topology = sim::Topology::parse(spec);
            if (!topology) {
                std::cerr << "pimserve: bad --topology '" << spec
                          << "' (want DIMMSxRANKSxDPUS, e.g."
                             " 20x2x64)\n";
                return 2;
            }
        } else if (arg == "--no-sync-replay") {
            noSyncReplay = true;
        } else if (arg == "--dpus") {
            u32Arg(dpus);
        } else if (arg == "--tasklets") {
            u32Arg(tasklets);
        } else if (arg == "--per-dpu-elements") {
            u32Arg(perDpuElements);
        } else if (arg == "--chunk") {
            u32Arg(chunk);
        } else if (arg == "--sync") {
            syncOnly = true;
        } else if (arg == "--plan") {
            planPath = value();
        } else if (arg == "--seed") {
            u32Arg(seed);
        } else if (arg == "--json") {
            jsonPath = value();
        } else if (arg == "--metrics") {
            metricsPath = value();
        } else if (arg == "--journal") {
            journalPath = value();
        } else if (arg == "--slo") {
            sloText = value();
        } else if (arg == "--auto-tune") {
            autoTune = true;
        } else if (arg == "--tenant-sla") {
            std::string spec = value();
            size_t colon = spec.find(':');
            if (colon == std::string::npos || colon == 0) {
                std::cerr << "pimserve: bad --tenant-sla '" << spec
                          << "' (want T:SPEC or '*:SPEC')\n";
                return 2;
            }
            std::string who = spec.substr(0, colon);
            sim::serve::TenantSla sla;
            if (!sim::serve::TenantSla::parse(spec.substr(colon + 1),
                                              sla)) {
                std::cerr << "pimserve: bad SLA spec in '" << spec
                          << "' (want e.g. rmse<1e-6;cycles:p99<600)"
                          << "\n";
                return 2;
            }
            autoTune = true;
            if (who == "*") {
                defaultSla = sla;
            } else {
                uint64_t tenant = 0;
                if (!parseU64(who, tenant)) {
                    std::cerr << "pimserve: bad tenant id '" << who
                              << "'\n";
                    return 2;
                }
                tenantSlas[tenant] = sla;
            }
        } else if (arg == "--explore") {
            u32Arg(explore);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "pimserve: unknown option '" << arg << "'\n";
            usage();
            return 2;
        }
    }

    // `--demo-trace` alone prints the demo trace file. Combined with
    // a replay-shaping option (and no --trace) it replays a
    // synthetic in-memory trace instead.
    bool replayDemo =
        demoTrace && tracePath.empty() &&
        (topology || demoRequests > 0 || syncOnly || noSyncReplay ||
         autoTune || !jsonPath.empty() || !journalPath.empty() ||
         !metricsPath.empty() || !sloText.empty() ||
         !planPath.empty());
    if (demoTrace && !replayDemo) {
        std::cout << kDemoTrace;
        return 0;
    }
    if (topology)
        dpus = topology->numDpus();
    if ((tracePath.empty() && !replayDemo) || dpus == 0 ||
        tasklets == 0) {
        usage();
        return 2;
    }

    std::vector<TraceRequest> trace;
    if (replayDemo) {
        trace =
            demoReplayTrace(demoRequests ? demoRequests : 1000000u);
    } else {
        std::ifstream in(tracePath);
        if (!in) {
            std::cerr << "pimserve: cannot read '" << tracePath
                      << "'\n";
            return 2;
        }
        std::string line;
        int lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            size_t hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            TraceRequest req;
            std::string error;
            if (!parseTraceLine(line, req, error)) {
                std::cerr << "pimserve: " << tracePath << ":"
                          << lineNo << ": " << error << "\n";
                return 2;
            }
            trace.push_back(req);
        }
        if (trace.empty()) {
            std::cerr << "pimserve: " << tracePath
                      << ": no requests\n";
            return 2;
        }
    }

    std::optional<sim::fault::FaultPlan> plan;
    if (!planPath.empty()) {
        std::ifstream planIn(planPath);
        if (!planIn) {
            std::cerr << "pimserve: cannot read '" << planPath
                      << "'\n";
            return 2;
        }
        std::ostringstream text;
        text << planIn.rdbuf();
        std::string error;
        plan = sim::fault::FaultPlan::parse(text.str(), &error);
        if (!plan) {
            std::cerr << "pimserve: " << planPath << ": " << error
                      << "\n";
            return 2;
        }
    }

    std::optional<obs::SloSpec> sloSpec;
    if (!sloText.empty()) {
        obs::SloSpec spec;
        if (!obs::SloSpec::parse(sloText, spec)) {
            std::cerr << "pimserve: bad --slo spec '" << sloText
                      << "' (want e.g. p99<2ms or p50:150us)\n";
            return 2;
        }
        sloSpec = spec;
    }

    obs::Registry::global().setEnabled(true);

    // Generate per-request inputs over each function's domain.
    uint64_t total = 0;
    for (const TraceRequest& r : trace)
        total += r.elements;
    std::vector<float> inputs(total);
    std::vector<float> outputs(total, 0.0f);
    {
        uint64_t off = 0;
        uint32_t salt = 0;
        for (const TraceRequest& r : trace) {
            Domain dom = functionDomain(r.function);
            std::vector<float> chunkIn = uniformFloats(
                r.elements, static_cast<float>(dom.lo),
                static_cast<float>(dom.hi), seed + salt++);
            std::copy(chunkIn.begin(), chunkIn.end(),
                      inputs.begin() + off);
            off += r.elements;
        }
    }

    // One run of the whole trace on a fresh system. Only the primary
    // run carries the journal (and surfaces its tuner's reports);
    // the sync-comparison replay gets its own fresh tuner so the
    // speedup compares like against like.
    std::vector<StreamReport> tunerStreams;
    std::vector<sim::serve::TuneDecision> tunerDecisions;
    auto serveOnce = [&](bool pipelined, obs::Journal* journal)
        -> sim::serve::ServeReport {
        sim::PimSystem sys(dpus);
        if (plan)
            sys.armFaults(*plan);
        EvaluatorCatalog catalog;
        catalog.setChunkElements(chunk);

        sim::serve::BatchQueue queue;
        if (journal)
            queue.setJournal(journal);
        uint64_t off = 0;
        for (const TraceRequest& r : trace) {
            sim::serve::Request req;
            req.table = catalog.add(r.function, r.spec);
            req.input = inputs.data() + off;
            req.output = outputs.data() + off;
            req.elements = r.elements;
            req.tenant = r.tenant;
            queue.push(req);
            off += r.elements;
        }
        queue.close();

        std::optional<OnlineAutoTuner> tuner;
        if (autoTune) {
            AutoTunerOptions topts;
            topts.exploreElements = explore;
            if (defaultSla)
                topts.defaultSla = *defaultSla;
            tuner.emplace(catalog, topts);
            for (const auto& [tenant, sla] : tenantSlas)
                tuner->setTenantSla(tenant, sla);
        }

        sim::serve::PipelineOptions popts;
        popts.numTasklets = tasklets;
        popts.perDpuElements = perDpuElements;
        popts.pipelined = pipelined;
        popts.journal = journal;
        if (tuner)
            popts.autoTuner = &*tuner;
        if (topology)
            popts.topology = &*topology;
        sim::serve::ServePipeline pipeline(sys, catalog.provider(),
                                           popts);
        sim::serve::ServeReport rep = pipeline.run(queue);
        if (tuner && journal) {
            tunerStreams = tuner->streamReports();
            tunerDecisions = tuner->decisions();
        }
        return rep;
    };

    obs::Journal journal;
    // Per-request latencies are always tracked; the per-event stream
    // is only worth its memory when it will be written somewhere.
    if (journalPath.empty())
        journal.setEventsEnabled(false);
    sim::serve::ServeReport rep = serveOnce(!syncOnly, &journal);
    std::optional<sim::serve::ServeReport> syncRep;
    if (!syncOnly && !noSyncReplay)
        syncRep = serveOnce(false, nullptr);

    obs::LatencySummary latency =
        journal.summarize(rep.modeledSeconds);
    std::optional<obs::SloTracker> slo;
    if (sloSpec) {
        slo.emplace(*sloSpec);
        for (const obs::RequestLatency& lat : journal.latencies())
            slo->observe(lat.table, lat.latencySeconds(),
                         lat.complete);
    }

    std::cout << "== pimserve: " << trace.size() << " request"
              << (trace.size() == 1 ? "" : "s") << ", " << total
              << " elements over ";
    if (topology)
        std::cout << topology->toText() << " fleet (" << dpus
                  << " DPUs)";
    else
        std::cout << dpus << " DPUs";
    std::cout << " (" << (syncOnly ? "synchronous" : "double-buffered")
              << " schedule)\n\n";

    std::cout << "-- pipeline\n";
    std::printf("   waves               %10llu\n",
                static_cast<unsigned long long>(rep.waves));
    std::printf("   table cache         %10llu hits, %llu misses\n",
                static_cast<unsigned long long>(rep.cacheHits),
                static_cast<unsigned long long>(rep.cacheMisses));
    std::printf("   failed DPUs         %10zu of %u\n",
                rep.failedDpus.size(), dpus);
    std::printf("   resharded elements  %10llu\n",
                static_cast<unsigned long long>(
                    rep.reshardedElements));
    std::printf("   dropped elements    %10llu\n",
                static_cast<unsigned long long>(rep.droppedElements));

    if (topology && !rep.rankStats.empty()) {
        double minSpan = rep.rankStats.front().makespanSeconds;
        double maxSpan = minSpan;
        double sumSpan = 0.0;
        uint64_t broadcasts = 0;
        uint64_t resident = 0;
        for (const sim::serve::RankStats& r : rep.rankStats) {
            minSpan = std::min(minSpan, r.makespanSeconds);
            maxSpan = std::max(maxSpan, r.makespanSeconds);
            sumSpan += r.makespanSeconds;
            broadcasts += r.broadcasts;
            resident += r.residentTables;
        }
        std::cout << "\n-- fleet " << topology->toText() << "\n";
        std::printf("   ranks               %10zu\n",
                    rep.rankStats.size());
        std::printf("   rank makespan       %13.6f s min, %.6f s"
                    " mean, %.6f s max\n",
                    minSpan, sumSpan / rep.rankStats.size(), maxSpan);
        std::printf("   rank broadcasts     %10llu (%llu resident"
                    " table slots)\n",
                    static_cast<unsigned long long>(broadcasts),
                    static_cast<unsigned long long>(resident));
        if (rep.rankStats.size() <= 8) {
            for (const sim::serve::RankStats& r : rep.rankStats)
                std::printf("   rank %-3u %10llu waves, %llu"
                            " elements, %.6f s\n",
                            r.rank,
                            static_cast<unsigned long long>(r.waves),
                            static_cast<unsigned long long>(
                                r.elements),
                            r.makespanSeconds);
        }
    }

    std::cout << "\n-- throughput (modeled)\n";
    std::printf("   makespan            %13.6f s\n",
                rep.modeledSeconds);
    std::printf("   synchronous cost    %13.6f s\n", rep.syncSeconds);
    std::printf("   sustained           %13.3e elements/s\n",
                rep.elementsPerSecond());
    std::printf("   overlap             %12.1f %%\n",
                rep.overlapFraction() * 100.0);
    if (syncRep) {
        double speedup =
            rep.modeledSeconds > 0.0
                ? syncRep->modeledSeconds / rep.modeledSeconds
                : 0.0;
        std::printf("   vs sync replay      %12.2fx\n", speedup);
    }
    std::printf("   complete            %13s\n",
                rep.complete ? "yes" : "NO");

    std::cout << "\n-- latency (modeled, per request)\n";
    std::printf("   p50                 %13.3e s\n", latency.p50);
    std::printf("   p90                 %13.3e s\n", latency.p90);
    std::printf("   p99                 %13.3e s\n", latency.p99);
    std::printf("   p99.9               %13.3e s\n", latency.p999);
    std::printf("   mean / max          %11.3e / %.3e s\n",
                latency.mean, latency.max);
    std::printf("   sustained           %13.3f requests/s\n",
                latency.requestsPerSecond);
    std::printf("   incomplete          %13llu\n",
                static_cast<unsigned long long>(latency.incomplete));
    if (rep.anomalousWaves > 0)
        std::printf("   straggler waves     %10llu of %llu flagged\n",
                    static_cast<unsigned long long>(
                        rep.anomalousWaves),
                    static_cast<unsigned long long>(rep.waves));

    if (slo) {
        const obs::SloResult total = slo->total();
        std::cout << "\n-- slo " << slo->spec().toText() << "\n";
        for (const obs::SloResult& r : slo->results())
            std::printf("   %-28s %6llu good, %llu bad, burn "
                        "%.3f -> %s\n",
                        r.table.c_str(),
                        static_cast<unsigned long long>(r.good),
                        static_cast<unsigned long long>(r.bad),
                        r.burnRate, r.met ? "met" : "MISSED");
        std::printf("   %-28s %6llu good, %llu bad, burn "
                    "%.3f -> %s\n",
                    "(all tables)",
                    static_cast<unsigned long long>(total.good),
                    static_cast<unsigned long long>(total.bad),
                    total.burnRate, total.met ? "met" : "MISSED");
    }

    if (autoTune) {
        uint64_t switches = 0;
        for (const StreamReport& s : tunerStreams)
            switches += s.switches;
        std::cout << "\n-- tuner (" << tunerStreams.size()
                  << " stream" << (tunerStreams.size() == 1 ? "" : "s")
                  << ", " << switches << " wave route switch"
                  << (switches == 1 ? "" : "es") << ")\n";
        for (const StreamReport& s : tunerStreams)
            std::printf("   tenant %-4llu %-34s -> %-34s %s"
                        " %9.1f cyc/el  rmse %.3e%s\n",
                        static_cast<unsigned long long>(s.tenant),
                        s.requested.c_str(), s.chosen.c_str(),
                        s.tunable
                            ? (s.committed ? "committed"
                                           : "exploring")
                            : "untunable",
                        s.cyclesPerElement, s.rmse,
                        s.slaViolated ? "  SLA VIOLATED" : "");
        for (const sim::serve::TuneDecision& d : tunerDecisions)
            std::printf("   #%-3llu tenant %-4llu %-10s %s -> %s\n",
                        static_cast<unsigned long long>(d.sequence),
                        static_cast<unsigned long long>(d.tenant),
                        d.reason.c_str(), d.fromTable.c_str(),
                        d.toTable.c_str());
    }

    if (!jsonPath.empty()) {
        const obs::SloTracker* sloPtr = slo ? &*slo : nullptr;
        const sim::Topology* topoPtr =
            topology ? &*topology : nullptr;
        const std::vector<StreamReport>* streamsPtr =
            autoTune ? &tunerStreams : nullptr;
        const std::vector<sim::serve::TuneDecision>* decPtr =
            autoTune ? &tunerDecisions : nullptr;
        if (jsonPath == "-") {
            writeJson(std::cout, rep, syncRep ? &*syncRep : nullptr,
                      latency, sloPtr, topoPtr, streamsPtr, decPtr);
        } else {
            std::ofstream jsonOut(jsonPath);
            if (!jsonOut) {
                std::cerr << "pimserve: cannot write '" << jsonPath
                          << "'\n";
                return 2;
            }
            writeJson(jsonOut, rep, syncRep ? &*syncRep : nullptr,
                      latency, sloPtr, topoPtr, streamsPtr, decPtr);
            std::cout << "\nwrote " << jsonPath << "\n";
        }
    }
    if (!journalPath.empty()) {
        if (journalPath == "-") {
            std::cout << journal.toJsonl();
        } else if (!journal.writeJsonl(journalPath)) {
            std::cerr << "pimserve: cannot write '" << journalPath
                      << "'\n";
            return 2;
        } else {
            std::cout << "wrote " << journalPath << "\n";
        }
    }
    if (!metricsPath.empty()) {
        if (!obs::Registry::global().writeJson(metricsPath)) {
            std::cerr << "pimserve: cannot write '" << metricsPath
                      << "'\n";
            return 2;
        }
        std::cout << "wrote " << metricsPath << "\n";
    }
    if (!rep.complete)
        return 1;
    if (slo && !slo->total().met)
        return 1;
    for (const StreamReport& s : tunerStreams)
        if (s.slaViolated)
            return 1;
    return 0;
}
