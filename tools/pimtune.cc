/**
 * @file
 * pimtune: offline what-if replay for the online per-tenant
 * auto-tuner. Replays one request trace three ways on fresh systems —
 *
 *   as-requested   every request runs its requested configuration,
 *   static-best    the offline tuner (recommendSpec) re-picks one
 *                  configuration per requested config at the
 *                  *strictest* accuracy target any tenant using it
 *                  declares (configs with an rmse-unconstrained
 *                  tenant are kept as requested),
 *   online         the OnlineAutoTuner routes each tenant's waves
 *                  independently against its own SLA,
 *
 * — and reports total modeled DPU cycles, per-tenant ground-truth
 * RMSE (host-side differential against the double reference over the
 * full output buffers), and the online tuner's decision log. This is
 * the harness behind the `tuner_sweep` bench proof: online beats the
 * best single static configuration because lax tenants ride cheaper
 * tables while strict tenants keep accurate ones.
 *
 * Trace format is pimserve's, plus a `tenant=` key:
 *
 *   request function=sin method=cordic elements=40 tenant=2
 *
 * Options:
 *   --trace PATH         request trace to replay
 *   --demo N             built-in mixed-tenant demo trace of N
 *                        requests: tenants 2 (lax) and 1 (strict)
 *                        share sin/CORDIC-fixed, tenant 3 runs
 *                        exp/CORDIC, with 4:2:1 Zipfian-ish
 *                        popularity. Installs demo SLAs
 *                        (1:rmse<8e-8, 2:rmse<1e-3, 3:rmse<1e-3)
 *                        unless --tenant-sla is given.
 *   --tenant-sla T:SPEC  SLA for tenant T ('*' = default SLA applied
 *                        to tenants without their own; repeatable).
 *                        SPEC grammar: docs/autotuner.md, e.g.
 *                        'rmse<1e-6;cycles:p99<600'.
 *   --dpus N             simulated DPUs (default 64)
 *   --tasklets N         tasklets per DPU (default 16)
 *   --per-dpu-elements N per-wave slice capacity per DPU (default 512)
 *   --chunk N            streaming-kernel chunk elements (default 32)
 *   --explore N          elements each candidate is explored for
 *                        before a stream commits (default 512)
 *   --candidates N       candidates per stream incl. requested
 *                        (default 3)
 *   --mram-budget BYTES  per-DPU budget across tuner-routed tables
 *                        (0 = unlimited)
 *   --seed N             input-generation seed
 *   --json PATH          machine-readable summary ('-' for stdout)
 *
 * Exit status: 0 when all three replays completed and every
 * SLA-constrained tenant's online ground-truth error meets its
 * accuracy clauses, 1 otherwise, 2 on usage/parse errors.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "pimsim/obs/metrics.h"
#include "pimsim/serve/pipeline.h"
#include "transpim/auto_tuner.h"
#include "transpim/reference.h"
#include "transpim/serve_glue.h"
#include "transpim/tuner.h"

namespace {

using namespace tpl;
using namespace tpl::transpim;

void
usage()
{
    std::cerr
        << "usage: pimtune --trace PATH | --demo N\n"
           "               [--tenant-sla T:SPEC]... [--dpus N]\n"
           "               [--tasklets N] [--per-dpu-elements N]\n"
           "               [--chunk N] [--explore N] [--candidates N]\n"
           "               [--mram-budget BYTES] [--seed N]\n"
           "               [--json PATH]\n"
           "example: pimtune --demo 400 --tenant-sla '2:rmse<1e-3'\n";
}

const std::map<std::string, Function>&
functionTable()
{
    static const std::map<std::string, Function> table = {
        {"sin", Function::Sin},       {"cos", Function::Cos},
        {"tan", Function::Tan},       {"sinh", Function::Sinh},
        {"cosh", Function::Cosh},     {"tanh", Function::Tanh},
        {"exp", Function::Exp},       {"log", Function::Log},
        {"sqrt", Function::Sqrt},     {"gelu", Function::Gelu},
        {"sigmoid", Function::Sigmoid}, {"cndf", Function::Cndf},
        {"atan", Function::Atan},     {"asin", Function::Asin},
        {"acos", Function::Acos},     {"atanh", Function::Atanh},
        {"log2", Function::Log2},     {"log10", Function::Log10},
        {"exp2", Function::Exp2},     {"rsqrt", Function::Rsqrt},
        {"erf", Function::Erf},       {"silu", Function::Silu},
        {"softplus", Function::Softplus},
    };
    return table;
}

const std::map<std::string, Method>&
methodTable()
{
    static const std::map<std::string, Method> table = {
        {"cordic", Method::Cordic},
        {"cordic-fixed", Method::CordicFixed},
        {"cordic-lut", Method::CordicLut},
        {"mlut", Method::MLut},
        {"llut", Method::LLut},
        {"llut-fixed", Method::LLutFixed},
        {"dlut", Method::DLut},
        {"dllut", Method::DlLut},
        {"poly", Method::Poly},
    };
    return table;
}

bool
parseU32(const std::string& text, uint32_t& out)
{
    try {
        size_t pos = 0;
        unsigned long v = std::stoul(text, &pos, 0);
        if (pos != text.size() || v > UINT32_MAX)
            return false;
        out = static_cast<uint32_t>(v);
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseU64(const std::string& text, uint64_t& out)
{
    try {
        size_t pos = 0;
        unsigned long long v = std::stoull(text, &pos, 0);
        if (pos != text.size())
            return false;
        out = v;
        return true;
    } catch (...) {
        return false;
    }
}

/** One parsed trace line (pimserve's format + tenant=). */
struct TraceRequest
{
    Function function = Function::Sin;
    MethodSpec spec;
    uint32_t elements = 0;
    uint64_t tenant = 0;
};

bool
parseTraceLine(const std::string& line, TraceRequest& req,
               std::string& error)
{
    std::istringstream words(line);
    std::string word;
    words >> word;
    if (word != "request") {
        error = "expected 'request', got '" + word + "'";
        return false;
    }
    bool haveFunction = false;
    while (words >> word) {
        size_t eq = word.find('=');
        if (eq == std::string::npos) {
            error = "expected key=value, got '" + word + "'";
            return false;
        }
        std::string key = word.substr(0, eq);
        std::string value = word.substr(eq + 1);
        uint32_t n = 0;
        if (key == "function") {
            auto it = functionTable().find(value);
            if (it == functionTable().end()) {
                error = "unknown function '" + value + "'";
                return false;
            }
            req.function = it->second;
            haveFunction = true;
        } else if (key == "method") {
            auto it = methodTable().find(value);
            if (it == methodTable().end()) {
                error = "unknown method '" + value + "'";
                return false;
            }
            req.spec.method = it->second;
        } else if (key == "elements") {
            if (!parseU32(value, n) || n == 0) {
                error = "bad elements '" + value + "'";
                return false;
            }
            req.elements = n;
        } else if (key == "tenant") {
            if (!parseU64(value, req.tenant)) {
                error = "bad tenant '" + value + "'";
                return false;
            }
        } else if (key == "log2-entries") {
            if (!parseU32(value, req.spec.log2Entries)) {
                error = "bad log2-entries '" + value + "'";
                return false;
            }
        } else if (key == "interpolated") {
            if (!parseU32(value, n) || n > 1) {
                error = "bad interpolated '" + value + "'";
                return false;
            }
            req.spec.interpolated = n != 0;
        } else if (key == "iterations") {
            if (!parseU32(value, req.spec.iterations)) {
                error = "bad iterations '" + value + "'";
                return false;
            }
        } else if (key == "placement") {
            if (value == "wram") {
                req.spec.placement = Placement::Wram;
            } else if (value == "mram") {
                req.spec.placement = Placement::Mram;
            } else {
                error = "bad placement '" + value + "'";
                return false;
            }
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
    }
    if (!haveFunction || req.elements == 0) {
        error = "request needs at least function= and elements=";
        return false;
    }
    return true;
}

/** The built-in mixed-tenant trace: a strict and a lax tenant share
 * sin's most accurate configuration (fixed-point CORDIC), a third
 * lax tenant runs exp/CORDIC; popularity 4:2:1. The strict SLA is
 * only reachable by the requested config, so the best single static
 * config must keep every sin wave on it — only the online tuner can
 * drop the lax tenant's waves to a cheap interpolated L-LUT. */
std::vector<TraceRequest>
demoTrace(uint32_t requests)
{
    std::vector<TraceRequest> trace;
    trace.reserve(requests);
    for (uint32_t i = 0; i < requests; ++i) {
        TraceRequest req;
        uint32_t slot = i % 7;
        if (slot < 4) {
            req.tenant = 2; // lax, most traffic
            req.function = Function::Sin;
            req.spec.method = Method::CordicFixed;
        } else if (slot < 6) {
            req.tenant = 1; // strict
            req.function = Function::Sin;
            req.spec.method = Method::CordicFixed;
        } else {
            req.tenant = 3; // lax
            req.function = Function::Exp;
            req.spec.method = Method::Cordic;
        }
        req.elements = 8 + (i * 5) % 29;
        trace.push_back(req);
    }
    return trace;
}

/** Ground-truth accuracy of one replay, per tenant, measured
 * host-side over every output element. */
struct TenantError
{
    double sumSq = 0.0;
    uint64_t samples = 0;
    double maxUlp = 0.0;

    double
    rmse() const
    {
        return samples ? std::sqrt(sumSq / samples) : 0.0;
    }
};

/** One replay's outcome. */
struct ReplayResult
{
    sim::serve::ServeReport report;
    uint64_t totalCycles = 0; ///< sum of per-wave summed DPU cycles
    std::map<uint64_t, TenantError> tenantError;
    std::vector<sim::serve::TuneDecision> decisions;
    std::vector<StreamReport> streams;
};

std::map<uint64_t, TenantError>
measureError(const std::vector<TraceRequest>& trace,
             const std::vector<float>& inputs,
             const std::vector<float>& outputs)
{
    std::map<uint64_t, TenantError> result;
    uint64_t off = 0;
    for (const TraceRequest& r : trace) {
        bool relative = resolveMetric(r.function) ==
                        ErrorMetric::Relative;
        TenantError& te = result[r.tenant];
        for (uint32_t i = 0; i < r.elements; ++i) {
            double ref = referenceValue(
                r.function, static_cast<double>(inputs[off + i]));
            double err = static_cast<double>(outputs[off + i]) - ref;
            if (relative)
                err /= std::max(1.0, std::fabs(ref));
            te.sumSq += err * err;
            ++te.samples;
            te.maxUlp = std::max(
                te.maxUlp, ulpDistance(outputs[off + i],
                                       static_cast<float>(ref)));
        }
        off += r.elements;
    }
    return result;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string tracePath;
    std::string jsonPath;
    uint32_t demoRequests = 0;
    bool demo = false;
    uint32_t dpus = 64;
    uint32_t tasklets = 16;
    uint32_t perDpuElements = 512;
    uint32_t chunk = 32;
    uint32_t explore = 512;
    uint32_t candidates = 3;
    uint64_t mramBudget = 0;
    uint32_t seed = 0x7ea9c0de;
    std::map<uint64_t, sim::serve::TenantSla> slas;
    std::optional<sim::serve::TenantSla> defaultSla;
    bool anySlaArg = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        auto u32Arg = [&](uint32_t& out) {
            if (!parseU32(value(), out)) {
                usage();
                std::exit(2);
            }
        };
        if (arg == "--trace") {
            tracePath = value();
        } else if (arg == "--demo") {
            demo = true;
            u32Arg(demoRequests);
        } else if (arg == "--tenant-sla") {
            std::string spec = value();
            size_t colon = spec.find(':');
            if (colon == std::string::npos || colon == 0) {
                std::cerr << "pimtune: bad --tenant-sla '" << spec
                          << "' (want T:SPEC or '*:SPEC')\n";
                return 2;
            }
            std::string who = spec.substr(0, colon);
            sim::serve::TenantSla sla;
            if (!sim::serve::TenantSla::parse(spec.substr(colon + 1),
                                              sla)) {
                std::cerr << "pimtune: bad SLA spec in '" << spec
                          << "' (want e.g. rmse<1e-6;cycles:p99<600)"
                          << "\n";
                return 2;
            }
            anySlaArg = true;
            if (who == "*") {
                defaultSla = sla;
            } else {
                uint64_t tenant = 0;
                if (!parseU64(who, tenant)) {
                    std::cerr << "pimtune: bad tenant id '" << who
                              << "'\n";
                    return 2;
                }
                slas[tenant] = sla;
            }
        } else if (arg == "--dpus") {
            u32Arg(dpus);
        } else if (arg == "--tasklets") {
            u32Arg(tasklets);
        } else if (arg == "--per-dpu-elements") {
            u32Arg(perDpuElements);
        } else if (arg == "--chunk") {
            u32Arg(chunk);
        } else if (arg == "--explore") {
            u32Arg(explore);
        } else if (arg == "--candidates") {
            u32Arg(candidates);
        } else if (arg == "--mram-budget") {
            if (!parseU64(value(), mramBudget)) {
                usage();
                return 2;
            }
        } else if (arg == "--seed") {
            u32Arg(seed);
        } else if (arg == "--json") {
            jsonPath = value();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "pimtune: unknown option '" << arg << "'\n";
            usage();
            return 2;
        }
    }

    if (tracePath.empty() == !demo || (demo && demoRequests == 0) ||
        dpus == 0 || tasklets == 0 || candidates == 0) {
        usage();
        return 2;
    }

    std::vector<TraceRequest> trace;
    if (demo) {
        trace = demoTrace(demoRequests);
        if (!anySlaArg) {
            sim::serve::TenantSla sla;
            sim::serve::TenantSla::parse("rmse<8e-8", sla);
            slas[1] = sla;
            sim::serve::TenantSla::parse("rmse<1e-3", sla);
            slas[2] = sla;
            slas[3] = sla;
        }
    } else {
        std::ifstream in(tracePath);
        if (!in) {
            std::cerr << "pimtune: cannot read '" << tracePath
                      << "'\n";
            return 2;
        }
        std::string line;
        int lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            size_t hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            TraceRequest req;
            std::string error;
            if (!parseTraceLine(line, req, error)) {
                std::cerr << "pimtune: " << tracePath << ":"
                          << lineNo << ": " << error << "\n";
                return 2;
            }
            trace.push_back(req);
        }
        if (trace.empty()) {
            std::cerr << "pimtune: " << tracePath
                      << ": no requests\n";
            return 2;
        }
    }

    auto slaFor = [&](uint64_t tenant) -> sim::serve::TenantSla {
        auto it = slas.find(tenant);
        if (it != slas.end())
            return it->second;
        if (defaultSla)
            return *defaultSla;
        return {};
    };

    obs::Registry::global().setEnabled(true);

    uint64_t total = 0;
    for (const TraceRequest& r : trace)
        total += r.elements;
    std::vector<float> inputs(total);
    std::vector<float> outputs(total, 0.0f);
    {
        uint64_t off = 0;
        uint32_t salt = 0;
        for (const TraceRequest& r : trace) {
            Domain dom = functionDomain(r.function);
            std::vector<float> chunkIn = uniformFloats(
                r.elements, static_cast<float>(dom.lo),
                static_cast<float>(dom.hi), seed + salt++);
            std::copy(chunkIn.begin(), chunkIn.end(),
                      inputs.begin() + off);
            off += r.elements;
        }
    }

    // Static-best: per requested configuration, re-pick offline at
    // the strictest rmse clause among its tenants. A configuration
    // with any rmse-unconstrained tenant stays as requested (the
    // offline tuner has no "never worse than asked" measurement to
    // fall back on).
    struct StaticGroup
    {
        Function function = Function::Sin;
        MethodSpec spec;
        uint64_t elements = 0;
        std::vector<uint64_t> tenants;
    };
    std::map<uint64_t, StaticGroup> groups;
    for (const TraceRequest& r : trace) {
        sim::serve::TableKey key = batchTableKey(r.function, r.spec);
        StaticGroup& g = groups[key.hash];
        g.function = r.function;
        g.spec = r.spec;
        g.elements += r.elements;
        if (std::find(g.tenants.begin(), g.tenants.end(), r.tenant) ==
            g.tenants.end())
            g.tenants.push_back(r.tenant);
    }
    std::map<uint64_t, MethodSpec> staticPick; ///< key hash -> spec
    uint32_t retunedConfigs = 0;
    for (auto& [hash, g] : groups) {
        double strictest = 0.0;
        bool allConstrained = true;
        for (uint64_t tenant : g.tenants) {
            double bound = slaFor(tenant).maxRmse;
            if (bound <= 0.0) {
                allConstrained = false;
                break;
            }
            strictest = strictest > 0.0 ? std::min(strictest, bound)
                                        : bound;
        }
        if (!allConstrained || strictest <= 0.0)
            continue;
        TunerConstraints tc;
        tc.metric = ErrorMetric::Auto;
        tc.placement = g.spec.placement;
        tc.expectedEvaluations = g.elements;
        tc.sampleSize = 1024;
        std::optional<TunerResult> pick =
            recommendSpec(g.function, strictest, tc);
        if (!pick)
            continue;
        sim::serve::TableKey picked =
            batchTableKey(g.function, pick->best.spec);
        if (picked.hash != hash) {
            staticPick[hash] = pick->best.spec;
            ++retunedConfigs;
        }
    }

    enum class Mode
    {
        AsRequested,
        StaticBest,
        Online,
    };

    ReplayResult results[3];
    for (Mode mode :
         {Mode::AsRequested, Mode::StaticBest, Mode::Online}) {
        std::fill(outputs.begin(), outputs.end(), 0.0f);
        sim::PimSystem sys(dpus);
        EvaluatorCatalog catalog;
        catalog.setChunkElements(chunk);

        std::optional<OnlineAutoTuner> tuner;
        if (mode == Mode::Online) {
            AutoTunerOptions topts;
            topts.exploreElements = explore;
            topts.maxCandidates = candidates;
            topts.mramBudgetBytes = mramBudget;
            if (defaultSla)
                topts.defaultSla = *defaultSla;
            tuner.emplace(catalog, topts);
            for (const auto& [tenant, sla] : slas)
                tuner->setTenantSla(tenant, sla);
        }

        sim::serve::BatchQueue queue;
        uint64_t off = 0;
        for (const TraceRequest& r : trace) {
            sim::serve::Request req;
            const MethodSpec* spec = &r.spec;
            if (mode == Mode::StaticBest) {
                auto it = staticPick.find(
                    batchTableKey(r.function, r.spec).hash);
                if (it != staticPick.end())
                    spec = &it->second;
            }
            req.table = catalog.add(r.function, *spec);
            req.tenant = r.tenant;
            req.input = inputs.data() + off;
            req.output = outputs.data() + off;
            req.elements = r.elements;
            queue.push(req);
            off += r.elements;
        }
        queue.close();

        sim::serve::PipelineOptions popts;
        popts.numTasklets = tasklets;
        popts.perDpuElements = perDpuElements;
        if (tuner)
            popts.autoTuner = &*tuner;
        sim::serve::ServePipeline pipeline(sys, catalog.provider(),
                                           popts);
        ReplayResult& rr = results[static_cast<int>(mode)];
        rr.report = pipeline.run(queue);
        for (const sim::serve::WaveStats& w : rr.report.waveStats)
            rr.totalCycles += w.totalCycles;
        rr.tenantError = measureError(trace, inputs, outputs);
        if (tuner) {
            rr.decisions = tuner->decisions();
            rr.streams = tuner->streamReports();
        }
    }

    const ReplayResult& asReq = results[0];
    const ReplayResult& staticBest = results[1];
    const ReplayResult& online = results[2];

    // Online ground truth against each tenant's accuracy clauses.
    bool slaMet = true;
    for (const auto& [tenant, te] : online.tenantError) {
        sim::serve::TenantSla sla = slaFor(tenant);
        if (sla.maxRmse > 0.0 && te.rmse() > sla.maxRmse)
            slaMet = false;
        if (sla.maxUlp > 0.0 && te.maxUlp > sla.maxUlp)
            slaMet = false;
    }
    bool complete = asReq.report.complete &&
                    staticBest.report.complete &&
                    online.report.complete;

    uint64_t switches = 0;
    for (const StreamReport& s : online.streams)
        switches += s.switches;

    std::cout << "== pimtune: " << trace.size() << " request"
              << (trace.size() == 1 ? "" : "s") << ", " << total
              << " elements, " << online.tenantError.size()
              << " tenant"
              << (online.tenantError.size() == 1 ? "" : "s")
              << " over " << dpus << " DPUs\n\n";

    std::cout << "-- replays (modeled DPU cycles, summed over"
                 " participating cores)\n";
    auto replayLine = [&](const char* name, const ReplayResult& rr) {
        std::printf("   %-14s %14llu cycles  %12.6f s makespan"
                    "  %s\n",
                    name,
                    static_cast<unsigned long long>(rr.totalCycles),
                    rr.report.modeledSeconds,
                    rr.report.complete ? "complete" : "INCOMPLETE");
    };
    replayLine("as-requested", asReq);
    replayLine("static-best", staticBest);
    replayLine("online", online);
    if (staticBest.totalCycles > 0) {
        double ratio = static_cast<double>(online.totalCycles) /
                       static_cast<double>(staticBest.totalCycles);
        long long saved =
            static_cast<long long>(staticBest.totalCycles) -
            static_cast<long long>(online.totalCycles);
        std::printf("   online vs static-best: %.4fx cycles"
                    " (%lld saved), %u config%s re-picked"
                    " statically\n",
                    ratio, saved, retunedConfigs,
                    retunedConfigs == 1 ? "" : "s");
    }

    std::cout << "\n-- tenants (ground-truth error over full output"
                 " buffers)\n";
    for (const auto& [tenant, te] : online.tenantError) {
        sim::serve::TenantSla sla = slaFor(tenant);
        std::string slaText =
            sla.constrained() ? sla.toText() : "(none)";
        auto reqIt = asReq.tenantError.find(tenant);
        double reqRmse = reqIt != asReq.tenantError.end()
                             ? reqIt->second.rmse()
                             : 0.0;
        bool met = true;
        if (sla.maxRmse > 0.0 && te.rmse() > sla.maxRmse)
            met = false;
        if (sla.maxUlp > 0.0 && te.maxUlp > sla.maxUlp)
            met = false;
        std::printf("   tenant %-4llu sla %-24s rmse %.3e ->"
                    " %.3e online (max %.0f ulp) %s\n",
                    static_cast<unsigned long long>(tenant),
                    slaText.c_str(), reqRmse, te.rmse(), te.maxUlp,
                    sla.constrained() ? (met ? "met" : "MISSED")
                                      : "untuned");
    }

    if (!online.streams.empty()) {
        std::cout << "\n-- streams (online)\n";
        for (const StreamReport& s : online.streams) {
            std::printf("   tenant %-4llu %-34s -> %-34s %s"
                        " %9.1f cyc/el  rmse %.3e\n",
                        static_cast<unsigned long long>(s.tenant),
                        s.requested.c_str(), s.chosen.c_str(),
                        s.tunable
                            ? (s.committed ? "committed"
                                           : "exploring")
                            : "untunable",
                        s.cyclesPerElement, s.rmse);
        }
    }

    if (!online.decisions.empty()) {
        std::cout << "\n-- decisions (online, " << switches
                  << " wave route switch"
                  << (switches == 1 ? "" : "es") << ")\n";
        for (const sim::serve::TuneDecision& d : online.decisions)
            std::printf("   #%-3llu tenant %-4llu %-10s %s -> %s\n",
                        static_cast<unsigned long long>(d.sequence),
                        static_cast<unsigned long long>(d.tenant),
                        d.reason.c_str(), d.fromTable.c_str(),
                        d.toTable.c_str());
    }

    if (!jsonPath.empty()) {
        std::ostringstream json;
        char buf[64];
        auto secs = [&](double v) -> const char* {
            std::snprintf(buf, sizeof(buf), "%.9e", v);
            return buf;
        };
        auto replayJson = [&](const char* name,
                              const ReplayResult& rr) {
            json << "  \"" << name << "\": {\n"
                 << "    \"total_cycles\": " << rr.totalCycles
                 << ",\n    \"compute_cycles\": "
                 << rr.report.computeCycles
                 << ",\n    \"waves\": " << rr.report.waves
                 << ",\n    \"modeled_seconds\": "
                 << secs(rr.report.modeledSeconds)
                 << ",\n    \"complete\": "
                 << (rr.report.complete ? "true" : "false")
                 << "\n  }";
        };
        json << "{\n  \"requests\": " << trace.size()
             << ",\n  \"elements\": " << total
             << ",\n  \"tenants\": " << online.tenantError.size()
             << ",\n  \"dpus\": " << dpus << ",\n";
        replayJson("as_requested", asReq);
        json << ",\n";
        replayJson("static_best", staticBest);
        json << ",\n";
        replayJson("online", online);
        double ratio =
            staticBest.totalCycles > 0
                ? static_cast<double>(online.totalCycles) /
                      static_cast<double>(staticBest.totalCycles)
                : 0.0;
        std::snprintf(buf, sizeof(buf), "%.6f", ratio);
        json << ",\n  \"static_retuned_configs\": " << retunedConfigs
             << ",\n  \"online_switches\": " << switches
             << ",\n  \"online_decisions\": "
             << online.decisions.size()
             << ",\n  \"cycles_saved_vs_static\": "
             << (static_cast<long long>(staticBest.totalCycles) -
                 static_cast<long long>(online.totalCycles))
             << ",\n  \"cycles_ratio_vs_static\": " << buf
             << ",\n  \"sla_met\": " << (slaMet ? "true" : "false")
             << ",\n  \"tenant_results\": [";
        bool first = true;
        for (const auto& [tenant, te] : online.tenantError) {
            sim::serve::TenantSla sla = slaFor(tenant);
            auto reqIt = asReq.tenantError.find(tenant);
            auto stIt = staticBest.tenantError.find(tenant);
            json << (first ? "" : ",") << "\n    {\"tenant\": "
                 << tenant << ", \"sla\": \""
                 << (sla.constrained() ? sla.toText() : "")
                 << "\", \"rmse_as_requested\": "
                 << secs(reqIt != asReq.tenantError.end()
                             ? reqIt->second.rmse()
                             : 0.0);
            json << ", \"rmse_static\": "
                 << secs(stIt != staticBest.tenantError.end()
                             ? stIt->second.rmse()
                             : 0.0);
            json << ", \"rmse_online\": " << secs(te.rmse());
            json << ", \"max_ulp_online\": " << secs(te.maxUlp)
                 << "}";
            first = false;
        }
        json << "\n  ]\n}\n";
        if (jsonPath == "-") {
            std::cout << "\n" << json.str();
        } else {
            std::ofstream jsonOut(jsonPath);
            if (!jsonOut) {
                std::cerr << "pimtune: cannot write '" << jsonPath
                          << "'\n";
                return 2;
            }
            jsonOut << json.str();
            std::cout << "\nwrote " << jsonPath << "\n";
        }
    }

    return complete && slaMet ? 0 : 1;
}
