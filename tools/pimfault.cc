/**
 * @file
 * pimfault: replay a FaultPlan file against a sharded multi-DPU run
 * and print the blast radius — which cores failed, how many elements
 * were re-sharded onto survivors, what the retries cost, and whether
 * the degraded result still meets the analytic error bound.
 *
 *   pimfault --plan scenario.plan [workload options]
 *   pimfault --demo > scenario.plan        # built-in demo scenario
 *   pimfault --print --plan scenario.plan  # parse + echo canonical
 *
 * Options:
 *   --plan PATH       fault plan file to replay (see --demo for the
 *                     text format)
 *   --demo            print a built-in demo plan to stdout and exit
 *   --print           parse the plan, echo its canonical text, exit
 *   --seed N          override the plan's seed
 *   --function NAME   sin, cos, tanh, exp, log, ... (default sin)
 *   --method NAME     llut, mlut, cordic, ... (default llut)
 *   --elements N      input elements (default 4096)
 *   --dpus N          simulated DPUs (default 16)
 *   --tasklets N      tasklets per DPU (default 8)
 *   --log2-entries N  LUT entry budget (default 10)
 *   --iterations N    CORDIC iterations (default 24)
 *   --metrics PATH    dump the metrics registry (fault/... counters)
 *
 * Exit status: 0 when the run completed and the degraded result is
 * within the error-model bound, 1 when it is degraded beyond the
 * bound / incomplete / infeasible, 2 on usage or plan-parse errors.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "pimsim/fault/fault.h"
#include "pimsim/obs/metrics.h"
#include "transpim/harness.h"

namespace {

using namespace tpl;
using namespace tpl::transpim;

void
usage()
{
    std::cerr
        << "usage: pimfault --plan PATH [--print] [--seed N]\n"
           "                [--function NAME] [--method NAME]"
           " [--elements N]\n"
           "                [--dpus N] [--tasklets N]"
           " [--log2-entries N]\n"
           "                [--iterations N] [--metrics PATH]\n"
           "       pimfault --demo\n";
}

const std::map<std::string, Function>&
functionTable()
{
    static const std::map<std::string, Function> table = {
        {"sin", Function::Sin},       {"cos", Function::Cos},
        {"tan", Function::Tan},       {"sinh", Function::Sinh},
        {"cosh", Function::Cosh},     {"tanh", Function::Tanh},
        {"exp", Function::Exp},       {"log", Function::Log},
        {"sqrt", Function::Sqrt},     {"gelu", Function::Gelu},
        {"sigmoid", Function::Sigmoid}, {"cndf", Function::Cndf},
        {"atan", Function::Atan},     {"asin", Function::Asin},
        {"acos", Function::Acos},     {"atanh", Function::Atanh},
        {"log2", Function::Log2},     {"log10", Function::Log10},
        {"exp2", Function::Exp2},     {"rsqrt", Function::Rsqrt},
        {"erf", Function::Erf},       {"silu", Function::Silu},
        {"softplus", Function::Softplus},
    };
    return table;
}

const std::map<std::string, Method>&
methodTable()
{
    static const std::map<std::string, Method> table = {
        {"cordic", Method::Cordic},
        {"cordic-fixed", Method::CordicFixed},
        {"cordic-lut", Method::CordicLut},
        {"mlut", Method::MLut},
        {"llut", Method::LLut},
        {"llut-fixed", Method::LLutFixed},
        {"dlut", Method::DLut},
        {"dllut", Method::DlLut},
        {"poly", Method::Poly},
    };
    return table;
}

bool
parseU32(const std::string& text, uint32_t& out)
{
    try {
        size_t pos = 0;
        unsigned long v = std::stoul(text, &pos, 0);
        if (pos != text.size() || v > UINT32_MAX)
            return false;
        out = static_cast<uint32_t>(v);
        return true;
    } catch (...) {
        return false;
    }
}

/** A recoverable-by-construction scenario: one dead core, one slow
 * core, rare DMA and transfer timeouts. No silent corruption, so the
 * replayed run must complete within the error bound (exit 0). */
const char* kDemoPlan =
    "# pimfault demo scenario: replay with\n"
    "#   pimfault --plan <this file>\n"
    "seed 7\n"
    "fault kind=dpu-hard-fail dpu=2 prob=1\n"
    "fault kind=dpu-straggler dpu=5 prob=1 slowdown=3\n"
    "fault kind=dma-timeout prob=0.001 stall=2000\n"
    "fault kind=transfer-timeout prob=0.02\n";

} // namespace

int
main(int argc, char** argv)
{
    Function function = Function::Sin;
    MethodSpec spec;
    spec.log2Entries = 10;
    ResilientOptions opts;
    opts.elements = 4096;
    opts.dpus = 16;
    opts.tasklets = 8;
    std::string planPath;
    std::string metricsPath;
    bool printOnly = false;
    bool demo = false;
    bool seedOverride = false;
    uint32_t seedValue = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        auto u32Arg = [&](uint32_t& out) {
            if (!parseU32(value(), out)) {
                usage();
                std::exit(2);
            }
        };
        if (arg == "--plan") {
            planPath = value();
        } else if (arg == "--demo") {
            demo = true;
        } else if (arg == "--print") {
            printOnly = true;
        } else if (arg == "--seed") {
            u32Arg(seedValue);
            seedOverride = true;
        } else if (arg == "--function") {
            std::string name = value();
            auto it = functionTable().find(name);
            if (it == functionTable().end()) {
                std::cerr << "pimfault: unknown function '" << name
                          << "'\n";
                return 2;
            }
            function = it->second;
        } else if (arg == "--method") {
            std::string name = value();
            auto it = methodTable().find(name);
            if (it == methodTable().end()) {
                std::cerr << "pimfault: unknown method '" << name
                          << "'\n";
                return 2;
            }
            spec.method = it->second;
        } else if (arg == "--elements") {
            u32Arg(opts.elements);
        } else if (arg == "--dpus") {
            u32Arg(opts.dpus);
        } else if (arg == "--tasklets") {
            u32Arg(opts.tasklets);
        } else if (arg == "--log2-entries") {
            u32Arg(spec.log2Entries);
        } else if (arg == "--iterations") {
            u32Arg(spec.iterations);
        } else if (arg == "--metrics") {
            metricsPath = value();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "pimfault: unknown option '" << arg << "'\n";
            usage();
            return 2;
        }
    }

    if (demo) {
        std::cout << kDemoPlan;
        return 0;
    }
    if (planPath.empty()) {
        usage();
        return 2;
    }

    std::ifstream in(planPath);
    if (!in) {
        std::cerr << "pimfault: cannot read '" << planPath << "'\n";
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    std::optional<sim::fault::FaultPlan> plan =
        sim::fault::FaultPlan::parse(text.str(), &error);
    if (!plan) {
        std::cerr << "pimfault: " << planPath << ": " << error << "\n";
        return 2;
    }
    if (seedOverride)
        plan->seed = seedValue;

    if (printOnly) {
        std::cout << plan->toText();
        return 0;
    }

    if (!FunctionEvaluator::supports(function, spec)) {
        std::cerr << "pimfault: unsupported combination "
                  << functionName(function) << " / "
                  << methodLabel(spec) << "\n";
        return 1;
    }

    obs::Registry::global().setEnabled(true);
    opts.plan = *plan;
    ResilientResult res = runResilientMicrobench(function, spec, opts);
    if (!res.feasible) {
        std::cerr << "pimfault: configuration infeasible (tables do"
                     " not fit the PIM core)\n";
        return 1;
    }

    std::cout << "== pimfault: " << functionName(function) << " / "
              << methodLabel(spec) << "\n";
    std::cout << "   plan " << planPath << " (seed " << plan->seed
              << ", " << plan->faults.size() << " fault spec"
              << (plan->faults.size() == 1 ? "" : "s") << "), "
              << opts.elements << " elements over " << opts.dpus
              << " DPUs\n\n";

    std::cout << "-- blast radius\n";
    std::printf("   waves               %10u\n", res.run.waves);
    std::printf("   failed DPUs         %10zu of %u  [",
                res.run.failedDpus.size(), res.totalDpus);
    for (size_t i = 0; i < res.run.failedDpus.size(); ++i)
        std::printf("%s%u", i ? " " : "", res.run.failedDpus[i]);
    std::printf("]\n");
    std::printf("   healthy after run   %10u\n", res.healthyDpus);
    std::printf("   resharded elements  %10llu\n",
                static_cast<unsigned long long>(
                    res.run.reshardedElements));
    std::printf("   transfer retries    %10u\n",
                res.run.transferRetries);
    std::printf("   transfer failures   %10u\n",
                res.run.transferFailures);
    std::printf("   modeled seconds     %13.6f\n",
                res.run.modeledSeconds);

    std::cout << "\n-- degraded result\n";
    std::printf("   complete            %10s\n",
                res.run.complete ? "yes" : "NO");
    std::printf("   RMSE                %13.3e (bound %.3e x %.0f)\n",
                res.error.rmse, res.predictedRmse,
                opts.errorBoundFactor);
    std::printf("   max error           %13.3e\n", res.error.maxAbs);
    std::printf("   within error bound  %10s\n",
                res.withinErrorBound ? "yes" : "NO");

    if (!metricsPath.empty()) {
        if (!obs::Registry::global().writeJson(metricsPath)) {
            std::cerr << "pimfault: cannot write '" << metricsPath
                      << "'\n";
            return 2;
        }
        std::cout << "\nwrote " << metricsPath << "\n";
    }
    return res.withinErrorBound ? 0 : 1;
}
