/**
 * @file
 * pimlint: standalone static checker for mini-ISA assembly files.
 *
 * Assembles each input file and runs the full pimcheck static
 * verifier over it (see src/pimsim/analysis/verify.h): uninitialized
 * registers, branch validity, unreachable code, statically-known
 * WRAM/MRAM bounds, DMA legality, and barrier balance. Two deeper
 * passes are opt-in: `--cost` computes the static cycle-bound
 * certificate (bound.h) and `--interleave N` runs the bounded
 * exhaustive tasklet-interleaving explorer (interleave.h).
 *
 *   pimlint [options] <file.s ...>      ('-' reads stdin)
 *
 * Options:
 *   --wram BYTES      scratchpad size checked against (default 65536)
 *   --mram BYTES      MRAM bank size (default 67108864)
 *   --max-dma BYTES   per-transfer DMA cap (default 2048)
 *   --tasklets N      launch size for --cost / default for
 *                     --interleave (default 1)
 *   --cost            compute the static [BCET, WCET] cycle bound;
 *                     an unbounded kernel is an error
 *   --interleave N    explore all tasklet interleavings at N
 *                     tasklets; races and deadlocks are errors, an
 *                     inconclusive exploration is a warning
 *   --json            machine-readable output (schema in
 *                     docs/analysis.md); implies -q for text
 *   --werror          treat warnings as errors
 *   -q, --quiet       suppress diagnostics, exit status only
 *
 * Exit status: 0 clean (warnings allowed unless --werror), 1 when any
 * error diagnostic fired, 2 on usage / I/O / assembly errors.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pimsim/analysis/certificate.h"
#include "pimsim/analysis/loops.h"
#include "pimsim/analysis/verify.h"
#include "pimsim/isa.h"

namespace {

void
usage()
{
    std::cerr
        << "usage: pimlint [--wram BYTES] [--mram BYTES]"
           " [--max-dma BYTES] [--tasklets N] [--cost]"
           " [--interleave N] [--json] [--werror] [-q] <file.s ...|->\n";
}

bool
parseBytes(const std::string& text, uint64_t& out)
{
    try {
        size_t pos = 0;
        unsigned long long v = std::stoull(text, &pos, 0);
        if (pos != text.size())
            return false;
        out = v;
        return true;
    } catch (...) {
        return false;
    }
}

/** "path/to/llut.s" -> "llut": the certificate's kernel name. */
std::string
kernelName(const std::string& file)
{
    if (file == "-")
        return "stdin";
    size_t slash = file.find_last_of('/');
    std::string base =
        slash == std::string::npos ? file : file.substr(slash + 1);
    size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base = base.substr(0, dot);
    return base;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tpl::sim;

    check::VerifyOptions options;
    bool werror = false;
    bool quiet = false;
    bool wantCost = false;
    bool wantJson = false;
    uint32_t tasklets = 1;
    uint32_t interleaveTasklets = 0; // 0 = interleaving not requested
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto bytesArg = [&](uint64_t& out) {
            if (i + 1 >= argc || !parseBytes(argv[++i], out)) {
                usage();
                std::exit(2);
            }
        };
        if (arg == "--wram") {
            uint64_t v = 0;
            bytesArg(v);
            options.wramBytes = static_cast<uint32_t>(v);
        } else if (arg == "--mram") {
            bytesArg(options.mramBytes);
        } else if (arg == "--max-dma") {
            uint64_t v = 0;
            bytesArg(v);
            options.maxDmaBytes = static_cast<uint32_t>(v);
        } else if (arg == "--tasklets") {
            uint64_t v = 0;
            bytesArg(v);
            if (v == 0) {
                usage();
                return 2;
            }
            tasklets = static_cast<uint32_t>(v);
        } else if (arg == "--cost") {
            wantCost = true;
        } else if (arg == "--interleave") {
            uint64_t v = 0;
            bytesArg(v);
            if (v == 0) {
                usage();
                return 2;
            }
            interleaveTasklets = static_cast<uint32_t>(v);
        } else if (arg == "--json") {
            wantJson = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "pimlint: unknown option '" << arg << "'\n";
            usage();
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        usage();
        return 2;
    }

    bool anyError = false;
    uint64_t errorCount = 0;
    uint64_t warningCount = 0;
    std::string json = "{\n  \"files\": [";
    bool firstFile = true;
    for (const std::string& file : files) {
        std::string source;
        if (file == "-") {
            std::ostringstream buf;
            buf << std::cin.rdbuf();
            source = buf.str();
        } else {
            std::ifstream in(file);
            if (!in) {
                std::cerr << "pimlint: cannot open '" << file << "'\n";
                return 2;
            }
            std::ostringstream buf;
            buf << in.rdbuf();
            source = buf.str();
        }

        Program program;
        try {
            program = assemble(source);
        } catch (const AsmError& e) {
            std::cerr << file << ": " << e.what() << "\n";
            return 2;
        }

        std::map<uint32_t, uint64_t> trips =
            check::parseTripAnnotations(source);
        options.tripAnnotations = trips;
        auto diags = check::verify(program, options);

        check::KernelCertificate cert;
        cert.kernel = kernelName(file);
        if (wantCost) {
            check::BoundOptions bopts;
            bopts.tasklets = tasklets;
            bopts.tripAnnotations = trips;
            cert.bound = check::computeBound(program, bopts);
            if (!cert.bound.bounded) {
                check::Diagnostic d;
                d.kind = check::CheckKind::UnboundedCost;
                d.severity = check::Severity::Error;
                d.line = 0;
                d.message =
                    "no finite cycle bound: " + cert.bound.reason;
                diags.push_back(d);
            }
        }
        if (interleaveTasklets > 0) {
            check::InterleaveOptions iopts;
            iopts.tasklets = interleaveTasklets;
            iopts.wramBytes = options.wramBytes;
            iopts.mramBytes = options.mramBytes;
            check::InterleaveExplorer explorer(program, iopts);
            check::InterleaveResult res = explorer.explore();
            cert.interleaveChecked = true;
            cert.interleaveTasklets = interleaveTasklets;
            cert.interleave = res.verdict;
            cert.interleavePhases = res.phases;
            for (const auto& d : res.diags)
                diags.push_back(d);
            if (res.verdict ==
                check::InterleaveVerdict::Inconclusive) {
                check::Diagnostic d;
                d.kind = check::CheckKind::TaskletRace;
                d.severity = check::Severity::Warning;
                d.line = 0;
                d.message = "interleaving exploration inconclusive" +
                            (res.note.empty() ? std::string()
                                              : ": " + res.note);
                diags.push_back(d);
            }
        }

        for (const auto& diag : diags) {
            if (!quiet && !wantJson)
                std::cout << file << ": " << check::format(diag)
                          << "\n";
            if (diag.severity == check::Severity::Error)
                ++errorCount;
            else if (diag.severity == check::Severity::Warning)
                ++warningCount;
            if (diag.severity == check::Severity::Error ||
                (werror && diag.severity == check::Severity::Warning))
                anyError = true;
        }
        if (!quiet && !wantJson && wantCost && cert.bound.bounded) {
            std::cout << file << ": cost: ["
                      << cert.bound.bcet << ", " << cert.bound.wcet
                      << "] cycles @ " << cert.bound.tasklets
                      << " tasklet(s)"
                      << (cert.bound.usedAnnotation
                              ? " (uses @trip annotations)"
                              : "")
                      << (cert.bound.usedTripUpper
                              ? " (break-loop trip upper bound; "
                                "BCET is the loop-skipping path)"
                              : "")
                      << "\n";
        }
        if (!quiet && !wantJson && cert.interleaveChecked) {
            std::cout << file << ": interleave: "
                      << check::toString(cert.interleave) << " @ "
                      << cert.interleaveTasklets << " tasklets, "
                      << cert.interleavePhases << " phase(s)\n";
        }

        if (wantJson) {
            std::string entry = "\n    {\n      \"file\": \"" +
                                check::jsonEscape(file) + "\",\n";
            entry += "      \"diagnostics\": [";
            for (size_t d = 0; d < diags.size(); ++d) {
                entry += std::string(d ? "," : "") +
                         "\n        {\"kind\": \"" +
                         check::toString(diags[d].kind) +
                         "\", \"severity\": \"" +
                         check::toString(diags[d].severity) +
                         "\", \"line\": " +
                         std::to_string(diags[d].line) +
                         ", \"message\": \"" +
                         check::jsonEscape(diags[d].message) + "\"}";
            }
            entry += diags.empty() ? "],\n" : "\n      ],\n";
            if (wantCost || cert.interleaveChecked) {
                // serializeCertificate emits a multi-line document;
                // re-indent it to sit inside the files[] entry.
                std::string doc = check::serializeCertificate(cert);
                std::string indented;
                indented.reserve(doc.size());
                for (size_t p = 0; p < doc.size(); ++p) {
                    indented += doc[p];
                    if (doc[p] == '\n' && p + 1 < doc.size())
                        indented += "      ";
                }
                while (!indented.empty() &&
                       (indented.back() == '\n' ||
                        indented.back() == ' '))
                    indented.pop_back();
                entry += "      \"certificate\": " + indented + "\n";
            } else {
                entry += "      \"certificate\": null\n";
            }
            entry += "    }";
            json += std::string(firstFile ? "" : ",") + entry;
            firstFile = false;
        }
    }
    if (wantJson) {
        json += "\n  ],\n";
        json += "  \"errors\": " + std::to_string(errorCount) + ",\n";
        json += "  \"warnings\": " + std::to_string(warningCount) +
                "\n}\n";
        std::cout << json;
    }
    if (anyError) {
        // Summary so callers (and CI logs) see the totals even when
        // individual diagnostics scrolled past or -q / --json was
        // given (stderr, so JSON output on stdout stays parseable).
        std::cerr << "pimlint: " << errorCount << " error(s), "
                  << warningCount << " warning(s)";
        if (werror && errorCount == 0)
            std::cerr << " (warnings treated as errors)";
        std::cerr << "\n";
    }
    return anyError ? 1 : 0;
}
