/**
 * @file
 * pimlint: standalone static checker for mini-ISA assembly files.
 *
 * Assembles each input file and runs the full pimcheck static
 * verifier over it (see src/pimsim/analysis/verify.h): uninitialized
 * registers, branch validity, unreachable code, statically-known
 * WRAM/MRAM bounds, DMA legality, and barrier balance.
 *
 *   pimlint [options] <file.s ...>      ('-' reads stdin)
 *
 * Options:
 *   --wram BYTES      scratchpad size checked against (default 65536)
 *   --mram BYTES      MRAM bank size (default 67108864)
 *   --max-dma BYTES   per-transfer DMA cap (default 2048)
 *   --werror          treat warnings as errors
 *   -q, --quiet       suppress diagnostics, exit status only
 *
 * Exit status: 0 clean (warnings allowed unless --werror), 1 when any
 * error diagnostic fired, 2 on usage / I/O / assembly errors.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pimsim/analysis/verify.h"
#include "pimsim/isa.h"

namespace {

void
usage()
{
    std::cerr
        << "usage: pimlint [--wram BYTES] [--mram BYTES]"
           " [--max-dma BYTES] [--werror] [-q] <file.s ...|->\n";
}

bool
parseBytes(const std::string& text, uint64_t& out)
{
    try {
        size_t pos = 0;
        unsigned long long v = std::stoull(text, &pos, 0);
        if (pos != text.size())
            return false;
        out = v;
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace tpl::sim;

    check::VerifyOptions options;
    bool werror = false;
    bool quiet = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto bytesArg = [&](uint64_t& out) {
            if (i + 1 >= argc || !parseBytes(argv[++i], out)) {
                usage();
                std::exit(2);
            }
        };
        if (arg == "--wram") {
            uint64_t v = 0;
            bytesArg(v);
            options.wramBytes = static_cast<uint32_t>(v);
        } else if (arg == "--mram") {
            bytesArg(options.mramBytes);
        } else if (arg == "--max-dma") {
            uint64_t v = 0;
            bytesArg(v);
            options.maxDmaBytes = static_cast<uint32_t>(v);
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "-q" || arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "pimlint: unknown option '" << arg << "'\n";
            usage();
            return 2;
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty()) {
        usage();
        return 2;
    }

    bool anyError = false;
    uint64_t errorCount = 0;
    uint64_t warningCount = 0;
    for (const std::string& file : files) {
        std::string source;
        if (file == "-") {
            std::ostringstream buf;
            buf << std::cin.rdbuf();
            source = buf.str();
        } else {
            std::ifstream in(file);
            if (!in) {
                std::cerr << "pimlint: cannot open '" << file << "'\n";
                return 2;
            }
            std::ostringstream buf;
            buf << in.rdbuf();
            source = buf.str();
        }

        Program program;
        try {
            program = assemble(source);
        } catch (const AsmError& e) {
            std::cerr << file << ": " << e.what() << "\n";
            return 2;
        }

        auto diags = check::verify(program, options);
        for (const auto& diag : diags) {
            if (!quiet)
                std::cout << file << ": " << check::format(diag)
                          << "\n";
            if (diag.severity == check::Severity::Error)
                ++errorCount;
            else if (diag.severity == check::Severity::Warning)
                ++warningCount;
            if (diag.severity == check::Severity::Error ||
                (werror && diag.severity == check::Severity::Warning))
                anyError = true;
        }
    }
    if (anyError) {
        // Summary so callers (and CI logs) see the totals even when
        // individual diagnostics scrolled past or -q was given.
        std::cerr << "pimlint: " << errorCount << " error(s), "
                  << warningCount << " warning(s)";
        if (werror && errorCount == 0)
            std::cerr << " (warnings treated as errors)";
        std::cerr << "\n";
    }
    return anyError ? 1 : 0;
}
