/**
 * @file
 * Figure 9: execution time of the three full workloads (Blackscholes,
 * Sigmoid, Softmax) on the modeled 2545-DPU PIM system vs the CPU
 * baselines.
 *
 * Methodology (see EXPERIMENTS.md): PIM variants simulate a few DPUs
 * executing their exact per-core element share and project the slowest
 * core to the full machine; host<->PIM transfers are modeled at the
 * published parallel-transfer bandwidths; CPU baselines run real libm
 * code on this host (subset, scaled), with the 32-thread number
 * modeled from the single-thread measurement when the host lacks the
 * cores.
 */

#include <cstdio>
#include <cstdlib>

#include "workloads/activations.h"
#include "workloads/blackscholes.h"

namespace {

using namespace tpl::work;

void
printRows(const std::vector<WorkloadResult>& rows)
{
    std::printf("%-26s %12s %12s %12s %12s %12s\n", "variant",
                "total_s", "kernel_s", "h2p_s", "p2h_s", "maxerr");
    for (const auto& r : rows) {
        std::printf("%-26s %12.4f %12.4f %12.4f %12.4f %12.3e\n",
                    r.variant.c_str(), r.seconds, r.pimKernelSeconds,
                    r.hostToPimSeconds, r.pimToHostSeconds,
                    r.maxAbsError);
    }
}

double
variantSeconds(const std::vector<WorkloadResult>& rows,
               const std::string& name)
{
    for (const auto& r : rows) {
        if (r.variant == name)
            return r.seconds;
    }
    return 0.0;
}

} // namespace

int
main()
{
    WorkloadConfig cfg;
    if (const char* env = std::getenv("TPL_BENCH_FULL")) {
        (void)env;
        cfg.totalElements = 10'000'000;
        cfg.elementsPerSimDpu = 1u << 12;
        cfg.simulatedDpus = 4;
    } else {
        cfg.totalElements = 10'000'000;
        cfg.elementsPerSimDpu = 2048;
        cfg.simulatedDpus = 2;
        cfg.cpuSampleElements = 1'000'000;
    }

    std::printf("=== Figure 9: full workloads on the modeled %u-DPU "
                "system (%u tasklets/DPU) ===\n\n",
                cfg.systemDpus, cfg.tasklets);

    std::printf("--- Blackscholes (%llu options) ---\n",
                (unsigned long long)cfg.totalElements);
    auto bs = runBlackscholesAll(cfg);
    printRows(bs);

    double bsPoly = variantSeconds(bs, "PIM poly");
    double bsLlut = variantSeconds(bs, "PIM L-LUT interp.");
    double bsFixed = variantSeconds(bs, "PIM fixed L-LUT interp.");
    double bsCpu32 = variantSeconds(bs, "CPU 32T");
    std::printf("\n# poly / L-LUT speedup: %.1fx (paper: 5-10x)\n",
                bsPoly / bsLlut);
    std::printf("# fixed L-LUT vs CPU 32T: %.2fx %s (paper: fixed "
                "L-LUT 62%% faster)\n\n",
                bsCpu32 / bsFixed,
                bsCpu32 > bsFixed ? "faster" : "slower");

    WorkloadConfig actCfg = cfg;
    actCfg.totalElements = 30'000'000;

    std::printf("--- Sigmoid (%llu elements) ---\n",
                (unsigned long long)actCfg.totalElements);
    auto sig = runSigmoidAll(actCfg);
    printRows(sig);
    std::printf("\n# poly / L-LUT speedup: %.2fx (paper: 1.5-1.75x)\n\n",
                variantSeconds(sig, "PIM poly") /
                    variantSeconds(sig, "PIM L-LUT interp."));

    std::printf("--- Softmax (%llu elements) ---\n",
                (unsigned long long)actCfg.totalElements);
    auto soft = runSoftmaxAll(actCfg);
    printRows(soft);
    std::printf("\n# poly / L-LUT speedup: %.2fx (paper: 1.5-1.75x)\n",
                variantSeconds(soft, "PIM poly") /
                    variantSeconds(soft, "PIM L-LUT interp."));
    return 0;
}
