/**
 * @file
 * Ablation: the auto-tuner's recommendations across the tradeoff
 * space.
 *
 * Sweeps the accuracy target and the expected evaluation count and
 * prints which method the tuner picks - a compact, machine-generated
 * restatement of the paper's Key Takeaways: CORDIC for few
 * evaluations (flat setup), interpolated/fixed L-LUT for streaming
 * workloads, CORDIC-family again when the memory budget is tight at
 * high accuracy.
 *
 * With `--json PATH` ('-' for stdout) the same recommendations are
 * also emitted as a JSON array, one object per (sweep, target,
 * evals) cell, so the bench harness can embed them next to the
 * online tuner_sweep results and CI can diff online vs static picks.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <string>

#include "transpim/tuner.h"

namespace {

using namespace tpl::transpim;

void
sweep(Function f, const char* title, TunerConstraints base,
      std::ostream* json, bool* jsonFirst)
{
    std::printf("--- %s ---\n", title);
    std::printf("%-12s %-12s %-24s %12s %12s %10s\n", "targetRMSE",
                "evals", "choice", "rmse", "instr/eval", "bytes");
    for (double target : {1e-3, 1e-5, 1e-7}) {
        for (uint64_t evals : {100ull, 1'000'000ull}) {
            TunerConstraints c = base;
            c.expectedEvaluations = evals;
            auto rec = recommendSpec(f, target, c);
            if (json) {
                char buf[64];
                *json << (*jsonFirst ? "" : ",") << "\n    {"
                      << "\"sweep\": \"" << title << "\", "
                      << "\"function\": \"" << functionName(f)
                      << "\", ";
                std::snprintf(buf, sizeof(buf), "%.0e", target);
                *json << "\"target_rmse\": " << buf
                      << ", \"evals\": " << evals
                      << ", \"table_budget_bytes\": "
                      << base.maxTableBytes << ", \"feasible\": "
                      << (rec ? "true" : "false");
                if (rec) {
                    *json << ", \"choice\": \""
                          << methodLabel(rec->best.spec) << "\"";
                    std::snprintf(buf, sizeof(buf), "%.6e",
                                  rec->best.rmse);
                    *json << ", \"rmse\": " << buf;
                    std::snprintf(buf, sizeof(buf), "%.1f",
                                  rec->best.instructionsPerEval);
                    *json << ", \"instructions_per_eval\": " << buf
                          << ", \"table_bytes\": "
                          << rec->best.tableBytes;
                }
                *json << "}";
                *jsonFirst = false;
            }
            if (!rec) {
                std::printf("%-12.0e %-12llu (no feasible method)\n",
                            target, (unsigned long long)evals);
                continue;
            }
            std::printf("%-12.0e %-12llu %-24s %12.2e %12.1f %10u\n",
                        target, (unsigned long long)evals,
                        methodLabel(rec->best.spec).c_str(),
                        rec->best.rmse,
                        rec->best.instructionsPerEval,
                        rec->best.tableBytes);
        }
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: ablation_tuner [--json PATH]\n");
            return 2;
        }
    }

    std::printf("=== Ablation: auto-tuner recommendations ===\n\n");

    std::ostringstream json;
    std::ostream* jsonOut = jsonPath.empty() ? nullptr : &json;
    bool jsonFirst = true;
    if (jsonOut)
        json << "{\n  \"recommendations\": [";

    TunerConstraints roomy;
    roomy.maxTableBytes = 48 * 1024;
    sweep(Function::Sin, "sine, 48 KB table budget", roomy, jsonOut,
          &jsonFirst);

    TunerConstraints tight;
    tight.maxTableBytes = 512;
    sweep(Function::Sin, "sine, 512 B table budget (dataset-heavy "
                         "kernel)", tight, jsonOut, &jsonFirst);

    sweep(Function::Tanh, "tanh, 48 KB table budget", roomy, jsonOut,
          &jsonFirst);

    if (jsonOut) {
        json << "\n  ]\n}\n";
        if (jsonPath == "-") {
            std::cout << json.str();
        } else {
            std::ofstream out(jsonPath);
            if (!out) {
                std::fprintf(stderr,
                             "ablation_tuner: cannot write '%s'\n",
                             jsonPath.c_str());
                return 2;
            }
            out << json.str();
            std::printf("wrote %s\n", jsonPath.c_str());
        }
    }
    return 0;
}
