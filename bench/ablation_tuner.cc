/**
 * @file
 * Ablation: the auto-tuner's recommendations across the tradeoff
 * space.
 *
 * Sweeps the accuracy target and the expected evaluation count and
 * prints which method the tuner picks - a compact, machine-generated
 * restatement of the paper's Key Takeaways: CORDIC for few
 * evaluations (flat setup), interpolated/fixed L-LUT for streaming
 * workloads, CORDIC-family again when the memory budget is tight at
 * high accuracy.
 */

#include <cstdio>

#include "transpim/tuner.h"

namespace {

using namespace tpl::transpim;

void
sweep(Function f, const char* title, TunerConstraints base)
{
    std::printf("--- %s ---\n", title);
    std::printf("%-12s %-12s %-24s %12s %12s %10s\n", "targetRMSE",
                "evals", "choice", "rmse", "instr/eval", "bytes");
    for (double target : {1e-3, 1e-5, 1e-7}) {
        for (uint64_t evals : {100ull, 1'000'000ull}) {
            TunerConstraints c = base;
            c.expectedEvaluations = evals;
            auto rec = recommendSpec(f, target, c);
            if (!rec) {
                std::printf("%-12.0e %-12llu (no feasible method)\n",
                            target, (unsigned long long)evals);
                continue;
            }
            std::printf("%-12.0e %-12llu %-24s %12.2e %12.1f %10u\n",
                        target, (unsigned long long)evals,
                        methodLabel(rec->best.spec).c_str(),
                        rec->best.rmse,
                        rec->best.instructionsPerEval,
                        rec->best.tableBytes);
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Ablation: auto-tuner recommendations ===\n\n");

    TunerConstraints roomy;
    roomy.maxTableBytes = 48 * 1024;
    sweep(Function::Sin, "sine, 48 KB table budget", roomy);

    TunerConstraints tight;
    tight.maxTableBytes = 512;
    sweep(Function::Sin, "sine, 512 B table budget (dataset-heavy "
                         "kernel)", tight);

    sweep(Function::Tanh, "tanh, 48 KB table budget", roomy);
    return 0;
}
