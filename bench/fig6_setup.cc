/**
 * @file
 * Figure 6: setup time on the host CPU as a function of RMSE for every
 * TransPimLib implementation of sine.
 *
 * Setup = measured wall-clock table generation on the host plus the
 * modeled table transfer to the PIM core's DRAM bank. The paper's
 * takeaway: CORDIC setup is flat and tiny (a handful of angle-table
 * entries) while LUT setup grows with the table size, so CORDIC wins
 * for kernels that evaluate only a few transcendentals.
 */

#include <cstdio>

#include "sweep_common.h"

int
main()
{
    using namespace tpl::bench;
    std::printf("=== Figure 6: host setup time vs RMSE (sine) ===\n");
    // Serial sweep: this figure's metric is measured host wall-clock
    // generation time, which concurrent points would inflate.
    auto points =
        runMethodSweep(tpl::transpim::Function::Sin, false, false);
    printHeader("setup seconds (generation + transfer)", "setup_s");
    for (const auto& p : points)
        printRow(p, p.result.setupSeconds);

    // Key Takeaway 2 check: break-even operation count between CORDIC
    // and the best L-LUT at comparable accuracy.
    const SweepPoint* bestCordic = nullptr;
    const SweepPoint* bestLlut = nullptr;
    for (const auto& p : points) {
        if (p.series == "CORDIC" &&
            (!bestCordic ||
             p.result.error.rmse < bestCordic->result.error.rmse))
            bestCordic = &p;
        if (p.series.find("L-LUT interp.") == 0 &&
            (!bestLlut ||
             p.result.error.rmse < bestLlut->result.error.rmse))
            bestLlut = &p;
    }
    if (bestCordic && bestLlut) {
        double setupGap =
            bestLlut->result.setupSeconds -
            bestCordic->result.setupSeconds;
        std::printf("\n# Key Takeaway 2: L-LUT setup exceeds CORDIC "
                    "setup by %.3e s at best accuracy;\n"
                    "# CORDIC amortizes only for kernels with few "
                    "transcendental evaluations.\n",
                    setupGap);
    }
    return 0;
}
