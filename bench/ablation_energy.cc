/**
 * @file
 * Ablation: modeled energy per element for each method (sine).
 *
 * PIM's motivation is the energy cost of data movement; while the
 * paper reports no energy numbers, the cost model carries
 * instruction/DMA energy parameters calibrated to published UPMEM
 * power figures, so the method comparison can be restated in Joules.
 * Because the DPU energy model is instruction-dominated, the ranking
 * tracks the cycle ranking of Figure 5 - plus the host-transfer energy
 * a Figure-1(b)-style CPU round trip would cost instead, which is the
 * data-movement argument for computing transcendentals in place.
 */

#include <cstdio>

#include "common/rng.h"
#include "transpim/transpimlib.h"

int
main()
{
    using namespace tpl;
    using namespace tpl::transpim;

    constexpr uint32_t elements = 4096;
    auto inputs = uniformFloats(elements, 0.0f, 6.2831853f, 7);

    std::printf("=== Ablation: modeled energy per element (sine) "
                "===\n");
    std::printf("%-24s %14s %14s\n", "method", "nJ/elem",
                "cycles/elem");

    struct Row
    {
        Method m;
        uint32_t knob;
    };
    for (Row row : {Row{Method::Cordic, 24u},
                    Row{Method::CordicLut, 24u},
                    Row{Method::MLut, 12u}, Row{Method::LLut, 12u},
                    Row{Method::LLutFixed, 12u},
                    Row{Method::Poly, 11u}}) {
        MethodSpec spec;
        spec.method = row.m;
        spec.interpolated = true;
        spec.placement = Placement::Wram;
        spec.log2Entries = row.knob;
        spec.iterations = row.knob;
        spec.polyDegree = row.knob;
        auto eval = FunctionEvaluator::create(Function::Sin, spec);

        sim::DpuCore dpu;
        eval.attach(dpu);
        uint32_t inAddr = dpu.mramAlloc(elements * 4);
        uint32_t outAddr = dpu.mramAlloc(elements * 4);
        dpu.hostWriteMram(inAddr, inputs.data(), elements * 4);
        sim::LaunchStats stats =
            dpu.launch(16, [&](sim::TaskletContext& ctx) {
                float buf[256];
                for (uint32_t c = ctx.taskletId(); c < elements / 256;
                     c += ctx.numTasklets()) {
                    ctx.mramRead(inAddr + c * 1024, buf, 1024);
                    for (uint32_t i = 0; i < 256; ++i) {
                        ctx.charge(4);
                        buf[i] = eval.eval(buf[i], &ctx);
                    }
                    ctx.mramWrite(outAddr + c * 1024, buf, 1024);
                }
            });
        std::printf("%-24s %14.2f %14.1f\n",
                    methodLabel(spec).c_str(),
                    stats.energyJoules * 1e9 / elements,
                    static_cast<double>(stats.cycles) / elements);
    }

    // The Figure 1(b) alternative: ship every element to the host and
    // back just to evaluate the function there.
    sim::CostModel model;
    double roundTripNj = 2.0 * 4.0 *
                         model.hostTransferEnergyPerBytePj * 1e-3;
    std::printf("\n# A Figure-1(b) host round trip adds %.2f nJ/elem "
                "of pure bus energy on top of the\n# CPU's own "
                "computation energy - and, more importantly, "
                "serializes every element over\n# the narrow host-PIM "
                "link, which is the drawback the in-place methods "
                "above avoid.\n",
                roundTripNj);
    return 0;
}
