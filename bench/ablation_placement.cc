/**
 * @file
 * Ablation: WRAM vs MRAM LUT placement across tasklet counts.
 *
 * The paper observes (Section 4.2.1, observation 4) that placing the
 * LUT in the DRAM bank instead of the scratchpad makes no significant
 * performance difference "for any number of PIM threads". This bench
 * quantifies that: with many tasklets the core is issue-bound and the
 * per-query DMA hides entirely; with one tasklet the DMA latency adds
 * a modest fraction of the (already latency-bound) element cost.
 */

#include <cstdio>

#include "transpim/harness.h"

int
main()
{
    using namespace tpl::transpim;

    std::printf("=== Ablation: LUT placement (non-interp. L-LUT "
                "sine, 2^12 entries) ===\n");
    std::printf("%-10s %16s %16s %10s\n", "tasklets", "WRAM cyc/elem",
                "MRAM cyc/elem", "MRAM/WRAM");

    for (uint32_t t : {1u, 2u, 4u, 8u, 16u}) {
        double cycles[2] = {0, 0};
        int idx = 0;
        for (Placement pl : {Placement::Wram, Placement::Mram}) {
            MethodSpec spec;
            spec.method = Method::LLut;
            spec.interpolated = false;
            spec.placement = pl;
            spec.log2Entries = 12;
            MicrobenchOptions opts;
            opts.elements = 4096;
            opts.tasklets = t;
            MicrobenchResult r =
                runMicrobench(Function::Sin, spec, opts);
            cycles[idx++] = r.cyclesPerElement;
        }
        std::printf("%-10u %16.1f %16.1f %9.2fx\n", t, cycles[0],
                    cycles[1], cycles[1] / cycles[0]);
    }
    std::printf("\n# Paper observation 4: the ratio stays close to "
                "1.0 - MRAM placement is nearly free,\n# so large "
                "tables can live in the DRAM bank and leave WRAM for "
                "operand buffers.\n");
    return 0;
}
