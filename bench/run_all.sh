#!/usr/bin/env bash
# Run every bench binary and emit a consolidated BENCH_results.json
# with wall-clock seconds per bench, so successive PRs have a perf
# trajectory to compare against.
#
# Usage:
#   bench/run_all.sh [--quick] [BUILD_DIR] [OUT_JSON]
#
#   --quick    smoke mode: force TPL_BENCH_ELEMENTS=512 so every bench
#              runs in seconds (trajectory points are NOT comparable
#              with full runs; the header records the element count).
#   BUILD_DIR  cmake build tree (default: build). Bench binaries are
#              expected under BUILD_DIR/bench/ (that is where the bench
#              CMakeLists points RUNTIME_OUTPUT_DIRECTORY).
#   OUT_JSON   output path (default: BENCH_results.json in the cwd).
#
# Environment:
#   TPL_BENCH_ELEMENTS  forwarded to the benches (smaller = faster).
#   TPL_SIM_THREADS     simulation parallelism (1 = serial reference).
#   TPL_BENCH_FILTER    only run binaries whose name matches this
#                       (grep -E) pattern.
#   TPL_BENCH_METRICS=1 arm the obs metrics registry per bench
#                       (TPL_OBS_METRICS) and embed each bench's
#                       registry dump as its "metrics" object.
#
# Each result entry records the bench name, wall seconds and exit
# status; failed benches additionally carry the tail of their stderr
# so a red trajectory point is diagnosable from the JSON alone. The
# header records the git SHA and simulation thread count the numbers
# were taken at.
#
# Schema 2 additionally embeds a "serve_sweep" object: the pimserve
# L-LUT sin sweep replayed through both the double-buffered and the
# synchronous schedule, with modeled seconds, speedup and overlap.
#
# Schema 3 adds host-throughput accounting: every result entry carries
# "elements_per_sec" (per-configuration-point elements divided by wall
# seconds — a trajectory metric, comparable only between runs with the
# same settings), and a "sim_throughput" object replays the Figure-5
# sweep with the batch execution path on (TPL_BATCH_EVAL=1, the
# default) and off (TPL_BATCH_EVAL=0) and records both rates plus the
# batch-over-scalar speedup.
#
# Schema 4: the embedded "serve_sweep" object (pimserve --json,
# embedded verbatim) now carries per-request modeled latency — a
# "latency" object with exact nearest-rank p50/p90/p99/p999, mean and
# max seconds plus an "incomplete" count — "requests_per_second", and
# "anomalous_waves" (straggler-flagged waves). The full output schema
# is documented in docs/bench.md.
#
# Schema 5 adds a "fleet_sweep" object: the pimserve synthetic demo
# trace replayed over a 20x2x64 fleet topology (40 ranks, 2560 DPUs)
# and over a single 1x1x64 rank, each embedded verbatim (pimserve
# --json with topology + rank_stats), plus the fleet-over-single-rank
# "requests_per_second_ratio". In --quick mode the request count
# shrinks with TPL_BENCH_ELEMENTS; the full run replays 1M requests.
#
# Schema 6 adds a "tuner_sweep" object: the pimtune mixed-tenant demo
# trace replayed three ways (as requested / best static config /
# online per-tenant auto-tuner; pimtune --json embedded verbatim as
# "replay") next to the offline tuner's recommendation table
# (ablation_tuner --json, embedded as "ablation") so CI can diff
# online picks against static ones. The run FAILS unless the online
# replay beats the best static configuration
# (cycles_ratio_vs_static < 1) while meeting every tenant SLA
# (sla_met) — the headline claim of the online tuner.
set -u

if [ "${1:-}" = "--quick" ]; then
    shift
    export TPL_BENCH_ELEMENTS=512
fi

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_results.json}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
    echo "error: $BENCH_DIR not found (build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
fi

now_ns() {
    # date +%s%N is GNU; fall back to second resolution elsewhere.
    local n
    n=$(date +%s%N)
    case "$n" in
        *N) echo "$(date +%s)000000000" ;;
        *) echo "$n" ;;
    esac
}

# JSON-escape stdin into one string body: backslashes, quotes, tabs,
# newlines; other control characters are dropped.
json_escape() {
    sed -e 's/\\/\\\\/g' -e 's/"/\\"/g' -e 's/\t/\\t/g' |
        tr -d '\000-\010\013-\037' | awk 'NR > 1 { printf "\\n" } { printf "%s", $0 }'
}

GIT_SHA=$(git -C "$(dirname "$0")/.." rev-parse HEAD 2>/dev/null || echo unknown)
ERR_TMP=$(mktemp)
METRICS_TMP=$(mktemp)
SERVE_TMP=$(mktemp)
TRACE_TMP=$(mktemp)
CSV_TMP=$(mktemp)
trap 'rm -f "$ERR_TMP" "$METRICS_TMP" "$SERVE_TMP" "$TRACE_TMP" "$CSV_TMP"' EXIT

entries=""
failures=0
for bin in "$BENCH_DIR"/*; do
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    name=$(basename "$bin")
    if [ -n "${TPL_BENCH_FILTER:-}" ] &&
        ! echo "$name" | grep -Eq "${TPL_BENCH_FILTER}"; then
        continue
    fi
    echo "== $name" >&2
    : > "$ERR_TMP"
    : > "$METRICS_TMP"
    start=$(now_ns)
    if [ "${TPL_BENCH_METRICS:-0}" = "1" ]; then
        TPL_OBS_METRICS="$METRICS_TMP" "$bin" > /dev/null 2> "$ERR_TMP"
        status=$?
    else
        "$bin" > /dev/null 2> "$ERR_TMP"
        status=$?
    fi
    end=$(now_ns)
    if [ "$status" -ne 0 ]; then
        failures=$((failures + 1))
        echo "   FAILED (exit $status)" >&2
        tail -5 "$ERR_TMP" >&2
    fi
    secs=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", (b - a) / 1e9 }')
    echo "   ${secs}s" >&2

    # Per-point elements over wall seconds (0 when the bench failed or
    # finished under clock resolution).
    eps=$(awk -v e="${TPL_BENCH_ELEMENTS:-4096}" -v s="$secs" -v x="$status" \
        'BEGIN { printf "%.1f", (s > 0 && x == 0) ? e / s : 0 }')

    entry="{\"bench\": \"$name\", \"seconds\": $secs, \"exit\": $status"
    entry="$entry, \"elements_per_sec\": $eps"
    if [ "$status" -ne 0 ]; then
        stderr_tail=$(tail -5 "$ERR_TMP" | json_escape)
        entry="$entry, \"stderr_tail\": \"$stderr_tail\""
    fi
    # Embed the bench's own metrics dump (valid JSON by construction).
    if [ -s "$METRICS_TMP" ]; then
        entry="$entry, \"metrics\": $(cat "$METRICS_TMP")"
    fi
    entry="$entry}"
    [ -n "$entries" ] && entries="$entries,"
    entries="$entries
    $entry"
done

# Schema-2 sync-vs-pipelined sweep: replay an L-LUT sin request burst
# (>= 4 waves over 64 DPUs) through pimserve; its --json output runs
# BOTH schedules and carries sync_run_modeled_seconds + speedup. In
# --quick mode the burst shrinks with TPL_BENCH_ELEMENTS.
serve_sweep=""
PIMSERVE="$BUILD_DIR/tools/pimserve"
if [ -x "$PIMSERVE" ]; then
    req_elems=${TPL_BENCH_ELEMENTS:-32768}
    {
        for _ in 1 2 3 4 5; do
            echo "request function=sin method=llut elements=$req_elems"
        done
    } > "$TRACE_TMP"
    echo "== pimserve sync-vs-pipelined sweep (5 x $req_elems)" >&2
    if "$PIMSERVE" --trace "$TRACE_TMP" --dpus 64 \
        --json "$SERVE_TMP" > /dev/null 2> "$ERR_TMP"; then
        serve_sweep=$(cat "$SERVE_TMP")
        awk -F'"' '/"speedup"/ { printf "   speedup %s\n", $0 }' \
            "$SERVE_TMP" >&2 || true
    else
        failures=$((failures + 1))
        echo "   FAILED" >&2
        tail -5 "$ERR_TMP" >&2
    fi
else
    echo "== pimserve not built; serve_sweep omitted" >&2
fi

# Schema-5 fleet sweep: the synthetic demo trace replayed over the
# full 20x2x64 fleet and over a single 1x1x64 rank. Both runs use the
# same in-memory trace (same seed, same request mix), so the
# requests/s ratio is the modeled scale-out of the cluster scheduler.
# The full run replays 1M requests; --quick scales the count down
# with TPL_BENCH_ELEMENTS (512 -> 16k requests).
fleet_sweep=""
if [ -x "$PIMSERVE" ]; then
    fleet_reqs=$(( ${TPL_BENCH_ELEMENTS:-32768} * 32 ))
    [ "$fleet_reqs" -gt 1000000 ] && fleet_reqs=1000000
    echo "== pimserve fleet sweep (20x2x64 vs 1x1x64, $fleet_reqs requests)" >&2
    FLEET_JSON_TMP=$(mktemp)
    RANK_JSON_TMP=$(mktemp)
    fleet_ok=1
    for topo in 20x2x64 1x1x64; do
        out="$FLEET_JSON_TMP"
        [ "$topo" = 1x1x64 ] && out="$RANK_JSON_TMP"
        if ! "$PIMSERVE" --demo-trace --topology "$topo" \
            --demo-requests "$fleet_reqs" --no-sync-replay \
            --json "$out" > /dev/null 2> "$ERR_TMP"; then
            fleet_ok=0
            failures=$((failures + 1))
            echo "   $topo FAILED" >&2
            tail -5 "$ERR_TMP" >&2
        fi
    done
    if [ "$fleet_ok" = 1 ]; then
        ratio=$(awk 'function rps(f) {
            while ((getline line < f) > 0)
                if (line ~ /"requests_per_second"/) {
                    sub(/.*:/, "", line)
                    gsub(/[^0-9.eE+-]/, "", line)
                    close(f); return line + 0
                }
            close(f); return 0
        }
        BEGIN {
            a = rps(ARGV[1]); b = rps(ARGV[2])
            printf "%.4f", (b > 0) ? a / b : 0
        }' "$FLEET_JSON_TMP" "$RANK_JSON_TMP")
        fleet_sweep="{\"requests\": $fleet_reqs, \"fleet\": $(cat "$FLEET_JSON_TMP"), \"single_rank\": $(cat "$RANK_JSON_TMP"), \"requests_per_second_ratio\": $ratio}"
        echo "   fleet over single rank: ${ratio}x requests/s" >&2
    fi
    rm -f "$FLEET_JSON_TMP" "$RANK_JSON_TMP"
else
    echo "== pimserve not built; fleet_sweep omitted" >&2
fi

# Schema-6 tuner sweep: the pimtune mixed-tenant demo trace, three
# replays in one invocation (as-requested / static-best / online),
# with small waves (--per-dpu-elements 8) so the tuner sees enough
# waves to explore and commit. The ablation_tuner recommendation
# table rides along so online and static picks can be diffed. The
# win is asserted, not just recorded: ratio >= 1 or a missed tenant
# SLA counts as a bench failure.
tuner_sweep=""
PIMTUNE="$BUILD_DIR/tools/pimtune"
ABLATION="$BENCH_DIR/ablation_tuner"
if [ -x "$PIMTUNE" ]; then
    tuner_reqs=$(( ${TPL_BENCH_ELEMENTS:-32768} * 4 ))
    [ "$tuner_reqs" -gt 6000 ] && tuner_reqs=6000
    [ "$tuner_reqs" -lt 2000 ] && tuner_reqs=2000
    echo "== pimtune online-vs-static tuner sweep ($tuner_reqs requests)" >&2
    TUNE_JSON_TMP=$(mktemp)
    ABL_JSON_TMP=$(mktemp)
    tuner_ok=1
    if ! "$PIMTUNE" --demo "$tuner_reqs" --per-dpu-elements 8 \
        --explore 512 --json "$TUNE_JSON_TMP" \
        > /dev/null 2> "$ERR_TMP"; then
        tuner_ok=0
        failures=$((failures + 1))
        echo "   pimtune FAILED" >&2
        tail -5 "$ERR_TMP" >&2
    fi
    ablation_json=""
    if [ -x "$ABLATION" ] &&
        "$ABLATION" --json "$ABL_JSON_TMP" > /dev/null 2> "$ERR_TMP"; then
        ablation_json=$(cat "$ABL_JSON_TMP")
    fi
    if [ "$tuner_ok" = 1 ]; then
        ratio=$(awk -F': ' '/"cycles_ratio_vs_static"/ {
            gsub(/[^0-9.eE+-]/, "", $2); print $2 + 0; exit
        }' "$TUNE_JSON_TMP")
        sla_met=$(awk -F': ' '/"sla_met"/ {
            gsub(/[^a-z]/, "", $2); print $2; exit
        }' "$TUNE_JSON_TMP")
        echo "   online over static-best: ${ratio}x cycles, SLAs met: $sla_met" >&2
        if ! awk -v r="$ratio" 'BEGIN { exit !(r > 0 && r < 1) }' ||
            [ "$sla_met" != "true" ]; then
            failures=$((failures + 1))
            echo "   FAILED: online must beat static-best with SLAs met" >&2
        fi
        tuner_sweep="{\"requests\": $tuner_reqs, \"replay\": $(cat "$TUNE_JSON_TMP")"
        if [ -n "$ablation_json" ]; then
            tuner_sweep="$tuner_sweep, \"ablation\": $ablation_json"
        fi
        tuner_sweep="$tuner_sweep}"
    fi
    rm -f "$TUNE_JSON_TMP" "$ABL_JSON_TMP"
else
    echo "== pimtune not built; tuner_sweep omitted" >&2
fi

# Schema-3 simulator-throughput probe: the Figure-5 sweep replayed with
# the batch execution path enabled (the default) and disabled
# (TPL_BATCH_EVAL=0). CSV mode is used so the row count gives the
# number of feasible sweep points, which with the per-point element
# count yields true simulated-elements-per-second rates; the ratio is
# the headline batch-over-scalar simulator speedup.
sim_throughput=""
FIG5="$BENCH_DIR/fig5_cycles"
if [ -x "$FIG5" ]; then
    # Default to a larger per-point element count than the trajectory
    # benches: the probe isolates *simulation* throughput, and at small
    # sizes per-point fixed costs (table generation, setup) dominate
    # the wall clock instead. An explicit TPL_BENCH_ELEMENTS (including
    # --quick's 512) still wins.
    st_elems=${TPL_BENCH_ELEMENTS:-65536}
    echo "== fig5_cycles batch-vs-scalar simulator throughput" >&2
    st_ok=1
    batch_secs=0
    scalar_secs=0
    points=0
    for mode in batch scalar; do
        : > "$CSV_TMP"
        start=$(now_ns)
        if [ "$mode" = batch ]; then
            TPL_BENCH_ELEMENTS=$st_elems TPL_BENCH_CSV=1 \
                TPL_BATCH_EVAL=1 "$FIG5" > "$CSV_TMP" 2> "$ERR_TMP"
        else
            TPL_BENCH_ELEMENTS=$st_elems TPL_BENCH_CSV=1 \
                TPL_BATCH_EVAL=0 "$FIG5" > "$CSV_TMP" 2> "$ERR_TMP"
        fi
        status=$?
        end=$(now_ns)
        if [ "$status" -ne 0 ]; then
            st_ok=0
            failures=$((failures + 1))
            echo "   $mode run FAILED (exit $status)" >&2
            tail -5 "$ERR_TMP" >&2
            continue
        fi
        secs=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", (b - a) / 1e9 }')
        points=$(($(wc -l < "$CSV_TMP") - 1))
        [ "$points" -ge 0 ] || points=0
        echo "   $mode: ${secs}s ($points points x $st_elems elements)" >&2
        if [ "$mode" = batch ]; then batch_secs=$secs; else scalar_secs=$secs; fi
    done
    if [ "$st_ok" = 1 ]; then
        sim_throughput=$(awk -v p="$points" -v e="$st_elems" \
            -v b="$batch_secs" -v s="$scalar_secs" 'BEGIN {
            total = p * e
            beps = (b > 0) ? total / b : 0
            seps = (s > 0) ? total / s : 0
            spd = (b > 0 && s > 0) ? s / b : 0
            printf "{\"bench\": \"fig5_cycles\", \"sweep_points\": %d, ", p
            printf "\"elements_per_point\": %d, ", e
            printf "\"batch_seconds\": %.3f, \"scalar_seconds\": %.3f, ", b, s
            printf "\"batch_elements_per_sec\": %.1f, ", beps
            printf "\"scalar_elements_per_sec\": %.1f, ", seps
            printf "\"batch_over_scalar_speedup\": %.3f}", spd
        }')
        echo "$sim_throughput" |
            sed -nE 's/.*"batch_over_scalar_speedup": ([0-9.]+).*/   speedup \1x/p' >&2
    fi
else
    echo "== fig5_cycles not built; sim_throughput omitted" >&2
fi

{
    echo "{"
    echo "  \"schema\": 6,"
    echo "  \"git_sha\": \"$GIT_SHA\","
    echo "  \"sim_threads\": \"${TPL_SIM_THREADS:-default}\","
    echo "  \"bench_elements\": \"${TPL_BENCH_ELEMENTS:-default}\","
    if [ -n "$serve_sweep" ]; then
        echo "  \"serve_sweep\": $serve_sweep,"
    fi
    if [ -n "$fleet_sweep" ]; then
        echo "  \"fleet_sweep\": $fleet_sweep,"
    fi
    if [ -n "$tuner_sweep" ]; then
        echo "  \"tuner_sweep\": $tuner_sweep,"
    fi
    if [ -n "$sim_throughput" ]; then
        echo "  \"sim_throughput\": $sim_throughput,"
    fi
    echo "  \"results\": [$entries"
    echo "  ]"
    echo "}"
} > "$OUT_JSON"

echo "wrote $OUT_JSON" >&2
# Exit 1 on any failure rather than the raw count: exit codes wrap
# mod 256, so e.g. 256 failing benches would read as success.
[ "$failures" -eq 0 ] || exit 1
exit 0
