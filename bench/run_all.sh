#!/usr/bin/env bash
# Run every bench binary and emit a consolidated BENCH_results.json
# with wall-clock seconds per bench, so successive PRs have a perf
# trajectory to compare against.
#
# Usage:
#   bench/run_all.sh [BUILD_DIR] [OUT_JSON]
#
#   BUILD_DIR  cmake build tree (default: build). Bench binaries are
#              expected under BUILD_DIR/bench/ (that is where the bench
#              CMakeLists points RUNTIME_OUTPUT_DIRECTORY).
#   OUT_JSON   output path (default: BENCH_results.json in the cwd).
#
# Environment:
#   TPL_BENCH_ELEMENTS  forwarded to the benches (smaller = faster).
#   TPL_SIM_THREADS     simulation parallelism (1 = serial reference).
#   TPL_BENCH_FILTER    only run binaries whose name matches this
#                       (grep -E) pattern.
set -u

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_results.json}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
    echo "error: $BENCH_DIR not found (build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
fi

now_ns() {
    # date +%s%N is GNU; fall back to second resolution elsewhere.
    local n
    n=$(date +%s%N)
    case "$n" in
        *N) echo "$(date +%s)000000000" ;;
        *) echo "$n" ;;
    esac
}

entries=""
failures=0
for bin in "$BENCH_DIR"/*; do
    [ -f "$bin" ] && [ -x "$bin" ] || continue
    name=$(basename "$bin")
    if [ -n "${TPL_BENCH_FILTER:-}" ] &&
        ! echo "$name" | grep -Eq "${TPL_BENCH_FILTER}"; then
        continue
    fi
    echo "== $name" >&2
    start=$(now_ns)
    if "$bin" > /dev/null 2>&1; then
        status=0
    else
        status=$?
        failures=$((failures + 1))
        echo "   FAILED (exit $status)" >&2
    fi
    end=$(now_ns)
    secs=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", (b - a) / 1e9 }')
    echo "   ${secs}s" >&2
    [ -n "$entries" ] && entries="$entries,"
    entries="$entries
    {\"bench\": \"$name\", \"seconds\": $secs, \"exit\": $status}"
done

{
    echo "{"
    echo "  \"sim_threads\": \"${TPL_SIM_THREADS:-default}\","
    echo "  \"bench_elements\": \"${TPL_BENCH_ELEMENTS:-default}\","
    echo "  \"results\": [$entries"
    echo "  ]"
    echo "}"
} > "$OUT_JSON"

echo "wrote $OUT_JSON" >&2
exit "$failures"
