/**
 * @file
 * Figure 5: execution cycles per input element on one PIM core as a
 * function of RMSE, for every TransPimLib implementation of sine.
 *
 * Reproduces the paper's microbenchmark: 16 PIM threads stream uniform
 * inputs in [0, 2pi] from the DRAM bank, evaluate each element, and
 * write results back; the cycle model converts the retired-instruction
 * counts into core cycles. LUT series appear twice (WRAM and MRAM
 * placement); configurations whose tables do not fit a placement are
 * absent, which is itself one of the paper's observations.
 */

#include <cstdio>

#include "sweep_common.h"

int
main()
{
    using namespace tpl::bench;
    std::printf("=== Figure 5: execution cycles per element vs RMSE "
                "(sine, %u elements, 16 tasklets) ===\n",
                benchElements());
    auto points = runMethodSweep(tpl::transpim::Function::Sin, true);
    printHeader("cycles per element (lower-left is better)",
                "cycles/elem");
    for (const auto& p : points)
        printRow(p, p.result.cyclesPerElement);

    // The paper's Section 4.2.1 observations, verified numerically.
    std::printf("\n# Shape checks (paper Section 4.2.1)\n");
    auto find = [&](const char* series, bool best) {
        const SweepPoint* pick = nullptr;
        for (const auto& p : points) {
            if (p.series.find(series) != 0)
                continue;
            if (p.series.find("fixed") != std::string::npos &&
                std::string(series).find("fixed") == std::string::npos)
                continue;
            if (!pick ||
                (best ? p.result.error.rmse < pick->result.error.rmse
                      : false))
                pick = &p;
        }
        return pick;
    };
    const SweepPoint* llutI = find("L-LUT interp.", true);
    const SweepPoint* mlutI = find("M-LUT interp.", true);
    const SweepPoint* llutP = find("L-LUT (", true);
    const SweepPoint* mlutP = find("M-LUT (", true);
    const SweepPoint* fixedI = find("L-LUT fixed interp.", true);
    const SweepPoint* cordic = find("CORDIC", true);
    if (llutI && mlutI && llutP && mlutP && fixedI && cordic) {
        std::printf("interp   L-LUT / M-LUT cycle ratio: %.2f "
                    "(paper: ~0.5)\n",
                    llutI->result.cyclesPerElement /
                        mlutI->result.cyclesPerElement);
        std::printf("plain    L-LUT / M-LUT cycle ratio: %.2f "
                    "(paper: ~0.2)\n",
                    llutP->result.cyclesPerElement /
                        mlutP->result.cyclesPerElement);
        std::printf("fixed/float interp. L-LUT ratio:    %.2f "
                    "(paper: ~0.5)\n",
                    fixedI->result.cyclesPerElement /
                        llutI->result.cyclesPerElement);
        std::printf("CORDIC / interp. L-LUT at best acc: %.1fx "
                    "(paper: CORDIC is several times slower)\n",
                    cordic->result.cyclesPerElement /
                        llutI->result.cyclesPerElement);
    }
    return 0;
}
