/**
 * @file
 * Ablation: transcendental share vs. surrounding compute (logistic
 * regression, feature-dimension sweep).
 *
 * The Sigmoid workload is pure transcendental, so method choice sets
 * the whole kernel time. Real models wrap the activation in MACs; as
 * the feature dimension D grows, the dot product (D emulated float
 * multiply-adds) dominates and the gap between the polynomial baseline
 * and the LUT methods shrinks. This bench quantifies where method
 * choice stops mattering - the flip side of the paper's Figure 9.
 */

#include <cstdio>

#include "workloads/logistic.h"

int
main()
{
    using namespace tpl::work;

    std::printf("=== Ablation: logistic regression, PIM kernel "
                "seconds vs feature dimension ===\n");
    std::printf("%-10s %14s %14s %14s %12s\n", "features", "poly_s",
                "llut_s", "dllut_s", "poly/llut");

    for (uint32_t features : {2u, 8u, 32u, 128u}) {
        LogisticConfig cfg;
        cfg.totalElements = 1'000'000;
        cfg.elementsPerSimDpu = 512;
        cfg.simulatedDpus = 2;
        cfg.features = features;
        cfg.cpuSampleElements = 100'000;

        auto poly = runLogistic(LogisticVariant::PimPoly, cfg);
        auto llut = runLogistic(LogisticVariant::PimLLut, cfg);
        auto dllut = runLogistic(LogisticVariant::PimDlLut, cfg);
        std::printf("%-10u %14.4f %14.4f %14.4f %11.2fx\n", features,
                    poly.pimKernelSeconds, llut.pimKernelSeconds,
                    dllut.pimKernelSeconds,
                    poly.pimKernelSeconds / llut.pimKernelSeconds);
    }

    std::printf("\n# The poly/L-LUT ratio decays toward 1.0 as the "
                "MACs dominate: TransPimLib's benefit\n# is largest "
                "for activation-heavy kernels, exactly the workloads "
                "the paper targets.\n");
    return 0;
}
