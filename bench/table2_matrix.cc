/**
 * @file
 * Table 2: the method x function support matrix, with the measured
 * RMSE of every supported pair at a representative configuration.
 *
 * The paper's Table 2 lists which implementation methods support which
 * functions; this bench regenerates the matrix from the library's own
 * support predicate and attaches measured accuracy so every claimed
 * cell is demonstrated, not just declared.
 */

#include <cmath>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "transpim/harness.h"

int
main()
{
    using namespace tpl;
    using namespace tpl::transpim;

    const std::vector<Function> functions{
        Function::Sin, Function::Cos, Function::Tan, Function::Sinh,
        Function::Cosh, Function::Tanh, Function::Exp, Function::Log,
        Function::Sqrt, Function::Gelu, Function::Sigmoid,
        Function::Cndf, Function::Atan, Function::Asin, Function::Acos,
        Function::Atanh, Function::Log2, Function::Log10,
        Function::Exp2, Function::Rsqrt, Function::Erf, Function::Silu,
        Function::Softplus};
    const std::vector<Method> methods{
        Method::Cordic, Method::CordicFixed, Method::CordicLut,
        Method::MLut, Method::LLut, Method::LLutFixed, Method::DLut,
        Method::DlLut, Method::Poly};

    std::printf("=== Table 2: implementation methods and supported "
                "functions (cell = RMSE; '-' = unsupported) ===\n");
    std::printf("%-12s", "");
    for (Method m : methods)
        std::printf(" %12.12s", std::string(methodName(m)).c_str());
    std::printf("\n");

    for (Function f : functions) {
        std::printf("%-12s", std::string(functionName(f)).c_str());
        Domain dom = functionDomain(f);
        auto inputs = uniformFloats(2000, (float)dom.lo, (float)dom.hi,
                                    1234);
        // Keep tan away from its poles: the metric would be dominated
        // by unbounded values there.
        if (f == Function::Tan) {
            std::erase_if(inputs, [](float x) {
                return std::abs(std::cos((double)x)) < 0.1;
            });
        }
        for (Method m : methods) {
            MethodSpec spec;
            spec.method = m;
            spec.interpolated = true;
            spec.placement = Placement::Host;
            spec.log2Entries = 14;
            spec.iterations = 24;
            spec.polyDegree = 13;
            spec.dlutMantBits = 8;
            if (!FunctionEvaluator::supports(f, spec)) {
                std::printf(" %12s", "-");
                continue;
            }
            auto eval = FunctionEvaluator::create(f, spec);
            ErrorStats stats = evaluateAccuracy(eval, inputs);
            std::printf(" %12.2e", stats.rmse);
        }
        std::printf("\n");
    }
    return 0;
}
