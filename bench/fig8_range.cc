/**
 * @file
 * Figure 8: execution cycles per input element for the range
 * reduction/extension of sin, exp, log and sqrt.
 *
 * Runs kernels that execute only the reduction step per element on a
 * simulated PIM core, reproducing the paper's observation that the
 * cost differs widely across functions: the trigonometric mod-2pi
 * reduction needs real float arithmetic (multiplies and conversions),
 * the exp split needs a multiply and a Cody-Waite subtract chain, and
 * the log/sqrt splits are near-free exponent/mantissa bit surgery.
 */

#include <cstdio>
#include <functional>

#include "common/rng.h"
#include "pimsim/dpu.h"
#include "transpim/range.h"

namespace {

using namespace tpl;

double
cyclesPerElement(const std::function<void(float, InstrSink*)>& op,
                 float lo, float hi)
{
    constexpr uint32_t elements = 4096;
    auto inputs = uniformFloats(elements, lo, hi, 99);
    sim::DpuCore dpu;
    sim::LaunchStats stats =
        dpu.launch(16, [&](sim::TaskletContext& ctx) {
            for (uint32_t i = ctx.taskletId(); i < elements;
                 i += ctx.numTasklets()) {
                ctx.charge(3); // loop control
                op(inputs[i], &ctx);
            }
        });
    return static_cast<double>(stats.cycles) / elements;
}

} // namespace

int
main()
{
    using namespace tpl::transpim;
    std::printf("=== Figure 8: range reduction/extension cycles per "
                "element ===\n");
    std::printf("%-8s %14s\n", "function", "cycles/elem");

    double sinC = cyclesPerElement(
        [](float x, InstrSink* s) { reduceTwoPi(x, s); }, -100.0f,
        100.0f);
    double expC = cyclesPerElement(
        [](float x, InstrSink* s) { splitExp(x, s); }, -10.0f, 10.0f);
    double logC = cyclesPerElement(
        [](float x, InstrSink* s) { splitLog(x, s); }, 0.001f, 100.0f);
    double sqrtC = cyclesPerElement(
        [](float x, InstrSink* s) { splitSqrt(x, s); }, 0.001f,
        100.0f);

    std::printf("%-8s %14.1f\n", "sin", sinC);
    std::printf("%-8s %14.1f\n", "exp", expC);
    std::printf("%-8s %14.1f\n", "log", logC);
    std::printf("%-8s %14.1f\n", "sqrt", sqrtC);

    std::printf("\n# Shape check: sin/exp reductions are float "
                "arithmetic (expensive),\n# log/sqrt are bit surgery "
                "(cheap). sin/log ratio: %.1fx\n",
                sinC / logC);
    return 0;
}
