/**
 * @file
 * Sweep implementation shared by the Figure 5/6/7 benches.
 */

#include "sweep_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "pimsim/thread_pool.h"

namespace tpl {
namespace bench {

using transpim::Function;
using transpim::FunctionEvaluator;
using transpim::Method;
using transpim::MethodSpec;
using transpim::MicrobenchOptions;
using transpim::MicrobenchResult;
using transpim::Placement;

uint32_t
benchElements()
{
    if (const char* env = std::getenv("TPL_BENCH_ELEMENTS"))
        return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    return 4096;
}

namespace {

MicrobenchResult
runPoint(Function f, const MethodSpec& spec, bool simulateCycles)
{
    MicrobenchOptions opts;
    opts.elements = benchElements();
    if (simulateCycles)
        return transpim::runMicrobench(f, spec, opts);

    // Setup/memory/accuracy only: no DPU cycle simulation.
    MicrobenchResult res;
    res.function = f;
    res.spec = spec;
    res.elements = opts.elements;
    try {
        FunctionEvaluator eval = FunctionEvaluator::create(f, spec);
        // Respect the placement's size limit so Figures 6/7 show the
        // same feasibility cutoffs as Figure 5.
        sim::DpuCore dpu;
        eval.attach(dpu);
        auto inputs = uniformFloats(
            opts.elements,
            static_cast<float>(transpim::functionDomain(f).lo),
            static_cast<float>(transpim::functionDomain(f).hi),
            opts.seed);
        res.error = evaluateAccuracy(eval, inputs);
        res.memoryBytes = eval.memoryBytes();
        res.hostGenSeconds = eval.setupSeconds();
        sim::PimSystem timing(1);
        res.transferSeconds =
            timing.serialTransferSeconds(eval.memoryBytes());
        res.setupSeconds = res.hostGenSeconds + res.transferSeconds;
    } catch (const std::bad_alloc&) {
        res.feasible = false;
    } catch (const transpim::UnsupportedCombination&) {
        res.feasible = false;
    }
    return res;
}

/** One pending point of the sweep matrix (spec + display knob). */
struct SweepEntry
{
    MethodSpec spec;
    std::string knob;
};

void
addLutSeries(std::vector<SweepEntry>& out, Method method,
             bool interpolated, Placement placement,
             const std::vector<uint32_t>& sizes)
{
    for (uint32_t log2n : sizes) {
        SweepEntry e;
        e.spec.method = method;
        e.spec.interpolated = interpolated;
        e.spec.placement = placement;
        e.spec.log2Entries = log2n;
        e.knob = "2^" + std::to_string(log2n);
        out.push_back(std::move(e));
    }
}

void
addCordicSeries(std::vector<SweepEntry>& out, Method method,
                Placement placement)
{
    for (uint32_t iters : {8u, 12u, 16u, 20u, 24u, 28u}) {
        SweepEntry e;
        e.spec.method = method;
        e.spec.placement = placement;
        e.spec.iterations = iters;
        e.spec.gridBits = 8;
        e.knob = std::to_string(iters) + " iters";
        out.push_back(std::move(e));
    }
}

} // namespace

std::vector<SweepPoint>
runMethodSweep(Function f, bool simulateCycles, bool parallelPoints)
{
    // Build the full configuration matrix first, then run every point
    // independently (each owns its evaluator and simulated core) and
    // emit results in matrix order, so the output is identical no
    // matter how many threads executed it.
    std::vector<SweepEntry> entries;
    const std::vector<uint32_t> plainSizes{8, 10, 12, 14, 16, 18, 20};
    const std::vector<uint32_t> interpSizes{6, 8, 10, 12, 14, 16};

    for (Placement pl : {Placement::Wram, Placement::Mram}) {
        addLutSeries(entries, Method::MLut, false, pl, plainSizes);
        addLutSeries(entries, Method::MLut, true, pl, interpSizes);
        addLutSeries(entries, Method::LLut, false, pl, plainSizes);
        addLutSeries(entries, Method::LLut, true, pl, interpSizes);
        addLutSeries(entries, Method::LLutFixed, false, pl, plainSizes);
        addLutSeries(entries, Method::LLutFixed, true, pl, interpSizes);
    }
    addCordicSeries(entries, Method::Cordic, Placement::Wram);
    addCordicSeries(entries, Method::CordicLut, Placement::Wram);

    std::vector<MicrobenchResult> results(entries.size());
    auto runOne = [&](uint64_t i) {
        results[i] = runPoint(f, entries[i].spec, simulateCycles);
    };
    if (parallelPoints) {
        sim::parallelFor(entries.size(), runOne);
    } else {
        for (uint64_t i = 0; i < entries.size(); ++i)
            runOne(i);
    }

    std::vector<SweepPoint> out;
    out.reserve(entries.size());
    for (size_t i = 0; i < entries.size(); ++i) {
        if (!results[i].feasible)
            continue; // table does not fit this placement
        SweepPoint p;
        p.series = methodLabel(entries[i].spec);
        p.knob = entries[i].knob;
        p.result = results[i];
        out.push_back(std::move(p));
    }
    return out;
}

namespace {

/** CSV mode for plotting scripts: TPL_BENCH_CSV=1. */
bool
csvMode()
{
    const char* env = std::getenv("TPL_BENCH_CSV");
    return env && env[0] == '1';
}

} // namespace

void
printHeader(const char* title, const char* valueColumn)
{
    if (csvMode()) {
        std::printf("series,knob,rmse,%s\n", valueColumn);
        return;
    }
    std::printf("# %s\n", title);
    std::printf("%-28s %-12s %12s %16s\n", "series", "knob", "rmse",
                valueColumn);
}

void
printRow(const SweepPoint& p, double value)
{
    if (csvMode()) {
        std::printf("%s,%s,%.6e,%.8g\n", p.series.c_str(),
                    p.knob.c_str(), p.result.error.rmse, value);
        return;
    }
    std::printf("%-28s %-12s %12.3e %16.6g\n", p.series.c_str(),
                p.knob.c_str(), p.result.error.rmse, value);
}

} // namespace bench
} // namespace tpl
