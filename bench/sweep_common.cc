/**
 * @file
 * Sweep implementation shared by the Figure 5/6/7 benches.
 */

#include "sweep_common.h"

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"

namespace tpl {
namespace bench {

using transpim::Function;
using transpim::FunctionEvaluator;
using transpim::Method;
using transpim::MethodSpec;
using transpim::MicrobenchOptions;
using transpim::MicrobenchResult;
using transpim::Placement;

uint32_t
benchElements()
{
    if (const char* env = std::getenv("TPL_BENCH_ELEMENTS"))
        return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    return 4096;
}

namespace {

MicrobenchResult
runPoint(Function f, const MethodSpec& spec, bool simulateCycles)
{
    MicrobenchOptions opts;
    opts.elements = benchElements();
    if (simulateCycles)
        return transpim::runMicrobench(f, spec, opts);

    // Setup/memory/accuracy only: no DPU cycle simulation.
    MicrobenchResult res;
    res.function = f;
    res.spec = spec;
    res.elements = opts.elements;
    try {
        FunctionEvaluator eval = FunctionEvaluator::create(f, spec);
        // Respect the placement's size limit so Figures 6/7 show the
        // same feasibility cutoffs as Figure 5.
        sim::DpuCore dpu;
        eval.attach(dpu);
        auto inputs = uniformFloats(
            opts.elements,
            static_cast<float>(transpim::functionDomain(f).lo),
            static_cast<float>(transpim::functionDomain(f).hi),
            opts.seed);
        res.error = evaluateAccuracy(eval, inputs);
        res.memoryBytes = eval.memoryBytes();
        res.hostGenSeconds = eval.setupSeconds();
        sim::PimSystem timing(1);
        res.transferSeconds =
            timing.serialTransferSeconds(eval.memoryBytes());
        res.setupSeconds = res.hostGenSeconds + res.transferSeconds;
    } catch (const std::bad_alloc&) {
        res.feasible = false;
    } catch (const transpim::UnsupportedCombination&) {
        res.feasible = false;
    }
    return res;
}

void
addLutSeries(std::vector<SweepPoint>& out, Function f, Method method,
             bool interpolated, Placement placement,
             const std::vector<uint32_t>& sizes, bool simulateCycles)
{
    for (uint32_t log2n : sizes) {
        MethodSpec spec;
        spec.method = method;
        spec.interpolated = interpolated;
        spec.placement = placement;
        spec.log2Entries = log2n;
        MicrobenchResult r = runPoint(f, spec, simulateCycles);
        if (!r.feasible)
            continue; // table does not fit this placement
        SweepPoint p;
        p.series = methodLabel(spec);
        p.knob = "2^" + std::to_string(log2n);
        p.result = r;
        out.push_back(std::move(p));
    }
}

void
addCordicSeries(std::vector<SweepPoint>& out, Function f, Method method,
                Placement placement, bool simulateCycles)
{
    for (uint32_t iters : {8u, 12u, 16u, 20u, 24u, 28u}) {
        MethodSpec spec;
        spec.method = method;
        spec.placement = placement;
        spec.iterations = iters;
        spec.gridBits = 8;
        MicrobenchResult r = runPoint(f, spec, simulateCycles);
        if (!r.feasible)
            continue;
        SweepPoint p;
        p.series = methodLabel(spec);
        p.knob = std::to_string(iters) + " iters";
        p.result = r;
        out.push_back(std::move(p));
    }
}

} // namespace

std::vector<SweepPoint>
runMethodSweep(Function f, bool simulateCycles)
{
    std::vector<SweepPoint> out;
    const std::vector<uint32_t> plainSizes{8, 10, 12, 14, 16, 18, 20};
    const std::vector<uint32_t> interpSizes{6, 8, 10, 12, 14, 16};

    for (Placement pl : {Placement::Wram, Placement::Mram}) {
        addLutSeries(out, f, Method::MLut, false, pl, plainSizes,
                     simulateCycles);
        addLutSeries(out, f, Method::MLut, true, pl, interpSizes,
                     simulateCycles);
        addLutSeries(out, f, Method::LLut, false, pl, plainSizes,
                     simulateCycles);
        addLutSeries(out, f, Method::LLut, true, pl, interpSizes,
                     simulateCycles);
        addLutSeries(out, f, Method::LLutFixed, false, pl, plainSizes,
                     simulateCycles);
        addLutSeries(out, f, Method::LLutFixed, true, pl, interpSizes,
                     simulateCycles);
    }
    addCordicSeries(out, f, Method::Cordic, Placement::Wram,
                    simulateCycles);
    addCordicSeries(out, f, Method::CordicLut, Placement::Wram,
                    simulateCycles);
    return out;
}

namespace {

/** CSV mode for plotting scripts: TPL_BENCH_CSV=1. */
bool
csvMode()
{
    const char* env = std::getenv("TPL_BENCH_CSV");
    return env && env[0] == '1';
}

} // namespace

void
printHeader(const char* title, const char* valueColumn)
{
    if (csvMode()) {
        std::printf("series,knob,rmse,%s\n", valueColumn);
        return;
    }
    std::printf("# %s\n", title);
    std::printf("%-28s %-12s %12s %16s\n", "series", "knob", "rmse",
                valueColumn);
}

void
printRow(const SweepPoint& p, double value)
{
    if (csvMode()) {
        std::printf("%s,%s,%.6e,%.8g\n", p.series.c_str(),
                    p.knob.c_str(), p.result.error.rmse, value);
        return;
    }
    std::printf("%-28s %-12s %12.3e %16.6g\n", p.series.c_str(),
                p.knob.c_str(), p.result.error.rmse, value);
}

} // namespace bench
} // namespace tpl
