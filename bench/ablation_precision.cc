/**
 * @file
 * Ablation: the precision ladder: binary16 / 32 / 64 tables and arithmetic.
 *
 * The paper's observation 5: around RMSE 1e-9 neither larger tables
 * nor more CORDIC iterations help, because binary32's resolution for
 * inputs in [4, 8] is ~2.4e-8. This bench rebuilds the interpolated
 * L-LUT sine in the emulated binary64 tier and shows the three-way
 * price of breaking through that floor: accuracy improves by ~7
 * orders of magnitude, the per-query instruction count rises ~1.7x
 * (double-word emulation), and the table doubles in bytes.
 */

#include <cmath>
#include <cstdio>

#include "common/error_metrics.h"
#include "common/rng.h"
#include "transpim/fuzzy_lut.h"
#include "transpim/llut16.h"
#include "transpim/llut64.h"

int
main()
{
    using namespace tpl;
    using namespace tpl::transpim;

    constexpr double kTwoPi = 6.28318530717958647692;
    TableFn sine = [](double x) { return std::sin(x); };
    auto inputs = uniformFloats(8192, 0.0f, (float)kTwoPi, 77);

    std::printf("=== Ablation: table/arithmetic precision "
                "(interp. L-LUT sine) ===\n");
    std::printf("%-10s %-10s %14s %14s %10s\n", "precision",
                "entries", "rmse", "instr/query", "bytes");

    for (uint32_t log2n : {10u, 12u, 14u, 16u, 18u}) {
        uint32_t n = 1u << log2n;

        LLut16 f16(sine, 0.0, kTwoPi, n, true, Placement::Host);
        CountingSink c16;
        ErrorAccumulator e16;
        for (float x : inputs)
            e16.add(f16.eval(x, &c16), std::sin((double)x));

        LLut f32(sine, 0.0, kTwoPi, n, true, Placement::Host);
        CountingSink c32;
        ErrorAccumulator e32;
        for (float x : inputs)
            e32.add(f32.eval(x, &c32), std::sin((double)x));

        LLut64 f64(sine, 0.0, kTwoPi, n, true, Placement::Host);
        CountingSink c64;
        ErrorAccumulator e64;
        for (float x : inputs) {
            // The double pipeline sees the same binary32 inputs (the
            // operands stream from memory as floats) widened exactly.
            e64.add(f64.eval((double)x, &c64), std::sin((double)x));
        }

        std::printf("%-10s 2^%-8u %14.3e %14.1f %10u\n", "binary16",
                    log2n, e16.stats().rmse,
                    (double)c16.total() / inputs.size(),
                    f16.memoryBytes());
        std::printf("%-10s 2^%-8u %14.3e %14.1f %10u\n", "binary32",
                    log2n, e32.stats().rmse,
                    (double)c32.total() / inputs.size(),
                    f32.memoryBytes());
        std::printf("%-10s 2^%-8u %14.3e %14.1f %10u\n", "binary64",
                    log2n, e64.stats().rmse,
                    (double)c64.total() / inputs.size(),
                    f64.memoryBytes());
    }

    std::printf("\n# Observation 5 (paper): each precision tier floors at its "
                "own grid - binary16 near 1e-4 (HBM-PIM's\n# native "
                "format), binary32 near 1e-8, binary64 far below - "
                "trading instructions and memory each step.\n");
    return 0;
}
