/**
 * @file
 * Figure 7: memory consumption per PIM core as a function of RMSE for
 * every TransPimLib implementation of sine.
 *
 * The paper's observations: LUT memory grows exponentially with the
 * accuracy target while CORDIC's angle table stays tiny and flat;
 * interpolation buys orders of magnitude of accuracy at fixed table
 * size; and the WRAM placement caps the reachable accuracy of
 * non-interpolated methods (those configurations simply do not fit).
 */

#include <cstdio>

#include "sweep_common.h"

int
main()
{
    using namespace tpl::bench;
    std::printf(
        "=== Figure 7: memory consumption per PIM core vs RMSE "
        "(sine) ===\n");
    auto points = runMethodSweep(tpl::transpim::Function::Sin, false);
    printHeader("table bytes on the PIM core", "bytes");
    for (const auto& p : points)
        printRow(p, static_cast<double>(p.result.memoryBytes));

    // Interpolation effectiveness: accuracy at equal memory.
    std::printf("\n# Interpolation at equal memory (L-LUT 2^12):\n");
    for (const auto& p : points) {
        if (p.knob == "2^12" &&
            p.series.find("L-LUT") == 0 &&
            p.series.find("MRAM") != std::string::npos) {
            std::printf("  %-28s rmse=%.3e bytes=%u\n",
                        p.series.c_str(), p.result.error.rmse,
                        p.result.memoryBytes);
        }
    }
    return 0;
}
