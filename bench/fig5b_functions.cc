/**
 * @file
 * Section 4.2.4: "Other Supported Functions" - the sine trends
 * replicated across the rest of the library.
 *
 * The paper's claims, each printed with its measured counterpart:
 *  1. general trends match sine for every function;
 *  2. tangent costs 2-3x sine (two evaluations + one float division);
 *  3. range reduction/extension costs differ per function (Figure 8);
 *  4. functions without range extension (tanh, GELU) are cheaper, and
 *     D-LUT/DL-LUT suit them particularly well (Key Takeaway 4).
 */

#include <cstdio>
#include <map>
#include <string>

#include "transpim/harness.h"

namespace {

using namespace tpl::transpim;

double
cyclesFor(Function f, Method m, uint32_t tableLog2, uint32_t iters)
{
    MethodSpec spec;
    spec.method = m;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = tableLog2;
    spec.iterations = iters;
    spec.polyDegree = 11;
    if (!FunctionEvaluator::supports(f, spec))
        return -1.0;
    MicrobenchOptions opts;
    opts.elements = 4096;
    MicrobenchResult r = runMicrobench(f, spec, opts);
    return r.feasible ? r.cyclesPerElement : -1.0;
}

} // namespace

int
main()
{
    const Function functions[] = {
        Function::Sin, Function::Tan, Function::Exp, Function::Log,
        Function::Sqrt, Function::Sinh, Function::Tanh, Function::Gelu,
        Function::Sigmoid};
    const Method methods[] = {Method::Cordic, Method::MLut,
                              Method::LLut, Method::DLut, Method::Poly};

    std::printf("=== Section 4.2.4: cycles/element across functions "
                "(interp. LUTs 2^12, CORDIC 24 iters) ===\n");
    std::printf("%-10s", "function");
    for (Method m : methods)
        std::printf(" %12.12s", std::string(methodName(m)).c_str());
    std::printf("\n");

    std::map<std::string, double> llutCycles;
    for (Function f : functions) {
        std::printf("%-10s", std::string(functionName(f)).c_str());
        for (Method m : methods) {
            double c = cyclesFor(f, m, 12, 24);
            if (c < 0)
                std::printf(" %12s", "-");
            else
                std::printf(" %12.1f", c);
            if (m == Method::LLut)
                llutCycles[std::string(functionName(f))] = c;
        }
        std::printf("\n");
    }

    std::printf("\n# Claim 2 - tangent / sine cycle ratio (L-LUT): "
                "%.2fx (paper: 2-3x)\n",
                llutCycles["tan"] / llutCycles["sin"]);
    std::printf("# Claim 4 - tanh / sin cycle ratio (L-LUT, no range "
                "handling for tanh): %.2fx (<1 expected where the\n"
                "#   function needs no extension; exp/log/sqrt carry "
                "their split costs)\n",
                llutCycles["tanh"] / llutCycles["sin"]);
    return 0;
}
