/**
 * @file
 * Key Takeaway 4: D-LUT and DL-LUT for activation functions.
 *
 * tanh and GELU (1) need no range extension and (2) are approximately
 * linear in most parts, which makes the direct float-conversion tables
 * a great fit: this bench compares D-LUT / DL-LUT / L-LUT / M-LUT on
 * tanh and GELU, and contrasts with sine - where the paper notes the
 * direct tables are a poor fit - at matched table budgets.
 */

#include <cstdio>

#include "transpim/harness.h"

namespace {

using namespace tpl::transpim;

void
runGroup(Function f)
{
    std::printf("--- %s ---\n", std::string(functionName(f)).c_str());
    std::printf("%-24s %12s %14s %10s\n", "method", "rmse",
                "cycles/elem", "bytes");
    for (Method m :
         {Method::DLut, Method::DlLut, Method::LLut, Method::MLut}) {
        MethodSpec spec;
        spec.method = m;
        spec.interpolated = true;
        spec.placement = Placement::Wram;
        spec.log2Entries = 12;
        spec.dlutMantBits = 7;
        if (!FunctionEvaluator::supports(f, spec))
            continue;
        MicrobenchOptions opts;
        opts.elements = 4096;
        MicrobenchResult r = runMicrobench(f, spec, opts);
        if (!r.feasible)
            continue;
        std::printf("%-24s %12.3e %14.1f %10u\n",
                    methodLabel(spec).c_str(), r.error.rmse,
                    r.cyclesPerElement, r.memoryBytes);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Key Takeaway 4: direct LUTs on activation "
                "functions ===\n\n");
    runGroup(Function::Tanh);
    runGroup(Function::Gelu);
    std::printf("# Contrast: sine (range-extended, highly nonlinear) "
                "- direct tables lose their edge:\n\n");
    runGroup(Function::Sin);
    return 0;
}
