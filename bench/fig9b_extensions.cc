/**
 * @file
 * Extension workloads beyond the paper's Figure 9: logistic-regression
 * inference (the paper's own example application for sigmoid) and
 * Phong ray shading (ray tracing is cited in the paper's introduction
 * as a transcendental-heavy application).
 *
 * Same methodology as fig9_workloads: simulated per-core element
 * shares projected to the 2545-DPU machine, measured CPU baselines.
 */

#include <cstdio>

#include "workloads/logistic.h"
#include "workloads/raytrace.h"

namespace {

using namespace tpl::work;

void
printRows(const std::vector<WorkloadResult>& rows)
{
    std::printf("%-26s %12s %12s %12s\n", "variant", "total_s",
                "kernel_s", "maxerr");
    for (const auto& r : rows) {
        std::printf("%-26s %12.4f %12.4f %12.3e\n", r.variant.c_str(),
                    r.seconds, r.pimKernelSeconds, r.maxAbsError);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Extension workloads (beyond the paper's "
                "Figure 9) ===\n\n");

    LogisticConfig logCfg;
    logCfg.totalElements = 10'000'000;
    logCfg.elementsPerSimDpu = 1024;
    logCfg.simulatedDpus = 2;
    logCfg.features = 16;
    logCfg.cpuSampleElements = 500'000;
    std::printf("--- Logistic regression (%llu rows, %u features) "
                "---\n",
                (unsigned long long)logCfg.totalElements,
                logCfg.features);
    printRows(runLogisticAll(logCfg));

    WorkloadConfig rayCfg;
    rayCfg.totalElements = 10'000'000;
    rayCfg.elementsPerSimDpu = 2048;
    rayCfg.simulatedDpus = 2;
    rayCfg.cpuSampleElements = 500'000;
    std::printf("--- Ray shading (%llu rays; rsqrt + sqrt + log2 + "
                "exp2 per hit) ---\n",
                (unsigned long long)rayCfg.totalElements);
    printRows(runRaytraceAll(rayCfg));
    return 0;
}
