/**
 * @file
 * Ablation: tasklet scaling of the PIM pipeline model.
 *
 * The paper's substrate (the UPMEM DPU) dispatches one instruction per
 * tasklet every 11 cycles, so a kernel needs >= 11 tasklets to saturate
 * the pipeline. This bench sweeps the tasklet count for the
 * interpolated L-LUT sine kernel and reports cycles per element plus
 * the effective speedup over one tasklet - the latency-bound plateau
 * below 11 tasklets and the issue-bound regime above it should be
 * clearly visible.
 */

#include <cstdio>

#include "transpim/harness.h"

int
main()
{
    using namespace tpl::transpim;

    MethodSpec spec;
    spec.method = Method::LLut;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = 12;

    std::printf("=== Ablation: tasklet scaling (interp. L-LUT sine) "
                "===\n");
    std::printf("%-10s %14s %10s\n", "tasklets", "cycles/elem",
                "speedup");

    double base = 0.0;
    for (uint32_t t : {1u, 2u, 4u, 8u, 11u, 12u, 16u, 20u, 24u}) {
        MicrobenchOptions opts;
        opts.elements = 4096;
        opts.tasklets = t;
        MicrobenchResult r = runMicrobench(Function::Sin, spec, opts);
        if (t == 1)
            base = r.cyclesPerElement;
        std::printf("%-10u %14.1f %9.2fx\n", t, r.cyclesPerElement,
                    base / r.cyclesPerElement);
    }
    std::printf("\n# Expect ~linear speedup up to 11 tasklets "
                "(pipeline interval), then saturation.\n");
    return 0;
}
