/**
 * @file
 * google-benchmark microbenchmarks: host-side wall-clock throughput of
 * every method's evaluation routine (no cost model, no simulation).
 *
 * These numbers measure the *simulator's* own speed, not the modeled
 * PIM system - useful for tracking regressions in the numeric kernels
 * and for sizing how many simulated elements a bench run can afford.
 */

#include <benchmark/benchmark.h>

#include "transpim/evaluator.h"

namespace {

using namespace tpl::transpim;

void
runMethod(benchmark::State& state, Function f, Method m)
{
    MethodSpec spec;
    spec.method = m;
    spec.interpolated = true;
    spec.placement = Placement::Host;
    spec.log2Entries = 12;
    spec.iterations = 24;
    auto eval = FunctionEvaluator::create(f, spec);
    float x = 0.37f;
    for (auto _ : state) {
        float y = eval.eval(x, nullptr);
        benchmark::DoNotOptimize(y);
        x += 0.001f;
        if (x > 6.0f)
            x = 0.1f;
    }
}

void BM_Sin_Cordic(benchmark::State& s)
{
    runMethod(s, Function::Sin, Method::Cordic);
}
void BM_Sin_CordicLut(benchmark::State& s)
{
    runMethod(s, Function::Sin, Method::CordicLut);
}
void BM_Sin_MLut(benchmark::State& s)
{
    runMethod(s, Function::Sin, Method::MLut);
}
void BM_Sin_LLut(benchmark::State& s)
{
    runMethod(s, Function::Sin, Method::LLut);
}
void BM_Sin_LLutFixed(benchmark::State& s)
{
    runMethod(s, Function::Sin, Method::LLutFixed);
}
void BM_Sin_Poly(benchmark::State& s)
{
    runMethod(s, Function::Sin, Method::Poly);
}
void BM_Tanh_DLut(benchmark::State& s)
{
    runMethod(s, Function::Tanh, Method::DLut);
}
void BM_Tanh_DlLut(benchmark::State& s)
{
    runMethod(s, Function::Tanh, Method::DlLut);
}
void BM_Exp_LLut(benchmark::State& s)
{
    runMethod(s, Function::Exp, Method::LLut);
}
void BM_Gelu_DlLut(benchmark::State& s)
{
    runMethod(s, Function::Gelu, Method::DlLut);
}

BENCHMARK(BM_Sin_Cordic);
BENCHMARK(BM_Sin_CordicLut);
BENCHMARK(BM_Sin_MLut);
BENCHMARK(BM_Sin_LLut);
BENCHMARK(BM_Sin_LLutFixed);
BENCHMARK(BM_Sin_Poly);
BENCHMARK(BM_Tanh_DLut);
BENCHMARK(BM_Tanh_DlLut);
BENCHMARK(BM_Exp_LLut);
BENCHMARK(BM_Gelu_DlLut);

} // namespace

BENCHMARK_MAIN();
