/**
 * @file
 * Ablation: DPU clock frequency.
 *
 * The paper's system runs at 350 MHz but its Section 4.2.2 break-even
 * computation assumes 425 MHz (the next UPMEM silicon speed grade).
 * The cost model exposes the frequency as a parameter; this bench
 * shows its effect on the Blackscholes Figure 9 row and on the
 * CORDIC-vs-LUT setup break-even point, which shifts with the clock
 * because setup happens on the host while evaluation happens on the
 * PIM core.
 */

#include <cstdio>

#include "transpim/harness.h"
#include "workloads/blackscholes.h"

int
main()
{
    using namespace tpl;
    using namespace tpl::transpim;

    std::printf("=== Ablation: DPU clock frequency ===\n\n");

    // Per-element kernel time of the interp. L-LUT sine across clocks.
    MethodSpec spec;
    spec.method = Method::LLut;
    spec.interpolated = true;
    spec.placement = Placement::Wram;
    spec.log2Entries = 12;
    MicrobenchOptions opts;
    opts.elements = 4096;
    MicrobenchResult r = runMicrobench(Function::Sin, spec, opts);

    MethodSpec cordicSpec;
    cordicSpec.method = Method::Cordic;
    cordicSpec.iterations = 24;
    MicrobenchResult rc = runMicrobench(Function::Sin, cordicSpec,
                                        opts);

    std::printf("%-10s %18s %18s %22s\n", "clock", "L-LUT ns/elem",
                "CORDIC ns/elem", "setup break-even ops");
    for (double mhz : {267.0, 350.0, 425.0}) {
        double hz = mhz * 1e6;
        double llutNs = r.cyclesPerElement / hz * 1e9;
        double cordicNs = rc.cyclesPerElement / hz * 1e9;
        // Break-even: setup-time gap divided by per-op PIM savings
        // (Key Takeaway 2's calculation at this clock).
        double setupGap = r.setupSeconds - rc.setupSeconds;
        double perOpGain =
            (rc.cyclesPerElement - r.cyclesPerElement) / hz;
        double breakEven = setupGap / perOpGain;
        std::printf("%6.0f MHz %18.1f %18.1f %22.0f\n", mhz, llutNs,
                    cordicNs, breakEven);
    }

    std::printf("\n# Faster cores make LUT setup amortize later "
                "(the per-op savings shrink in seconds\n# while host "
                "setup time is unchanged): the paper's ~40-op "
                "break-even assumed 425 MHz.\n");
    return 0;
}
