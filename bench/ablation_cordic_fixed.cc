/**
 * @file
 * Ablation: fixed-point (Q3.28) vs floating-point CORDIC.
 *
 * The paper's Figure 3(a) pipeline converts inputs to Q3.28 before
 * iterating; on a PIM core without an FPU a fixed-point iteration is
 * two native shifts and three native adds, roughly an order of
 * magnitude cheaper than the float iteration (three emulated float
 * adds plus two ldexp). The tradeoff is the accuracy ceiling at the
 * 2^-28 resolution. This bench quantifies both sides.
 */

#include <cstdio>

#include "transpim/harness.h"

int
main()
{
    using namespace tpl::transpim;
    std::printf("=== Ablation: fixed-point vs floating-point CORDIC "
                "(sine) ===\n");
    std::printf("%-14s %-8s %12s %14s\n", "engine", "iters", "rmse",
                "cycles/elem");

    for (uint32_t iters : {8u, 12u, 16u, 20u, 24u, 28u}) {
        for (Method m : {Method::Cordic, Method::CordicFixed}) {
            MethodSpec spec;
            spec.method = m;
            spec.iterations = iters;
            spec.placement = Placement::Wram;
            MicrobenchOptions opts;
            opts.elements = 4096;
            MicrobenchResult r =
                runMicrobench(Function::Sin, spec, opts);
            std::printf("%-14s %-8u %12.3e %14.1f\n",
                        m == Method::Cordic ? "float" : "fixed Q3.28",
                        iters, r.error.rmse, r.cyclesPerElement);
        }
    }
    std::printf("\n# Fixed-point iterations are ~10x cheaper; their "
                "accuracy saturates near the Q3.28 resolution.\n");
    return 0;
}
