/**
 * @file
 * Shared sweep infrastructure for the Figure 5/6/7 benches: runs every
 * TransPimLib sine implementation across its accuracy-tuning knob
 * (iterations for CORDIC, table size for LUTs) and both table
 * placements, exactly the configuration matrix behind the paper's
 * microbenchmark figures.
 */

#ifndef TPL_BENCH_SWEEP_COMMON_H
#define TPL_BENCH_SWEEP_COMMON_H

#include <string>
#include <vector>

#include "transpim/harness.h"

namespace tpl {
namespace bench {

/** One (method-config, placement) point of the sine sweep. */
struct SweepPoint
{
    std::string series; ///< e.g. "L-LUT interp."
    std::string knob;   ///< e.g. "2^12 entries" / "16 iters"
    transpim::MicrobenchResult result;
};

/** Number of elements each microbenchmark evaluates. */
uint32_t benchElements();

/**
 * Run the full sine method sweep.
 *
 * The configuration matrix is embarrassingly parallel: every point
 * builds its own evaluator and simulated core, so by default the
 * points run concurrently on the simulator's ThreadPool
 * (TPL_SIM_THREADS controls the width). The returned vector is in the
 * same deterministic series order regardless of thread count, and all
 * modeled numbers (cycles, memory, accuracy) are bit-identical to a
 * serial sweep.
 *
 * @param function the function to sweep (Figures 5-7 use sine).
 * @param simulateCycles when false, skips the DPU simulation and only
 *        fills accuracy/memory/setup (enough for Figures 6 and 7).
 * @param parallelPoints run sweep points concurrently. Pass false for
 *        benches whose headline metric is measured host wall-clock
 *        time (Figure 6's setup time): concurrent table generation on
 *        an oversubscribed host would inflate each point's measured
 *        seconds even though all modeled numbers stay exact.
 */
std::vector<SweepPoint> runMethodSweep(transpim::Function function,
                                       bool simulateCycles,
                                       bool parallelPoints = true);

/** Print the standard sweep-table header. */
void printHeader(const char* title, const char* valueColumn);

/** Print one sweep row with the chosen value column. */
void printRow(const SweepPoint& p, double value);

} // namespace bench
} // namespace tpl

#endif // TPL_BENCH_SWEEP_COMMON_H
