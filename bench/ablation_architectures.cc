/**
 * @file
 * Cross-architecture ablation (the paper's future work, Section 5.1):
 * what would each method cost on a PIM processing element other than
 * the UPMEM DPU?
 *
 * Re-costs the measured operation mix of every sine method under three
 * PE profiles. The headline finding: the L-LUT's advantage over the
 * M-LUT is a *consequence of emulated floating point* - on an
 * HBM-PIM-style PE with a native MAC datapath the two collapse to the
 * same cost, while the CORDIC-vs-LUT tradeoff (iterative refinement vs
 * one memory access) survives every architecture.
 */

#include <cstdio>

#include "common/rng.h"
#include "transpim/arch_model.h"
#include "transpim/evaluator.h"

int
main()
{
    using namespace tpl;
    using namespace tpl::transpim;

    auto upmemCosts = measureUpmemOpCosts();
    ArchProfile profiles[] = {upmemProfile(), hbmPimLikeProfile(),
                              idealFpuProfile()};

    auto inputs = uniformFloats(512, 0.0f, 6.2831853f, 17);

    std::printf("=== Cross-architecture re-costing (sine, cycles per "
                "element) ===\n");
    std::printf("%-24s", "method");
    for (const auto& p : profiles)
        std::printf(" %18s", p.name.c_str());
    std::printf("\n");

    struct Row
    {
        Method m;
        uint32_t knob;
    };
    for (Row row : {Row{Method::Cordic, 24u},
                    Row{Method::CordicLut, 24u}, Row{Method::MLut, 12u},
                    Row{Method::LLut, 12u}, Row{Method::LLutFixed, 12u},
                    Row{Method::Poly, 11u}}) {
        MethodSpec spec;
        spec.method = row.m;
        spec.interpolated = true;
        spec.placement = Placement::Host;
        spec.log2Entries = row.knob;
        spec.iterations = row.knob;
        spec.polyDegree = row.knob;
        auto eval = FunctionEvaluator::create(Function::Sin, spec);

        OpTallySink tally;
        for (float x : inputs)
            eval.eval(x, &tally);

        std::printf("%-24s", methodLabel(spec).c_str());
        for (const auto& p : profiles) {
            double cycles =
                recostCycles(tally.tally(), p, upmemCosts) /
                inputs.size();
            std::printf(" %18.1f", cycles);
        }
        std::printf("\n");
    }

    std::printf("\n# Shape: on the UPMEM-like DPU, L-LUT beats M-LUT "
                "(no float multiply); on PEs with\n# native floats "
                "the gap closes, while CORDIC stays an order of "
                "magnitude above all LUTs.\n");
    return 0;
}
